//! # bmb-core — correlation-rule mining
//!
//! The primary contribution of *Beyond Market Baskets: Generalizing
//! Association Rules to Correlations* (Brin, Motwani & Silverstein,
//! SIGMOD 1997): mine the itemsets whose presence/absence pattern fails
//! the chi-squared test of independence, exploiting the upward closure of
//! significance to return only the *border* of minimal correlated
//! itemsets, with the paper's cell-based support pruning.
//!
//! ```
//! use bmb_core::{mine, MinerConfig, SupportSpec};
//!
//! // The canonical minimal 3-way correlation: pairwise independent items
//! // whose triple is functionally determined.
//! let db = bmb_datasets::parity_triple(400, 4);
//! let result = mine(&db, &MinerConfig {
//!     support: SupportSpec::Count(5),
//!     ..MinerConfig::default()
//! });
//! assert_eq!(result.significant.len(), 1);
//! assert_eq!(result.significant[0].itemset.len(), 3);
//! ```
//!
//! Modules:
//!
//! * [`miner`] — the level-wise `x²-support` algorithm (Figure 1);
//! * [`walk_miner`] — the random-walk alternative the paper sketches;
//! * [`config`] / [`support`] / [`prune`] — thresholds and pruning rules;
//! * [`locality`] — spatial-locality rules over ordered baskets (the
//!   conclusion's first future-work item);
//! * [`counting`] — batch support counting and Möbius table assembly;
//! * [`report`] — pairwise χ²-and-interest reports (Table 2);
//! * [`stats`] — per-level accounting (Table 5);
//! * [`sig`] — the significant-itemset output type.

#![warn(missing_docs)]

pub mod categorical_report;
pub mod config;
pub mod counting;
pub mod locality;
pub mod miner;
pub mod prune;
pub mod report;
pub mod sig;
pub mod stats;
pub mod support;
pub mod walk_miner;

pub use categorical_report::{
    categorical_pair, categorical_pairs_report, CategoricalPairCorrelation,
};
pub use config::{CountingStrategy, Level1Prune, MinerConfig, SupportSpec};
pub use miner::{mine, MiningResult};
pub use report::{pairs_report, PairCorrelation};
pub use sig::CorrelationRule;
pub use stats::{lattice_level_size, LevelStats};
pub use locality::{locality_test, mine_locality, LocalityReport};
pub use walk_miner::{mine_walk, WalkMiningResult};

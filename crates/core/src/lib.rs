//! # bmb-core — correlation-rule mining
//!
//! The primary contribution of *Beyond Market Baskets: Generalizing
//! Association Rules to Correlations* (Brin, Motwani & Silverstein,
//! SIGMOD 1997): mine the itemsets whose presence/absence pattern fails
//! the chi-squared test of independence, exploiting the upward closure of
//! significance to return only the *border* of minimal correlated
//! itemsets, with the paper's cell-based support pruning.
//!
//! ```
//! use bmb_core::{mine, MinerConfig, SupportSpec};
//!
//! // The canonical minimal 3-way correlation: pairwise independent items
//! // whose triple is functionally determined.
//! let db = bmb_datasets::parity_triple(400, 4);
//! let result = mine(&db, &MinerConfig {
//!     support: SupportSpec::Count(5),
//!     ..MinerConfig::default()
//! });
//! assert_eq!(result.significant.len(), 1);
//! assert_eq!(result.significant[0].itemset.len(), 3);
//! ```
//!
//! Modules:
//!
//! * [`miner`] — the level-wise `x²-support` algorithm (Figure 1);
//! * [`walk_miner`] — the random-walk alternative the paper sketches;
//! * [`config`] / [`support`] / [`prune`] — thresholds and pruning rules;
//! * [`locality`] — spatial-locality rules over ordered baskets (the
//!   conclusion's first future-work item);
//! * [`counting`] — batch support counting and Möbius table assembly;
//! * [`engine`] / [`lru`] — the online query engine over incremental
//!   snapshots, with its LRU contingency-table cache;
//! * [`report`] — pairwise χ²-and-interest reports (Table 2);
//! * [`stats`] — per-level accounting (Table 5);
//! * [`sig`] — the significant-itemset output type.

#![warn(missing_docs)]

/// Pairwise reports over multi-valued categorical attributes.
pub mod categorical_report;
/// Miner configuration: support policy, pruning, counting strategy.
pub mod config;
/// Batch support counting and Möbius contingency-table assembly.
pub mod counting;
/// The online query engine over incremental-store snapshots.
pub mod engine;
/// Word-adjacency locality analysis (the paper's text experiments).
pub mod locality;
/// A fixed-capacity LRU cache backing the query engine.
pub mod lru;
/// The level-wise significant-itemset miner (Algorithm 2).
pub mod miner;
/// Pruning predicates: support, interest, and χ²-based cuts.
pub mod prune;
/// Pairwise χ²-and-interest reports (the paper's Table 2).
pub mod report;
/// The significant-itemset output type and its major dependences.
pub mod sig;
/// Per-level mining statistics (the paper's Table 5).
pub mod stats;
/// Cell-based support counting over contingency tables (Section 4).
pub mod support;
/// The random-walk border miner over the itemset lattice.
pub mod walk_miner;

pub use categorical_report::{
    categorical_pair, categorical_pairs_report, CategoricalPairCorrelation,
};
pub use config::{CountingStrategy, Level1Prune, MinerConfig, SupportSpec};
pub use counting::{
    merge_support_vectors, subset_itemsets, table_from_subset_supports, MarginalSource, Marginals,
};
pub use engine::{
    CacheStats, Chi2Answer, EngineConfig, EngineError, InterestAnswer, QueryEngine, MAX_QUERY_DIMS,
};
pub use locality::{locality_test, mine_locality, LocalityReport};
pub use miner::{mine, mine_with_counter, LevelProfile, MinerProfile, MiningResult};
pub use report::{pairs_report, PairCorrelation};
pub use sig::CorrelationRule;
pub use stats::{lattice_level_size, LevelStats};
pub use walk_miner::{mine_walk, WalkMiningResult};

//! Per-level mining statistics — the accounting behind the paper's Table 5.

use std::fmt;

/// Counters for one level of the level-wise search.
///
/// The paper's Table 5 prints exactly these columns: the number of itemsets
/// in the lattice at this level, |CAND|, the candidates discarded by the
/// support test, |SIG|, and |NOTSIG| (always
/// `candidates = discards + significant + not_significant`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Itemset size at this level.
    pub level: usize,
    /// `C(k, level)`: how many itemsets exist at this level (saturating).
    pub lattice_itemsets: u64,
    /// Candidates actually examined (|CAND|).
    pub candidates: usize,
    /// Candidates that failed the cell-support test.
    pub discards: usize,
    /// Candidates found supported and correlated (added to SIG).
    pub significant: usize,
    /// Candidates found supported but uncorrelated (added to NOTSIG).
    pub not_significant: usize,
}

impl LevelStats {
    /// Internal consistency: every candidate is accounted for.
    pub fn is_consistent(&self) -> bool {
        self.candidates == self.discards + self.significant + self.not_significant
    }

    /// Fraction of the lattice level the pruning avoided examining.
    pub fn pruning_ratio(&self) -> f64 {
        if self.lattice_itemsets == 0 {
            0.0
        } else {
            1.0 - self.candidates as f64 / self.lattice_itemsets as f64
        }
    }
}

impl fmt::Display for LevelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>5} {:>15} {:>10} {:>10} {:>8} {:>8}",
            self.level,
            self.lattice_itemsets,
            self.candidates,
            self.discards,
            self.significant,
            self.not_significant
        )
    }
}

/// `C(k, level)` saturating at `u64::MAX`.
pub fn lattice_level_size(k: usize, level: usize) -> u64 {
    if level > k {
        return 0;
    }
    let mut acc: u128 = 1;
    for i in 0..level {
        acc = acc * (k - i) as u128 / (i as u128 + 1);
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_sizes_match_paper_table_5() {
        // k = 870: the paper prints 378015, 109372340, 23706454695.
        assert_eq!(lattice_level_size(870, 2), 378_015);
        assert_eq!(lattice_level_size(870, 3), 109_372_340);
        assert_eq!(lattice_level_size(870, 4), 23_706_454_695);
    }

    #[test]
    fn lattice_size_edges() {
        assert_eq!(lattice_level_size(5, 0), 1);
        assert_eq!(lattice_level_size(5, 5), 1);
        assert_eq!(lattice_level_size(5, 6), 0);
        assert_eq!(lattice_level_size(0, 1), 0);
    }

    #[test]
    fn saturation() {
        assert_eq!(lattice_level_size(10_000, 50), u64::MAX);
    }

    #[test]
    fn consistency_check() {
        let good = LevelStats {
            level: 2,
            lattice_itemsets: 378_015,
            candidates: 8019,
            discards: 323,
            significant: 4114,
            not_significant: 3582,
        };
        assert!(good.is_consistent());
        assert!((good.pruning_ratio() - (1.0 - 8019.0 / 378_015.0)).abs() < 1e-12);
        let bad = LevelStats {
            candidates: 10,
            ..good
        };
        assert!(!bad.is_consistent());
    }
}

//! Significant itemsets: the miner's output type.

use bmb_basket::{BasketDatabase, CellMask, ContingencyTable, Itemset};
use bmb_stats::{Chi2Outcome, InterestReport};

/// One *significant* itemset — supported and minimally correlated (no
/// subset of it is correlated), the paper's definition of the output set
/// SIG.
#[derive(Clone, Debug)]
pub struct CorrelationRule {
    /// The itemset.
    pub itemset: Itemset,
    /// Its chi-squared outcome.
    pub chi2: Chi2Outcome,
    /// The contingency table it was judged on.
    pub table: ContingencyTable,
    /// How many cells met the support threshold.
    pub support_cells: usize,
}

impl CorrelationRule {
    /// Interest analysis of the rule's table.
    pub fn interest(&self) -> InterestReport {
        InterestReport::analyze(&self.table)
    }

    /// The major dependence: the cell contributing most to χ².
    ///
    /// Returns `(cell, interest)`; interpret the cell mask against
    /// [`CorrelationRule::itemset`] order.
    pub fn major_dependence(&self) -> (CellMask, f64) {
        let report = self.interest();
        let cell = report.major_dependence();
        (cell.cell, cell.interest)
    }

    /// Splits the major-dependence cell into the item names it *includes*
    /// and those it *omits* — the presentation of the paper's Table 4.
    pub fn major_dependence_words(&self, db: &BasketDatabase) -> (Vec<String>, Vec<String>) {
        let (cell, _) = self.major_dependence();
        let mut includes = Vec::new();
        let mut omits = Vec::new();
        for (j, &item) in self.itemset.items().iter().enumerate() {
            let name = db
                .catalog()
                .and_then(|c| c.name(item))
                .map(str::to_string)
                .unwrap_or_else(|| item.to_string());
            if cell & (1 << j) != 0 {
                includes.push(name);
            } else {
                omits.push(name);
            }
        }
        (includes, omits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_stats::Chi2Test;

    fn rule() -> CorrelationRule {
        // Example 1's tea/coffee table (bit0 = tea, bit1 = coffee).
        let table = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![5, 5, 70, 20]);
        let chi2 = Chi2Test::default().test_dense(&table);
        CorrelationRule {
            itemset: table.itemset().clone(),
            support_cells: table.cells_with_count_at_least(5),
            chi2,
            table,
        }
    }

    #[test]
    fn major_dependence_cell() {
        let r = rule();
        let (cell, interest) = r.major_dependence();
        assert_eq!(cell, 0b01); // tea-without-coffee dominates
        assert!((interest - 2.0).abs() < 1e-9);
    }

    #[test]
    fn words_split_against_catalog() {
        let db = BasketDatabase::from_named_baskets(vec![vec!["tea", "coffee"]]);
        let r = rule();
        let (includes, omits) = r.major_dependence_words(&db);
        assert_eq!(includes, vec!["tea".to_string()]);
        assert_eq!(omits, vec!["coffee".to_string()]);
    }

    #[test]
    fn words_fall_back_to_ids_without_catalog() {
        let db = BasketDatabase::new(2);
        let r = rule();
        let (includes, omits) = r.major_dependence_words(&db);
        assert_eq!(includes, vec!["i0".to_string()]);
        assert_eq!(omits, vec!["i1".to_string()]);
    }
}

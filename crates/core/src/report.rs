//! Pairwise correlation reports — the machinery behind the paper's Table 2.
//!
//! For every item pair: the chi-squared value, its significance at the
//! configured level, and the four interest values in the paper's column
//! order `I(ab), I(āb), I(ab̄), I(āb̄)`, with the most extreme one marked
//! (Table 2 bolds it only when χ² is significant).

use bmb_basket::{BasketDatabase, ContingencyTable, ItemId, Itemset};
use bmb_stats::{Chi2Outcome, Chi2Test, InterestReport};

/// The Table 2 row for one pair.
#[derive(Clone, Debug)]
pub struct PairCorrelation {
    /// First item (`a` — the lower id).
    pub a: ItemId,
    /// Second item (`b`).
    pub b: ItemId,
    /// Chi-squared outcome.
    pub chi2: Chi2Outcome,
    /// Interest values in the paper's order: `[I(ab), I(āb), I(ab̄), I(āb̄)]`.
    pub interests: [f64; 4],
    /// Index (into `interests`) of the most extreme value — the major
    /// dependence. Meaningful only when `chi2.significant`.
    pub most_extreme: usize,
}

impl PairCorrelation {
    /// Builds the row from a 2-item contingency table (items in sorted
    /// order: bit0 = `a`, bit1 = `b`).
    pub fn from_table(table: &ContingencyTable, test: &Chi2Test) -> Self {
        assert_eq!(table.dims(), 2, "pair report needs a 2-item table");
        let chi2 = test.test_dense(table);
        let report = InterestReport::analyze(table);
        // Paper order: ab, āb, ab̄, āb̄ → masks 0b11, 0b10, 0b01, 0b00.
        let order: [u32; 4] = [0b11, 0b10, 0b01, 0b00];
        let interests = order.map(|m| report.interest(m));
        // `total_cmp` totally orders even NaN; the range is non-empty,
        // so `unwrap_or` is a never-taken fallback, not a panic.
        let most_extreme = (0..4)
            .max_by(|&x, &y| extremity(interests[x]).total_cmp(&extremity(interests[y])))
            .unwrap_or(0);
        let items = table.itemset().items();
        PairCorrelation {
            a: items[0],
            b: items[1],
            chi2,
            interests,
            most_extreme,
        }
    }
}

fn extremity(interest: f64) -> f64 {
    if interest.is_infinite() {
        f64::INFINITY
    } else {
        (interest - 1.0).abs()
    }
}

/// Builds Table 2 rows for every item pair of the database.
pub fn pairs_report(db: &BasketDatabase, test: &Chi2Test) -> Vec<PairCorrelation> {
    let k = db.n_items() as u32;
    let mut out = Vec::with_capacity((k as usize * k.saturating_sub(1) as usize) / 2);
    for a in 0..k {
        for b in a + 1..k {
            let set = Itemset::from_ids([a, b]);
            let table = ContingencyTable::from_database(db, &set);
            out.push(PairCorrelation::from_table(&table, test));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_pair_rows_match_paper_table_2() {
        // Spot-check the (i2, i7) row: χ² = 2006.34 and interests
        // 1.067 / 0.385 / 0.892 / 1.988 (ab, āb, ab̄, āb̄), most extreme āb̄.
        let db = bmb_datasets::generate_census();
        let test = Chi2Test::default();
        let rows = pairs_report(&db, &test);
        assert_eq!(rows.len(), 45);
        let row = rows
            .iter()
            .find(|r| r.a == ItemId(2) && r.b == ItemId(7))
            .unwrap();
        assert!((row.chi2.statistic - 2006.34).abs() < 80.0);
        let paper = [1.067, 0.385, 0.892, 1.988];
        for (got, want) in row.interests.iter().zip(paper) {
            assert!(
                (got - want).abs() < 0.05,
                "interest {got:.3} vs paper {want}"
            );
        }
        assert_eq!(row.most_extreme, 3, "āb̄ (veteran ∧ over-40) dominates");
    }

    #[test]
    fn insignificant_pairs_reported_as_such() {
        let db = bmb_datasets::generate_census();
        let rows = pairs_report(&db, &Chi2Test::default());
        // (i3, i9) has χ² = 0.10 in the paper — deeply insignificant.
        let row = rows
            .iter()
            .find(|r| r.a == ItemId(3) && r.b == ItemId(9))
            .unwrap();
        assert!(!row.chi2.significant);
        assert!(row.chi2.statistic < 3.0);
    }

    #[test]
    fn interest_zero_marks_impossible_cells() {
        // (i1, i8): the "3+ children ∧ male" cell (ā b) has interest 0.000
        // in Table 2.
        let db = bmb_datasets::generate_census();
        let rows = pairs_report(&db, &Chi2Test::default());
        let row = rows
            .iter()
            .find(|r| r.a == ItemId(1) && r.b == ItemId(8))
            .unwrap();
        assert_eq!(row.interests[1], 0.0, "I(āb) must be 0 (impossible cell)");
    }

    #[test]
    fn row_count_scales_quadratically() {
        let db = bmb_basket::BasketDatabase::from_id_baskets(5, vec![vec![0, 1, 2, 3, 4]]);
        assert_eq!(pairs_report(&db, &Chi2Test::default()).len(), 10);
    }
}

//! Random-walk correlation mining — the paper's sketched alternative.
//!
//! Sections 2.2, 4, and 6 repeatedly propose random walks on the itemset
//! lattice as the companion to the level-wise algorithm, particularly for
//! pruning criteria that are not downward closed (like the chi-squared
//! ceiling). This module wires `bmb_lattice::walk` to the chi-squared
//! property, serving contingency tables from a [`CountCube`] when the item
//! space is small ("the random walk algorithm has a natural implementation
//! in terms of a datacube") and from direct database scans otherwise.

use bmb_basket::{BasketDatabase, ContingencyTable, Itemset};
use bmb_lattice::{random_walk_border, CountCube, WalkConfig, WalkOutcome, MAX_CUBE_DIMS};
use bmb_stats::{Chi2Test, SignificanceLevel};

use crate::config::MinerConfig;
use crate::support::cell_support;

/// Result of a walk-based mining run.
#[derive(Debug)]
pub struct WalkMiningResult {
    /// The sampled border of correlation, with per-element support filter
    /// already applied.
    pub border: Vec<Itemset>,
    /// Raw walk outcome (including unsupported border elements and walk
    /// statistics).
    pub raw: WalkOutcome,
}

/// Mines minimal correlated itemsets by random walks.
///
/// The walk property is chi-squared significance alone (upward closed by
/// Theorem 1); the support filter — which is a *downward* closed property
/// and therefore cannot steer an upward walk — is applied to the
/// discovered minimal sets afterwards. An optional χ² ceiling drops
/// too-obvious correlations, the pruning the paper says "a random walk
/// algorithm ... might be appropriate" for.
pub fn mine_walk(
    db: &BasketDatabase,
    config: &MinerConfig,
    walk: WalkConfig,
    chi2_ceiling: Option<f64>,
) -> WalkMiningResult {
    config.validate();
    let n = db.len() as u64;
    let s = config.support.to_count(n).max(1);
    let test = Chi2Test {
        level: SignificanceLevel::new(config.alpha),
        df: config.df,
        low_expectation_cutoff: config.low_expectation_cutoff,
    };
    let k = db.n_items();
    let cube = if k > 0 && k <= MAX_CUBE_DIMS {
        Some(CountCube::build(db, &Itemset::from_ids(0..k as u32)))
    } else {
        None
    };
    let table_for = |set: &Itemset| -> ContingencyTable {
        match &cube {
            Some(cube) => cube.contingency(set),
            None => ContingencyTable::from_database(db, set),
        }
    };
    let property = |set: &Itemset| -> bool {
        if set.is_empty() || set.len() > MAX_CUBE_DIMS {
            return false;
        }
        test.test_dense(&table_for(set)).significant
    };
    let raw = random_walk_border(k as u32, walk, property);
    let border: Vec<Itemset> = raw
        .border
        .minimal_sets()
        .iter()
        .filter(|set| {
            let table = table_for(set);
            if !cell_support(&table, s, config.cells_required(set.len())).supported() {
                return false;
            }
            match chi2_ceiling {
                Some(ceiling) => test.test_dense(&table).statistic < ceiling,
                None => true,
            }
        })
        .cloned()
        .collect();
    WalkMiningResult { border, raw }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SupportSpec;
    use crate::miner::mine;

    fn config() -> MinerConfig {
        MinerConfig {
            support: SupportSpec::Count(5),
            support_fraction: 0.26,
            ..Default::default()
        }
    }

    fn walk_config() -> WalkConfig {
        WalkConfig {
            walks: 300,
            max_level: 6,
            seed: 77,
        }
    }

    #[test]
    fn walk_finds_the_parity_triple() {
        let db = bmb_datasets::parity_triple(400, 5);
        let result = mine_walk(&db, &config(), walk_config(), None);
        assert_eq!(result.border, vec![Itemset::from_ids([0, 1, 2])]);
        assert!(result.raw.stats.crossings > 0);
    }

    #[test]
    fn walk_agrees_with_levelwise_on_planted_data() {
        let db = bmb_datasets::planted_pair(2000, 6, 0.3, 0.8, 21);
        let levelwise = mine(&db, &config());
        let walked = mine_walk(&db, &config(), walk_config(), None);
        // Every walk discovery is a level-wise discovery (walks may sample
        // a subset of a large border, but here the border is small).
        let level_sets: Vec<&Itemset> = levelwise.significant.iter().map(|r| &r.itemset).collect();
        for set in &walked.border {
            assert!(
                level_sets.contains(&set),
                "walk found {set}, level-wise did not"
            );
        }
        // And the planted pair is found by both.
        assert!(walked.border.contains(&Itemset::from_ids([0, 1])));
    }

    #[test]
    fn ceiling_drops_obvious_correlations() {
        // Parity triple scores χ² = n = 400; a ceiling of 100 suppresses it.
        let db = bmb_datasets::parity_triple(400, 5);
        let result = mine_walk(&db, &config(), walk_config(), Some(100.0));
        assert!(result.border.is_empty());
        // The raw walk still crossed the border — the filter is post-hoc.
        assert!(!result.raw.border.is_empty());
    }

    #[test]
    fn support_filter_applies() {
        // Tiny database: the triple is correlated but cells hold ~5 < s = 20.
        let db = bmb_datasets::parity_triple(20, 3);
        let strict = MinerConfig {
            support: SupportSpec::Count(20),
            ..config()
        };
        let result = mine_walk(&db, &strict, walk_config(), None);
        assert!(result.border.is_empty());
    }

    #[test]
    fn empty_database_is_handled() {
        let db = bmb_basket::BasketDatabase::new(4);
        let result = mine_walk(
            &db,
            &config(),
            WalkConfig {
                walks: 5,
                ..walk_config()
            },
            None,
        );
        assert!(result.border.is_empty());
    }
}

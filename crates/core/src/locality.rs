//! Spatial-locality rules over ordered baskets — the paper's first
//! "further research" item, implemented.
//!
//! Section 6: "in the case of documents, it would be useful to formulate
//! rules that capture the spatial locality of words by paying attention to
//! item ordering within the basket." We formulate such a rule with the
//! same chi-squared machinery as document-level correlation, one level
//! down: the sampling unit is a *token position* rather than a document.
//!
//! For a word pair `(a, b)` and a window `w`, each occurrence of `a` is
//! classified by whether `b` appears within the next `w` tokens; each
//! non-`a` position likewise. The 2×2 table (rows: token is `a`;
//! columns: `b` within the forward window) is tested exactly like a basket
//! contingency table — significance means `b` clusters near `a` beyond
//! what their document-level frequencies explain.

use bmb_basket::{ContingencyTable, ItemId, Itemset};
use bmb_stats::{Chi2Outcome, Chi2Test};

/// The locality table of one ordered pair at one window size.
#[derive(Clone, Debug)]
pub struct LocalityReport {
    /// The trigger word `a`.
    pub a: ItemId,
    /// The tested follower `b`.
    pub b: ItemId,
    /// Window size in tokens.
    pub window: usize,
    /// The 2×2 position-level contingency table (bit0 = position holds
    /// `a`, bit1 = `b` occurs within the forward window).
    pub table: ContingencyTable,
    /// Chi-squared outcome on that table.
    pub chi2: Chi2Outcome,
}

impl LocalityReport {
    /// The interest of the "a followed by b" cell: how many times more
    /// often `b` follows `a` than it follows a random position.
    pub fn adjacency_interest(&self) -> f64 {
        // Keep the observed count integral until after the emptiness
        // test — no float comparison needed for the 0/0 case.
        let observed = self.table.observed(0b11);
        let expected = self.table.expected(0b11);
        if expected > 0.0 {
            observed as f64 / expected
        } else if observed == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    }
}

/// Tests whether `b` spatially clusters after `a` within `window` tokens,
/// across all `documents`.
///
/// # Panics
///
/// Panics if `window` is zero or `a == b`.
pub fn locality_test(
    documents: &[Vec<ItemId>],
    a: ItemId,
    b: ItemId,
    window: usize,
    test: &Chi2Test,
) -> LocalityReport {
    assert!(window > 0, "window must be at least one token");
    assert_ne!(a, b, "locality needs two distinct words");
    // Cell masks: bit0 = position holds `a`, bit1 = `b` within window.
    let mut counts = [0u64; 4];
    for doc in documents {
        // `next_b[i]` = does b occur in (i, i+window]?
        // Sweep right-to-left with the index of the nearest b to the right.
        let mut nearest_b_after = usize::MAX;
        let mut follows: Vec<bool> = vec![false; doc.len()];
        for i in (0..doc.len()).rev() {
            follows[i] = nearest_b_after != usize::MAX && nearest_b_after - i <= window;
            if doc[i] == b {
                nearest_b_after = i;
            }
        }
        for (i, &token) in doc.iter().enumerate() {
            let mask = usize::from(token == a) | (usize::from(follows[i]) << 1);
            counts[mask] += 1;
        }
    }
    let table =
        ContingencyTable::from_counts(Itemset::from_items([a.min(b), a.max(b)]), counts.to_vec());
    let chi2 = test.test_dense(&table);
    LocalityReport {
        a,
        b,
        window,
        table,
        chi2,
    }
}

/// Ranks candidate pairs by locality significance — the mining loop for
/// spatial rules. `pairs` are `(trigger, follower)` ordered pairs.
pub fn mine_locality(
    documents: &[Vec<ItemId>],
    pairs: &[(ItemId, ItemId)],
    window: usize,
    test: &Chi2Test,
) -> Vec<LocalityReport> {
    let mut reports: Vec<LocalityReport> = pairs
        .iter()
        .map(|&(a, b)| locality_test(documents, a, b, window, test))
        .collect();
    reports.sort_by(|x, y| {
        y.chi2
            .statistic
            .partial_cmp(&x.chi2.statistic)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(tokens: &[u32]) -> Vec<ItemId> {
        tokens.iter().map(|&t| ItemId(t)).collect()
    }

    #[test]
    fn adjacent_pair_is_detected() {
        // Word 1 always immediately follows word 0; filler words 2..10.
        let mut docs = Vec::new();
        for d in 0..30u32 {
            let mut doc = Vec::new();
            for i in 0..50u32 {
                doc.push(2 + ((d + i) % 8));
                if i % 10 == 0 {
                    doc.push(0);
                    doc.push(1);
                }
            }
            docs.push(ids(&doc));
        }
        let report = locality_test(&docs, ItemId(0), ItemId(1), 2, &Chi2Test::default());
        assert!(report.chi2.significant, "χ² = {}", report.chi2.statistic);
        // Every `a` is followed by `b`; the base rate of "b within 2" is
        // ~0.2, so the interest of the (a, follows) cell sits near 5.
        assert!(report.adjacency_interest() > 3.0);
    }

    #[test]
    fn document_level_cooccurrence_without_locality_is_insignificant() {
        // Words 0 and 1 both occur in every document but far apart — the
        // *document-level* miner would flag them; the locality test, with a
        // small window, must not.
        let mut docs = Vec::new();
        for d in 0..40u32 {
            let mut doc = vec![0u32];
            for i in 0..60u32 {
                doc.push(2 + ((d * 3 + i) % 9));
            }
            doc.push(1);
            docs.push(ids(&doc));
        }
        let report = locality_test(&docs, ItemId(0), ItemId(1), 3, &Chi2Test::default());
        assert!(
            !report.chi2.significant,
            "distant words flagged as local: χ² = {}",
            report.chi2.statistic
        );
    }

    #[test]
    fn window_sweep_changes_the_verdict() {
        // b occurs exactly 5 tokens after a; window 3 misses, window 8 hits.
        let mut docs = Vec::new();
        for _ in 0..25 {
            let mut doc = Vec::new();
            for rep in 0..6u32 {
                doc.push(0);
                for f in 0..4u32 {
                    doc.push(10 + (rep + f) % 7);
                }
                doc.push(1);
                for f in 0..20u32 {
                    doc.push(10 + (f * 3 + rep) % 7);
                }
            }
            docs.push(ids(&doc));
        }
        let test = Chi2Test::default();
        let near = locality_test(&docs, ItemId(0), ItemId(1), 3, &test);
        let far = locality_test(&docs, ItemId(0), ItemId(1), 8, &test);
        assert!(!near.adjacency_interest().is_infinite());
        assert!(far.chi2.statistic > near.chi2.statistic);
        assert!(far.chi2.significant);
    }

    #[test]
    fn mine_locality_ranks_by_statistic() {
        let mut docs = Vec::new();
        for _ in 0..20 {
            // 0→1 adjacent; 2 and 3 both present but unrelated positions.
            let mut doc = vec![0, 1];
            for f in 0..30u32 {
                doc.push(4 + f % 6);
            }
            doc.insert(10, 2);
            doc.push(3);
            docs.push(ids(&doc));
        }
        let reports = mine_locality(
            &docs,
            &[(ItemId(0), ItemId(1)), (ItemId(2), ItemId(3))],
            2,
            &Chi2Test::default(),
        );
        assert_eq!(reports[0].a, ItemId(0));
        assert!(reports[0].chi2.statistic > reports[1].chi2.statistic);
    }

    #[test]
    fn planted_corpus_collocations_are_local() {
        // End-to-end with the ordered corpus generator: nelson follows
        // mandela within a 2-token window far beyond chance.
        let corpus = bmb_datasets::text::generate_sequences(&bmb_datasets::text::TextParams {
            vocabulary: 400,
            ..Default::default()
        });
        let mandela = corpus.catalog.get("mandela").unwrap();
        let nelson = corpus.catalog.get("nelson").unwrap();
        let report = locality_test(&corpus.documents, mandela, nelson, 2, &Chi2Test::default());
        assert!(report.chi2.significant);
        assert!(report.adjacency_interest() > 50.0);
    }

    #[test]
    #[should_panic(expected = "distinct words")]
    fn same_word_panics() {
        locality_test(&[], ItemId(1), ItemId(1), 2, &Chi2Test::default());
    }
}

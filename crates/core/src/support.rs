//! The paper's cell-based support definition (Section 4).
//!
//! "A set of items S has support s at the p% level if at least p% of the
//! cells in the contingency table for S have value s." Unlike the
//! support-confidence framework's single-cell support, this looks at the
//! whole table — absence patterns count too, which is what lets the miner
//! find negative dependence. Requiring `p` to be a *fraction* of cells
//! (rather than an absolute number) is what makes the definition downward
//! closed (each cell of a subset's table is a sum of `2^{m-j}` cells of
//! the superset's, so cell mass only concentrates when marginalizing).

use bmb_basket::ContingencyTable;

/// Outcome of the cell-support test for one itemset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupportOutcome {
    /// Number of cells with observed count `>= s`.
    pub cells_with_support: usize,
    /// Cells required (`ceil(p · 2^m)`).
    pub cells_required: usize,
    /// Total cells `2^m`.
    pub n_cells: usize,
}

impl SupportOutcome {
    /// Whether the itemset is supported.
    pub fn supported(&self) -> bool {
        self.cells_with_support >= self.cells_required
    }
}

/// Runs the test on a dense table.
pub fn cell_support(table: &ContingencyTable, s: u64, cells_required: usize) -> SupportOutcome {
    SupportOutcome {
        cells_with_support: table.cells_with_count_at_least(s),
        cells_required,
        n_cells: table.n_cells(),
    }
}

/// The paper's level-1 special pruning argument: when *neither* item
/// reaches count `s`, at most the both-absent cell of their pair table can
/// reach `s`, so support at any `p > 0.25` is impossible. (True regardless
/// of the joint distribution: `O(ab), O(ab̄) <= O(a) < s` and
/// `O(āb) <= O(b) < s`.)
pub fn pair_support_impossible(count_a: u64, count_b: u64, s: u64) -> bool {
    count_a < s && count_b < s
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::{BasketDatabase, Itemset};

    fn table(counts: Vec<u64>) -> ContingencyTable {
        let dims = counts.len().trailing_zeros() as usize;
        ContingencyTable::from_counts(Itemset::from_ids(0..dims as u32), counts)
    }

    #[test]
    fn counts_cells_meeting_threshold() {
        let t = table(vec![5, 5, 70, 20]);
        let outcome = cell_support(&t, 6, 2);
        assert_eq!(outcome.cells_with_support, 2);
        assert_eq!(outcome.n_cells, 4);
        assert!(outcome.supported());
        assert!(!cell_support(&t, 21, 2).supported());
    }

    #[test]
    fn single_strong_cell_fails_higher_requirements() {
        let t = table(vec![990, 4, 3, 3]);
        assert!(cell_support(&t, 100, 1).supported());
        assert!(!cell_support(&t, 100, 2).supported());
    }

    #[test]
    fn support_is_downward_closed_exhaustively() {
        // For random small databases, verify: if S is supported at (s, p)
        // then every facet of S is too (using fraction-derived cell
        // requirements). This is the property the level-wise algorithm
        // rests on.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31337);
        for _ in 0..20 {
            let n = 200;
            let k = 5u32;
            let mut db = BasketDatabase::new(k as usize);
            for _ in 0..n {
                db.push_basket((0..k).filter(|_| rng.gen_bool(0.4)).map(bmb_basket::ItemId));
            }
            let s = 8u64;
            let p = 0.3f64;
            let universe = Itemset::from_ids(0..k);
            for size in 3..=k as usize {
                for set in universe.subsets_of_size(size) {
                    let t = ContingencyTable::from_database(&db, &set);
                    let req = ((p * t.n_cells() as f64).ceil() as usize).max(1);
                    if !cell_support(&t, s, req).supported() {
                        continue;
                    }
                    for facet in set.facets() {
                        let ft = ContingencyTable::from_database(&db, &facet);
                        let freq = ((p * ft.n_cells() as f64).ceil() as usize).max(1);
                        assert!(
                            cell_support(&ft, s, freq).supported(),
                            "support not downward closed: {set} supported, {facet} not"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rare_rare_pairs_cannot_be_supported() {
        assert!(pair_support_impossible(3, 4, 5));
        assert!(!pair_support_impossible(10, 4, 5));
        assert!(!pair_support_impossible(3, 9, 5));
    }

    #[test]
    fn rare_common_pairs_can_still_be_supported() {
        // One rare item (count 2 < s = 50), one common: the absent-rare
        // cells carry the support — the reason the paper's Step 3 is a
        // heuristic rather than a sound prune.
        let t = table(vec![400, 2, 598, 0]);
        // cells: āb̄ = 400, ab̄ = 2, āb = 598, ab = 0 (item 0 rare).
        assert!(cell_support(&t, 50, 2).supported());
        assert!(!pair_support_impossible(2, 598, 50));
    }
}

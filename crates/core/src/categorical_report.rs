//! Pairwise correlation analysis over *multi-valued* attributes.
//!
//! Section 5.1: "Since the chi-squared test extends easily to non-binary
//! data, we can analyze correlations between multiple-choice answers such
//! as those found in census forms." This module runs the Table 2 style
//! pairwise sweep over a [`CategoricalData`] table: χ² with the Appendix A
//! degrees of freedom `Π(uᵢ−1)`, Cramér's V as the size-free effect
//! measure, and per-cell interest to locate the dependence.

use bmb_basket::categorical::{CategoricalData, CategoricalTable};
use bmb_stats::{cramers_v_categorical, Chi2Outcome, Chi2Test};

/// The row for one attribute pair.
#[derive(Clone, Debug)]
pub struct CategoricalPairCorrelation {
    /// First attribute position.
    pub a: usize,
    /// Second attribute position.
    pub b: usize,
    /// Chi-squared outcome with `(u_a − 1)(u_b − 1)` degrees of freedom.
    pub chi2: Chi2Outcome,
    /// Cramér's V — comparable across tables of different shapes.
    pub cramers_v: f64,
    /// The cell with the largest χ² contribution: `(value_a, value_b,
    /// observed, expected)`.
    pub major_dependence: (usize, usize, u64, f64),
    /// The full contingency table, for downstream inspection.
    pub table: CategoricalTable,
}

impl CategoricalPairCorrelation {
    /// Interest `O/E` of the major-dependence cell (∞ when E = 0 < O).
    pub fn major_interest(&self) -> f64 {
        let (_, _, observed, expected) = self.major_dependence;
        if expected > 0.0 {
            observed as f64 / expected
        } else if observed == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    }
}

/// Analyzes one attribute pair.
///
/// # Panics
///
/// Panics if `a == b` or either position is out of range.
pub fn categorical_pair(
    data: &CategoricalData,
    a: usize,
    b: usize,
    test: &Chi2Test,
) -> CategoricalPairCorrelation {
    let table = data.contingency(&[a, b]);
    let chi2 = test.test_categorical(&table);
    let cramers_v = cramers_v_categorical(&table);
    let mut major = (0usize, 0usize, 0u64, 0.0f64);
    let mut best_contribution = -1.0f64;
    for (values, observed) in table.cells() {
        let expected = table.expected(&values);
        let contribution = if expected > 0.0 {
            let d = observed as f64 - expected;
            d * d / expected
        } else {
            0.0
        };
        if contribution > best_contribution {
            best_contribution = contribution;
            major = (values[0], values[1], observed, expected);
        }
    }
    CategoricalPairCorrelation {
        a,
        b,
        chi2,
        cramers_v,
        major_dependence: major,
        table,
    }
}

/// The full pairwise sweep, in `(a, b)` order.
pub fn categorical_pairs_report(
    data: &CategoricalData,
    test: &Chi2Test,
) -> Vec<CategoricalPairCorrelation> {
    let k = data.attributes().len();
    let mut out = Vec::with_capacity(k * (k.saturating_sub(1)) / 2);
    for a in 0..k {
        for b in a + 1..k {
            out.push(categorical_pair(data, a, b, test));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::categorical::Attribute;

    /// 3×2 data with a strong planted association.
    fn data() -> CategoricalData {
        let mut d = CategoricalData::new(vec![
            Attribute::new("color", ["red", "green", "blue"]),
            Attribute::new("size", ["small", "large"]),
            Attribute::new("noise", ["x", "y"]),
        ]);
        let mut push = |color: u16, size: u16, noise: u16, count: usize| {
            for _ in 0..count {
                d.push_record(&[color, size, noise]);
            }
        };
        // red↔small, blue↔large; noise alternates independently.
        push(0, 0, 0, 40);
        push(0, 0, 1, 40);
        push(1, 0, 0, 20);
        push(1, 1, 1, 20);
        push(2, 1, 0, 40);
        push(2, 1, 1, 40);
        d
    }

    #[test]
    fn planted_association_found_with_correct_df() {
        let rows = categorical_pairs_report(&data(), &Chi2Test::default());
        assert_eq!(rows.len(), 3);
        let color_size = &rows[0];
        assert_eq!((color_size.a, color_size.b), (0, 1));
        assert_eq!(color_size.chi2.df, 2.0); // (3−1)(2−1)
        assert!(color_size.chi2.significant);
        assert!(color_size.cramers_v > 0.8);
    }

    #[test]
    fn noise_attribute_is_uncorrelated() {
        let rows = categorical_pairs_report(&data(), &Chi2Test::default());
        let color_noise = rows.iter().find(|r| (r.a, r.b) == (0, 2)).unwrap();
        assert!(
            !color_noise.chi2.significant,
            "χ² = {}",
            color_noise.chi2.statistic
        );
        assert!(color_noise.cramers_v < 0.12);
    }

    #[test]
    fn major_dependence_points_at_the_planted_cell() {
        let row = categorical_pair(&data(), 0, 1, &Chi2Test::default());
        let (a_val, b_val, observed, expected) = row.major_dependence;
        // red∧large and blue∧small are impossible (strongest deviations);
        // red∧small / blue∧large are the strong positives. Any of those four
        // may top the contribution list, but interest must be extreme.
        assert!(
            observed as f64 >= 1.9 * expected || (observed == 0 && expected > 10.0),
            "major cell ({a_val},{b_val}): O = {observed}, E = {expected}"
        );
        let interest = row.major_interest();
        assert!(interest > 1.5 || interest < 0.3);
    }

    #[test]
    fn expanded_census_sweep() {
        // End to end with the non-collapsed census: every age/commute/
        // marital pairing is significant; military vs commute is the
        // weakest association.
        let data = bmb_datasets::expanded_census(42);
        let rows = categorical_pairs_report(&data, &Chi2Test::default());
        assert_eq!(rows.len(), 6);
        let get = |a: usize, b: usize| rows.iter().find(|r| (r.a, r.b) == (a, b)).unwrap();
        use bmb_datasets::census::expanded::attr;
        assert!(get(attr::COMMUTE, attr::AGE).chi2.significant);
        assert!(get(attr::COMMUTE, attr::MARITAL).chi2.significant);
        // The planted story: age explains commute better than marriage does.
        assert!(
            get(attr::COMMUTE, attr::AGE).cramers_v > get(attr::COMMUTE, attr::MARITAL).cramers_v
        );
    }
}

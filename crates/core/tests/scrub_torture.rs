//! Scrub torture: an exhaustive planned at-rest corruption sweep
//! against the directory-mode [`DurableStore`]'s scrub → quarantine →
//! repair path (DESIGN.md §15).
//!
//! A deterministic workload is laid down so the directory holds every
//! artifact kind the scrub pass walks — `GEN`, `MANIFEST`, a
//! checkpoint, and sealed WAL segments. The sweep then corrupts
//! **every single byte** of every walked artifact, one trial per byte:
//! rebuild pristine media (the build is deterministic, so every trial
//! starts from identical bytes), XOR one byte, run ONE scrub pass with
//! a pristine repair peer, and assert
//!
//! * the corruption is detected within that pass (CRC / magic /
//!   structural walk — no flip may slip through);
//! * the damaged artifact is quarantined (evidence preserved, never
//!   deleted) and the repaired file is **byte-identical** to the
//!   pristine image;
//! * every *other* artifact is untouched;
//! * the store stays healthy, a second pass and offline [`fsck_dir`]
//!   are clean;
//! * a crash immediately after the pass loses nothing — the repair
//!   publishes durably (sync-before-rename), so recovery from the
//!   crash view restores the full acked epoch;
//! * chi-squared and border answers are **bit-identical**
//!   (`f64::to_bits`) to a never-corrupted reference store.
//!
//! Well over 200 corruption points run (asserted); the real-process
//! `kill -9`-during-repair counterpart lives in `bmb-cli`'s
//! `scrub_kill` test.

use std::collections::BTreeMap;
use std::sync::Arc;

use bmb_basket::storage::SharedDirState;
use bmb_basket::wal::{DurabilityConfig, DurableStore};
use bmb_basket::{
    fsck_dir, Dir, IncrementalStore, ItemId, Itemset, MemDir, PeerError, RepairPeer, ScrubOptions,
    StoreConfig, GEN_NAME, MANIFEST_NAME, QUARANTINE_PREFIX,
};
use bmb_core::{EngineConfig, MinerConfig, QueryEngine, SupportSpec};

const N_ITEMS: usize = 8;
const GENERATION: u64 = 3;
/// Baskets ingested before the checkpoint is cut.
const PRE_CHECKPOINT: u64 = 10;
/// Total acked baskets (checkpoint at 10, live tail beyond it).
const TOTAL: u64 = 24;

fn config() -> StoreConfig {
    StoreConfig {
        segment_capacity: 4,
    }
}

fn durability() -> DurabilityConfig {
    DurabilityConfig {
        segment_bytes: 64,
        retain_checkpoints: 2,
    }
}

/// The canonical basket for epoch `i` (same shape the scrub unit tests
/// use): two items, fully determined by the index.
fn basket(i: u64) -> [u32; 2] {
    [(i % 3) as u32, 3 + (i % 5) as u32]
}

/// Builds the deterministic store: generation stamp, ingest, one
/// checkpoint, more ingest so sealed segments survive past it. The
/// media image is identical on every call — trials diff against it.
fn build() -> (DurableStore, SharedDirState) {
    let media = MemDir::new();
    let state = media.state();
    let (store, _) =
        DurableStore::open_dir(Box::new(media), N_ITEMS, config(), durability()).expect("open_dir");
    store.set_generation(GENERATION).expect("set generation");
    for i in 0..PRE_CHECKPOINT {
        store.append_ids(basket(i)).expect("append");
    }
    store.checkpoint().expect("checkpoint");
    for i in PRE_CHECKPOINT..TOTAL {
        store.append_ids(basket(i)).expect("append");
    }
    (store, state)
}

/// A never-corrupted in-memory store fed the same baskets.
fn reference() -> Arc<IncrementalStore> {
    let store = Arc::new(IncrementalStore::new(N_ITEMS, config()));
    for i in 0..TOTAL {
        store.append_ids(basket(i)).expect("reference append");
    }
    store
}

fn read_file(state: &SharedDirState, name: &str) -> Vec<u8> {
    let mut dir = MemDir::with_state(Arc::clone(state));
    let mut file = dir.open(name).expect("open file");
    file.read_all().expect("read file")
}

fn flip_byte(state: &SharedDirState, name: &str, offset: usize) {
    let mut dir = MemDir::with_state(Arc::clone(state));
    let mut file = dir.open(name).expect("open file");
    let mut bytes = file.read_all().expect("read file");
    bytes[offset] ^= 0xFF;
    file.truncate(0).expect("truncate");
    file.append(&bytes).expect("append");
    file.sync().expect("sync");
}

fn list(state: &SharedDirState) -> Vec<String> {
    let mut dir = MemDir::with_state(Arc::clone(state));
    dir.list().expect("list")
}

/// A healthy replica serving the pristine basket history over the
/// [`RepairPeer`] contract, fencing requests from stale generations.
struct PristinePeer {
    store: Arc<IncrementalStore>,
    generation: u64,
    calls: u64,
}

impl RepairPeer for PristinePeer {
    fn fetch_range(
        &mut self,
        after_epoch: u64,
        max_baskets: usize,
        generation: u64,
    ) -> Result<Vec<Vec<ItemId>>, PeerError> {
        if generation < self.generation {
            return Err(PeerError::Fenced {
                peer_generation: self.generation,
            });
        }
        self.calls += 1;
        let upto = self
            .store
            .epoch()
            .min(after_epoch.saturating_add(max_baskets as u64));
        Ok(self.store.snapshot().baskets_range(after_epoch, upto))
    }
}

/// The artifacts the scrub pass walks, with their pristine images:
/// `GEN`, `MANIFEST`, every checkpoint, every *sealed* segment (the
/// active tail is re-verified by recovery, not by scrub).
fn walked_artifacts(state: &SharedDirState) -> BTreeMap<String, Vec<u8>> {
    let names = list(state);
    let segment_index = |name: &str| -> Option<u64> {
        name.strip_prefix("wal.")
            .and_then(|digits| digits.parse::<u64>().ok())
    };
    let active = names
        .iter()
        .filter_map(|n| segment_index(n))
        .max()
        .expect("at least one segment");
    names
        .into_iter()
        .filter(|n| {
            n == GEN_NAME
                || n == MANIFEST_NAME
                || bmb_basket::parse_checkpoint_name(n).is_some()
                || segment_index(n).is_some_and(|index| index < active)
        })
        .map(|n| {
            let bytes = read_file(state, &n);
            (n, bytes)
        })
        .collect()
}

/// Every artifact on media (including the active segment) — repairing
/// one must never perturb another.
fn all_artifacts(state: &SharedDirState) -> BTreeMap<String, Vec<u8>> {
    list(state)
        .into_iter()
        .filter(|n| !n.starts_with(QUARANTINE_PREFIX))
        .map(|n| {
            let bytes = read_file(state, &n);
            (n, bytes)
        })
        .collect()
}

/// Asserts bit-identical query answers between the repaired store and
/// the never-corrupted reference (the paper's chi²-over-exact-supports
/// contract: repairs must restore *exact* integer supports).
fn assert_bit_identical(recovered: &Arc<IncrementalStore>, reference: &Arc<IncrementalStore>) {
    assert_eq!(recovered.epoch(), reference.epoch(), "epochs diverge");
    let got = QueryEngine::new(Arc::clone(recovered), EngineConfig::default());
    let want = QueryEngine::new(Arc::clone(reference), EngineConfig::default());
    let got_snap = got.snapshot();
    let want_snap = want.snapshot();
    let mut probes: Vec<Itemset> = (0..N_ITEMS as u32)
        .map(|i| Itemset::from_ids([i]))
        .collect();
    for i in 0..N_ITEMS as u32 {
        probes.push(Itemset::from_ids([i, (i + 1) % N_ITEMS as u32]));
    }
    for set in &probes {
        let a = got.chi2(&got_snap, set).expect("recovered chi2");
        let b = want.chi2(&want_snap, set).expect("reference chi2");
        assert_eq!(a.support, b.support, "support diverges for {set:?}");
        assert_eq!(
            a.outcome.statistic.to_bits(),
            b.outcome.statistic.to_bits(),
            "chi2 statistic bits diverge for {set:?}"
        );
        assert_eq!(
            a.outcome.ln_p_value.to_bits(),
            b.outcome.ln_p_value.to_bits(),
            "ln p-value bits diverge for {set:?}"
        );
    }
    let miner = MinerConfig {
        support: SupportSpec::Fraction(0.05),
        support_fraction: 0.3,
        max_level: 3,
        ..MinerConfig::default()
    };
    let a = got.border(&got_snap, &miner).expect("recovered border");
    let b = want.border(&want_snap, &miner).expect("reference border");
    assert_eq!(a.support_count, b.support_count);
    assert_eq!(a.chi2_cutoff.to_bits(), b.chi2_cutoff.to_bits());
    assert_eq!(a.significant.len(), b.significant.len(), "border size");
    for (ra, rb) in a.significant.iter().zip(&b.significant) {
        assert_eq!(ra.itemset, rb.itemset);
        assert_eq!(ra.chi2.statistic.to_bits(), rb.chi2.statistic.to_bits());
        assert_eq!(ra.support_cells, rb.support_cells);
    }
}

/// One planned corruption point: flip `offset` of `name` on pristine
/// media, scrub once, verify the full detect → quarantine → repair →
/// crash-safe contract.
fn trial(name: &str, offset: usize, reference: &Arc<IncrementalStore>) {
    let (store, state) = build();
    let pristine = all_artifacts(&state);
    flip_byte(&state, name, offset);
    let mut peer = PristinePeer {
        store: Arc::clone(reference),
        generation: GENERATION,
        calls: 0,
    };
    let report = store.scrub_pass(Some(&mut peer), &ScrubOptions::default());
    let at = format!("{name}:{offset}");
    assert!(report.complete, "{at}: pass incomplete");
    assert_eq!(
        report.corruptions, 1,
        "{at}: flip not detected in one pass; findings: {:?}",
        report.findings
    );
    assert_eq!(
        report.repairs, 1,
        "{at}: not repaired; findings: {:?}",
        report.findings
    );
    assert_eq!(report.quarantines, 1, "{at}: evidence not quarantined");
    assert!(
        !report.degraded,
        "{at}: degraded; findings: {:?}",
        report.findings
    );
    for (artifact, bytes) in &pristine {
        assert_eq!(
            &read_file(&state, artifact),
            bytes,
            "{at}: artifact {artifact} differs from pristine after repair"
        );
    }
    let names = list(&state);
    assert!(
        names
            .iter()
            .any(|n| n.starts_with(QUARANTINE_PREFIX) && n.ends_with(name)),
        "{at}: evidence file missing: {names:?}"
    );
    assert!(store.is_healthy(), "{at}: store unhealthy after repair");
    let again = store.scrub_pass(None, &ScrubOptions::default());
    assert_eq!(
        again.corruptions, 0,
        "{at}: second pass still dirty: {:?}",
        again.findings
    );
    let mut dir = MemDir::with_state(Arc::clone(&state));
    let fsck = fsck_dir(&mut dir).expect("fsck");
    assert!(fsck.is_clean(), "{at}: fsck findings: {:?}", fsck.findings);
    assert_bit_identical(store.store(), reference);
    // The repair must be *durably* published: crash right now and
    // recover from the survivors — every acked epoch is still there
    // and the answers are still bit-identical.
    drop(store);
    let crashed = MemDir::crashed(&state);
    let (recovered, _) = DurableStore::open_dir(Box::new(crashed), N_ITEMS, config(), durability())
        .expect("recovery after repair must succeed");
    assert_eq!(
        recovered.epoch(),
        TOTAL,
        "{at}: crash after repair lost acked epochs"
    );
    assert_bit_identical(recovered.store(), reference);
}

/// The sweep: every byte of every walked artifact is one planned
/// corruption point. The workload is sized so this is well past the
/// 200-point floor; the count is asserted, not assumed.
#[test]
fn every_byte_of_every_artifact_detected_repaired_and_bit_identical() {
    let (_store, state) = build();
    let targets = walked_artifacts(&state);
    assert!(
        targets.keys().any(|n| n == GEN_NAME)
            && targets.keys().any(|n| n == MANIFEST_NAME)
            && targets
                .keys()
                .any(|n| bmb_basket::parse_checkpoint_name(n).is_some())
            && targets.keys().any(|n| n.starts_with("wal.")),
        "sweep must cover all four artifact kinds: {:?}",
        targets.keys().collect::<Vec<_>>()
    );
    let reference = reference();
    let mut planned = 0u64;
    for (name, bytes) in &targets {
        for offset in 0..bytes.len() {
            trial(name, offset, &reference);
            planned += 1;
        }
    }
    assert!(
        planned >= 200,
        "only {planned} corruption points planned; grow the workload"
    );
}

/// Damage every walked artifact at once: a single pass must detect,
/// quarantine, and repair all of them without degrading.
#[test]
fn simultaneous_corruption_of_every_artifact_heals_in_one_pass() {
    let (store, state) = build();
    let pristine = all_artifacts(&state);
    let targets = walked_artifacts(&state);
    for (name, bytes) in &targets {
        flip_byte(&state, name, bytes.len() / 2);
    }
    let reference = reference();
    let mut peer = PristinePeer {
        store: Arc::clone(&reference),
        generation: GENERATION,
        calls: 0,
    };
    let report = store.scrub_pass(Some(&mut peer), &ScrubOptions::default());
    assert!(report.complete);
    assert_eq!(
        report.corruptions,
        targets.len() as u64,
        "findings: {:?}",
        report.findings
    );
    assert_eq!(report.repairs, targets.len() as u64);
    assert_eq!(report.quarantines, targets.len() as u64);
    assert!(!report.degraded);
    for (artifact, bytes) in &pristine {
        assert_eq!(
            &read_file(&state, artifact),
            bytes,
            "artifact {artifact} differs from pristine after mass repair"
        );
    }
    assert!(store.is_healthy());
    let mut dir = MemDir::with_state(Arc::clone(&state));
    let fsck = fsck_dir(&mut dir).expect("fsck");
    assert!(fsck.is_clean(), "fsck findings: {:?}", fsck.findings);
    assert_bit_identical(store.store(), &reference);
}

/// A fenced peer (this node's generation is stale) must never be used
/// to "repair" segments; the pass falls back to the local rebuild and
/// still converges byte-identically — fencing keeps a stale replica
/// from poisoning a newer one while local evidence still suffices.
#[test]
fn fenced_peer_falls_back_to_local_rebuild() {
    let (store, state) = build();
    let pristine = all_artifacts(&state);
    let targets = walked_artifacts(&state);
    let segment = targets
        .keys()
        .find(|n| n.starts_with("wal."))
        .expect("a sealed segment")
        .clone();
    flip_byte(&state, &segment, pristine[&segment].len() - 1);
    let reference = reference();
    let mut peer = PristinePeer {
        store: Arc::clone(&reference),
        generation: GENERATION + 1, // peer is ahead: it fences us
        calls: 0,
    };
    let report = store.scrub_pass(Some(&mut peer), &ScrubOptions::default());
    assert_eq!(report.corruptions, 1, "findings: {:?}", report.findings);
    assert_eq!(report.repairs, 1, "findings: {:?}", report.findings);
    assert!(!report.degraded);
    assert_eq!(read_file(&state, &segment), pristine[&segment]);
    assert_bit_identical(store.store(), &reference);
}

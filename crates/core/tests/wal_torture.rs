//! Crash-recovery torture: randomized fault injection against the WAL.
//!
//! Each trial builds a small random workload, runs it against a
//! [`DurableStore`] over fault-injecting storage (torn writes, failed
//! syncs, bit-flipped bytes), "crashes", recovers from the surviving
//! bytes, and checks the durability contract:
//!
//! * every **acknowledged** append is present after recovery;
//! * the recovered store equals a never-crashed store fed the same
//!   prefix of batches — same epoch, and chi-squared / border answers
//!   **bit-identical** (`f64::to_bits`), not merely approximately equal;
//! * damage only ever costs the unacknowledged tail (recovery stops at
//!   the last valid record and reports the truncated remainder).
//!
//! Well over 200 distinct fault points run across the three tests; the
//! workloads are tiny so the whole file stays far under CI's time box.

use std::sync::{Arc, Mutex};

use bmb_basket::wal::DurableStore;
use bmb_basket::{
    FaultPlan, FaultStorage, IncrementalStore, ItemId, Itemset, MemStorage, StoreConfig,
};
use bmb_core::{EngineConfig, MinerConfig, QueryEngine, SupportSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One randomized ingest script: an item space, a seal capacity, and a
/// sequence of batches (each a list of baskets).
struct Workload {
    n_items: usize,
    capacity: usize,
    batches: Vec<Vec<Vec<u32>>>,
}

impl Workload {
    fn random(rng: &mut StdRng) -> Workload {
        let n_items = rng.gen_range(6..=14);
        let capacity = rng.gen_range(1..=6);
        let n_batches = rng.gen_range(2..=6);
        let batches = (0..n_batches)
            .map(|_| {
                let n_baskets = rng.gen_range(1..=5);
                (0..n_baskets)
                    .map(|_| {
                        let m = rng.gen_range(1..=4);
                        (0..m).map(|_| rng.gen_range(0..n_items as u32)).collect()
                    })
                    .collect()
            })
            .collect();
        Workload {
            n_items,
            capacity,
            batches,
        }
    }

    fn config(&self) -> StoreConfig {
        StoreConfig {
            segment_capacity: self.capacity,
        }
    }

    /// Cumulative basket count after each batch prefix (index 0 = empty).
    fn cumulative_baskets(&self) -> Vec<u64> {
        let mut cum = vec![0u64];
        for batch in &self.batches {
            cum.push(cum[cum.len() - 1] + batch.len() as u64);
        }
        cum
    }

    /// A never-crashed in-memory store fed the first `prefix` batches.
    fn reference_store(&self, prefix: usize) -> Arc<IncrementalStore> {
        let store = Arc::new(IncrementalStore::new(self.n_items, self.config()));
        for batch in &self.batches[..prefix] {
            store
                .append_batch(
                    batch
                        .iter()
                        .map(|b| b.iter().map(|&id| ItemId(id)).collect::<Vec<_>>()),
                )
                .expect("reference ingest is valid");
        }
        store
    }
}

/// Runs the whole workload against clean in-memory storage; returns the
/// final log bytes.
fn clean_log(workload: &Workload) -> Vec<u8> {
    let storage = MemStorage::new();
    let media = storage.bytes();
    let (durable, _) = DurableStore::open(Box::new(storage), workload.n_items, workload.config())
        .expect("clean open");
    for batch in &workload.batches {
        durable
            .append_batch(
                batch
                    .iter()
                    .map(|b| b.iter().map(|&id| ItemId(id)).collect::<Vec<_>>()),
            )
            .expect("clean append");
    }
    let bytes = media.lock().expect("media lock").clone();
    bytes
}

/// Asserts that `recovered` and `reference` answer queries identically:
/// equal epochs, bit-identical chi-squared statistics over every
/// singleton and a sample of pairs, and bit-identical border output.
fn assert_bit_identical(
    recovered: &Arc<IncrementalStore>,
    reference: &Arc<IncrementalStore>,
    n_items: usize,
) {
    assert_eq!(recovered.epoch(), reference.epoch(), "epochs diverge");
    if recovered.epoch() == 0 {
        return; // Both empty: queries reject empty snapshots.
    }
    let got = QueryEngine::new(Arc::clone(recovered), EngineConfig::default());
    let want = QueryEngine::new(Arc::clone(reference), EngineConfig::default());
    let got_snap = got.snapshot();
    let want_snap = want.snapshot();

    let mut probes: Vec<Itemset> = (0..n_items as u32)
        .map(|i| Itemset::from_ids([i]))
        .collect();
    for i in 0..n_items as u32 {
        probes.push(Itemset::from_ids([i, (i + 1) % n_items as u32]));
    }
    for set in &probes {
        let a = got.chi2(&got_snap, set).expect("recovered chi2");
        let b = want.chi2(&want_snap, set).expect("reference chi2");
        assert_eq!(a.support, b.support, "support diverges for {set:?}");
        assert_eq!(
            a.outcome.statistic.to_bits(),
            b.outcome.statistic.to_bits(),
            "chi2 statistic bits diverge for {set:?}"
        );
        assert_eq!(
            a.outcome.ln_p_value.to_bits(),
            b.outcome.ln_p_value.to_bits(),
            "ln p-value bits diverge for {set:?}"
        );
    }

    let miner = MinerConfig {
        support: SupportSpec::Fraction(0.05),
        support_fraction: 0.3,
        max_level: 3,
        ..MinerConfig::default()
    };
    let a = got.border(&got_snap, &miner).expect("recovered border");
    let b = want.border(&want_snap, &miner).expect("reference border");
    assert_eq!(a.support_count, b.support_count);
    assert_eq!(a.chi2_cutoff.to_bits(), b.chi2_cutoff.to_bits());
    assert_eq!(a.significant.len(), b.significant.len(), "border size");
    for (ra, rb) in a.significant.iter().zip(&b.significant) {
        assert_eq!(ra.itemset, rb.itemset);
        assert_eq!(ra.chi2.statistic.to_bits(), rb.chi2.statistic.to_bits());
        assert_eq!(ra.support_cells, rb.support_cells);
    }
}

/// Recovers from `survivors` and checks the contract: the recovered
/// state is some batch prefix containing at least the `acked` first
/// batches, bit-identical to a never-crashed reference at that prefix.
fn recover_and_verify(workload: &Workload, survivors: Vec<u8>, acked: usize) {
    let media = Arc::new(Mutex::new(survivors));
    let (recovered, report) = DurableStore::open(
        Box::new(MemStorage::with_bytes(media)),
        workload.n_items,
        workload.config(),
    )
    .expect("recovery must succeed on a torn tail");
    let cum = workload.cumulative_baskets();
    let prefix = cum
        .iter()
        .position(|&c| c == recovered.epoch())
        .unwrap_or_else(|| {
            panic!(
                "recovered epoch {} is not a batch-prefix boundary {cum:?}",
                recovered.epoch()
            )
        });
    assert!(
        prefix >= acked,
        "lost acknowledged data: recovered {prefix} batches, acked {acked}"
    );
    assert_eq!(report.epoch, recovered.epoch(), "report epoch mismatch");
    assert_eq!(
        report.baskets_recovered, cum[prefix],
        "report basket count mismatch"
    );
    let reference = workload.reference_store(prefix);
    assert_bit_identical(recovered.store(), &reference, workload.n_items);
}

/// Torn writes: the storage accepts only the first `budget` bytes, then
/// fails every append (persisting the partial frame). Runs 160 fault
/// points across random workloads; some also fail `sync` at the fault,
/// exercising the written-but-unacknowledged path.
#[test]
fn torn_write_torture() {
    let mut rng = StdRng::seed_from_u64(0xB0B_CAFE);
    let mut fault_points = 0usize;
    while fault_points < 160 {
        let workload = Workload::random(&mut rng);
        let clean_len = clean_log(&workload).len() as u64;
        for _ in 0..4 {
            let budget = rng.gen_range(0..=clean_len);
            let plan = FaultPlan {
                fail_after_bytes: Some(budget),
                fail_sync: rng.gen_range(0..2) == 0,
                ..FaultPlan::default()
            };
            run_one_torn_write(&workload, plan);
            fault_points += 1;
        }
    }
}

/// Torn writes with a bit-flip in the torn tail: after the fault trips,
/// one surviving byte is corrupted too (a dying disk scribbling). 60
/// fault points.
#[test]
fn torn_write_with_scribble_torture() {
    let mut rng = StdRng::seed_from_u64(0xD15_C0DE);
    let mut fault_points = 0usize;
    while fault_points < 60 {
        let workload = Workload::random(&mut rng);
        let clean_len = clean_log(&workload).len() as u64;
        for _ in 0..3 {
            let budget = rng.gen_range(8..=clean_len.max(8));
            // Scribble somewhere in the torn tail (past the magic so the
            // file stays recognizable as a WAL).
            let corrupt_at = rng.gen_range(8..=budget.max(8));
            let plan = FaultPlan {
                fail_after_bytes: Some(budget),
                corrupt_at: Some(corrupt_at),
                ..FaultPlan::default()
            };
            run_one_torn_write(&workload, plan);
            fault_points += 1;
        }
    }
}

/// Drives one workload into `plan`'s wall, crashes, recovers, verifies.
fn run_one_torn_write(workload: &Workload, plan: FaultPlan) {
    let storage = FaultStorage::new(plan);
    let media = storage.bytes();
    let opened = DurableStore::open(Box::new(storage), workload.n_items, workload.config());
    let mut acked = 0usize;
    // Where the acknowledged prefix of the log ends, so we can tell
    // whether a planned scribble damaged durable bytes (media
    // corruption, outside the crash guarantee) or only the torn tail.
    let mut acked_end = media.lock().expect("media lock").len() as u64;
    if let Ok((durable, _)) = opened {
        for batch in &workload.batches {
            let result = durable.append_batch(
                batch
                    .iter()
                    .map(|b| b.iter().map(|&id| ItemId(id)).collect::<Vec<_>>()),
            );
            match result {
                Ok(_) => {
                    acked += 1;
                    acked_end = media.lock().expect("media lock").len() as u64;
                }
                Err(_) => break, // the crash point
            }
        }
    }
    // else: the fault tripped while writing the magic header — nothing
    // was ever acknowledged; the survivors hold at most a torn header.
    let survivors = media.lock().expect("media lock").clone();
    if survivors.is_empty() {
        // Nothing landed at all: recovery sees a fresh, empty WAL.
        assert_eq!(acked, 0, "acked an append onto empty media");
        recover_and_verify(workload, survivors, 0);
        return;
    }
    if survivors.len() < 8 {
        // A torn magic header is not a WAL; recovery reports that
        // explicitly instead of serving an empty store. Nothing was
        // acked, so no data is lost.
        assert_eq!(acked, 0, "acked an append with no valid header");
        let media = Arc::new(Mutex::new(survivors));
        let result = DurableStore::open(
            Box::new(MemStorage::with_bytes(media)),
            workload.n_items,
            workload.config(),
        );
        assert!(result.is_err(), "a torn header must not open silently");
        return;
    }
    // The corrupt_at scribble may land inside the magic header itself.
    if survivors[..8] != *b"BMBWAL1\n" {
        assert!(
            plan.corrupt_at.is_some_and(|k| k < 8),
            "header damaged without a planned header fault"
        );
        return;
    }
    // A scribble inside the acknowledged prefix is media corruption of
    // durable data: recovery must still stop cleanly at the damage, but
    // records past it are forfeit, so only prefix-consistency holds.
    let effective_acked = if plan.corrupt_at.is_some_and(|k| k < acked_end) {
        0
    } else {
        acked
    };
    recover_and_verify(workload, survivors, effective_acked);
}

/// Bit flips in the middle of an otherwise complete log: recovery must
/// stop at the damaged record (never serve data past it, never crash)
/// and stay bit-identical to the intact prefix. 100 fault points. Here
/// nothing after the flip counts as acknowledged-and-guaranteed: media
/// corruption costs the tail, by contract.
#[test]
fn bit_flip_torture() {
    let mut rng = StdRng::seed_from_u64(0x5EED_F11A);
    let mut fault_points = 0usize;
    while fault_points < 100 {
        let workload = Workload::random(&mut rng);
        let clean = clean_log(&workload);
        for _ in 0..5 {
            let k = rng.gen_range(0..clean.len());
            let bit = rng.gen_range(0..8u32);
            let mut damaged = clean.clone();
            damaged[k] ^= 1u8 << bit;
            fault_points += 1;
            if k < 8 {
                // Header damage: explicit rejection, not silent data.
                let media = Arc::new(Mutex::new(damaged));
                let result = DurableStore::open(
                    Box::new(MemStorage::with_bytes(media)),
                    workload.n_items,
                    workload.config(),
                );
                assert!(result.is_err(), "flipped magic must not open");
                continue;
            }
            // Past the header: some prefix (possibly empty) survives.
            recover_and_verify(&workload, damaged, 0);
        }
    }
}

/// Storage whose reads fail must surface an error from `open`, never a
/// silently empty store.
#[test]
fn read_faults_fail_open_loudly() {
    let plan = FaultPlan {
        fail_reads: true,
        ..FaultPlan::default()
    };
    let storage = FaultStorage::new(plan);
    let result = DurableStore::open(Box::new(storage), 8, StoreConfig::default());
    assert!(result.is_err(), "unreadable media must not open");
}

//! Crash-recovery torture with checkpoints enabled: randomized fault
//! injection against the directory-mode [`DurableStore`] (rotating WAL
//! segments + atomic snapshots + manifest).
//!
//! Each trial builds a small random workload, interleaves ingest with
//! checkpoints over fault-injecting directory storage (torn writes,
//! failed entry operations, unsynced directory mutations), "crashes"
//! (reverting every entry mutation not covered by a directory sync),
//! recovers from the survivors, and checks the durability contract:
//!
//! * every **acknowledged** append is present after recovery;
//! * the recovered store equals a never-crashed store fed the same
//!   prefix of batches — chi-squared / border answers **bit-identical**
//!   (`f64::to_bits`), not merely approximately equal;
//! * recovery after a checkpoint replays only post-checkpoint records
//!   (`baskets_recovered == epoch - checkpoint_epoch`, pinned by the
//!   recovery gauges);
//! * a corrupted newest checkpoint falls back to an older one (or full
//!   replay) instead of failing recovery.
//!
//! Over 300 distinct planned fault points run across the tests; the
//! real-process SIGKILL counterpart lives in `bmb-serve`'s
//! `crash_kill` test.

use std::sync::Arc;

use bmb_basket::storage::SharedDirState;
use bmb_basket::wal::{DurabilityConfig, DurableStore, RecoveryReport};
use bmb_basket::{
    Dir, DirFaultPlan, FaultDir, IncrementalStore, ItemId, Itemset, MemDir, StoreConfig,
};
use bmb_core::{EngineConfig, MinerConfig, QueryEngine, SupportSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One randomized ingest script: an item space, a seal capacity, a
/// sequence of batches, and the batch indexes after which a checkpoint
/// is attempted.
struct Workload {
    n_items: usize,
    capacity: usize,
    batches: Vec<Vec<Vec<u32>>>,
    checkpoint_after: Vec<bool>,
    segment_bytes: u64,
}

impl Workload {
    fn random(rng: &mut StdRng) -> Workload {
        let n_items = rng.gen_range(6..=14);
        let capacity = rng.gen_range(1..=6);
        let n_batches = rng.gen_range(3..=8);
        let batches: Vec<Vec<Vec<u32>>> = (0..n_batches)
            .map(|_| {
                let n_baskets = rng.gen_range(1..=5);
                (0..n_baskets)
                    .map(|_| {
                        let m = rng.gen_range(1..=4);
                        (0..m).map(|_| rng.gen_range(0..n_items as u32)).collect()
                    })
                    .collect()
            })
            .collect();
        let checkpoint_after = (0..n_batches).map(|_| rng.gen_range(0..3) == 0).collect();
        // Tiny segments so rotation happens constantly under torture.
        let segment_bytes = rng.gen_range(48..=256);
        Workload {
            n_items,
            capacity,
            batches,
            checkpoint_after,
            segment_bytes,
        }
    }

    fn config(&self) -> StoreConfig {
        StoreConfig {
            segment_capacity: self.capacity,
        }
    }

    fn durability(&self) -> DurabilityConfig {
        DurabilityConfig {
            segment_bytes: self.segment_bytes,
            retain_checkpoints: 2,
        }
    }

    /// Cumulative basket count after each batch prefix (index 0 = empty).
    fn cumulative_baskets(&self) -> Vec<u64> {
        let mut cum = vec![0u64];
        for batch in &self.batches {
            cum.push(cum[cum.len() - 1] + batch.len() as u64);
        }
        cum
    }

    /// A never-crashed in-memory store fed the first `prefix` batches.
    fn reference_store(&self, prefix: usize) -> Arc<IncrementalStore> {
        let store = Arc::new(IncrementalStore::new(self.n_items, self.config()));
        for batch in &self.batches[..prefix] {
            store
                .append_batch(
                    batch
                        .iter()
                        .map(|b| b.iter().map(|&id| ItemId(id)).collect::<Vec<_>>()),
                )
                .expect("reference ingest is valid");
        }
        store
    }

    /// Runs the whole workload (appends + checkpoints) against clean
    /// in-memory directory storage; returns total bytes ever written,
    /// an upper bound for torn-write budgets.
    fn clean_run_bytes(&self) -> u64 {
        let dir = MemDir::new();
        let state = dir.state();
        let (durable, _) = DurableStore::open_dir(
            Box::new(dir),
            self.n_items,
            self.config(),
            self.durability(),
        )
        .expect("clean open");
        for (i, batch) in self.batches.iter().enumerate() {
            durable
                .append_batch(
                    batch
                        .iter()
                        .map(|b| b.iter().map(|&id| ItemId(id)).collect::<Vec<_>>()),
                )
                .expect("clean append");
            if self.checkpoint_after[i] {
                durable.checkpoint().expect("clean checkpoint");
            }
        }
        let mut d = MemDir::with_state(state);
        let names = d.list().expect("list");
        names
            .iter()
            .map(|n| d.file_len(n).unwrap_or(0))
            .sum::<u64>()
            .max(64)
    }
}

/// Asserts that `recovered` and `reference` answer queries identically:
/// equal epochs, bit-identical chi-squared statistics over every
/// singleton and a sample of pairs, and bit-identical border output.
fn assert_bit_identical(
    recovered: &Arc<IncrementalStore>,
    reference: &Arc<IncrementalStore>,
    n_items: usize,
) {
    assert_eq!(recovered.epoch(), reference.epoch(), "epochs diverge");
    if recovered.epoch() == 0 {
        return; // Both empty: queries reject empty snapshots.
    }
    let got = QueryEngine::new(Arc::clone(recovered), EngineConfig::default());
    let want = QueryEngine::new(Arc::clone(reference), EngineConfig::default());
    let got_snap = got.snapshot();
    let want_snap = want.snapshot();

    let mut probes: Vec<Itemset> = (0..n_items as u32)
        .map(|i| Itemset::from_ids([i]))
        .collect();
    for i in 0..n_items as u32 {
        probes.push(Itemset::from_ids([i, (i + 1) % n_items as u32]));
    }
    for set in &probes {
        let a = got.chi2(&got_snap, set).expect("recovered chi2");
        let b = want.chi2(&want_snap, set).expect("reference chi2");
        assert_eq!(a.support, b.support, "support diverges for {set:?}");
        assert_eq!(
            a.outcome.statistic.to_bits(),
            b.outcome.statistic.to_bits(),
            "chi2 statistic bits diverge for {set:?}"
        );
        assert_eq!(
            a.outcome.ln_p_value.to_bits(),
            b.outcome.ln_p_value.to_bits(),
            "ln p-value bits diverge for {set:?}"
        );
    }

    let miner = MinerConfig {
        support: SupportSpec::Fraction(0.05),
        support_fraction: 0.3,
        max_level: 3,
        ..MinerConfig::default()
    };
    let a = got.border(&got_snap, &miner).expect("recovered border");
    let b = want.border(&want_snap, &miner).expect("reference border");
    assert_eq!(a.support_count, b.support_count);
    assert_eq!(a.chi2_cutoff.to_bits(), b.chi2_cutoff.to_bits());
    assert_eq!(a.significant.len(), b.significant.len(), "border size");
    for (ra, rb) in a.significant.iter().zip(&b.significant) {
        assert_eq!(ra.itemset, rb.itemset);
        assert_eq!(ra.chi2.statistic.to_bits(), rb.chi2.statistic.to_bits());
        assert_eq!(ra.support_cells, rb.support_cells);
    }
}

/// Recovers from a crashed directory view and checks the contract. The
/// recovered state must be some batch-prefix containing at least the
/// `acked` first batches, bit-identical to a never-crashed reference at
/// that prefix, and replay must be bounded by the loaded checkpoint.
fn recover_and_verify(
    workload: &Workload,
    crashed: &SharedDirState,
    acked: usize,
) -> RecoveryReport {
    let dir = MemDir::crashed(crashed);
    let (recovered, report) = DurableStore::open_dir(
        Box::new(dir),
        workload.n_items,
        workload.config(),
        workload.durability(),
    )
    .expect("recovery must succeed on crash survivors");
    let cum = workload.cumulative_baskets();
    let prefix = cum
        .iter()
        .position(|&c| c == recovered.epoch())
        .unwrap_or_else(|| {
            panic!(
                "recovered epoch {} is not a batch-prefix boundary {cum:?}",
                recovered.epoch()
            )
        });
    assert!(
        prefix >= acked,
        "lost acknowledged data: recovered {prefix} batches, acked {acked}"
    );
    assert_eq!(report.epoch, recovered.epoch(), "report epoch mismatch");
    // Bounded replay: everything at or below the loaded checkpoint is
    // restored from the snapshot, only the remainder replays.
    assert!(
        report.checkpoint_epoch <= recovered.epoch(),
        "checkpoint past the recovered epoch"
    );
    assert_eq!(
        report.baskets_recovered,
        recovered.epoch() - report.checkpoint_epoch,
        "replay was not bounded by the checkpoint: {report:?}"
    );
    // The recovery gauges agree with the report (the serve layer's
    // /metrics reads these).
    let obs = recovered.observability().snapshot();
    assert_eq!(
        obs.gauge_value("bmb_basket_ckpt_recovery_epoch", &[]) as u64,
        report.checkpoint_epoch
    );
    assert_eq!(
        obs.gauge_value("bmb_basket_wal_recovered_baskets", &[]) as u64,
        report.baskets_recovered
    );
    assert_eq!(
        obs.gauge_value("bmb_basket_wal_recovery_skipped_records", &[]) as u64,
        report.records_skipped
    );
    assert_eq!(
        obs.gauge_value("bmb_basket_ckpt_recovery_fallbacks", &[]) as u64,
        report.checkpoint_fallbacks
    );
    let reference = workload.reference_store(prefix);
    assert_bit_identical(recovered.store(), &reference, workload.n_items);
    report
}

/// Drives one workload into a fault plan's wall, crashes, recovers,
/// verifies. Returns how many batches were acknowledged.
fn run_one(workload: &Workload, plan: DirFaultPlan) {
    let dir = FaultDir::new(plan);
    let state = dir.dir_state();
    let opened = DurableStore::open_dir(
        Box::new(dir),
        workload.n_items,
        workload.config(),
        workload.durability(),
    );
    let mut acked = 0usize;
    if let Ok((durable, _)) = opened {
        for (i, batch) in workload.batches.iter().enumerate() {
            let result = durable.append_batch(
                batch
                    .iter()
                    .map(|b| b.iter().map(|&id| ItemId(id)).collect::<Vec<_>>()),
            );
            match result {
                Ok(_) => acked += 1,
                Err(_) => break, // the crash point
            }
            if workload.checkpoint_after[i] {
                // A failing checkpoint must never affect ingest
                // correctness; keep going either way.
                let _ = durable.checkpoint();
            }
        }
    }
    // else: the fault tripped while creating the first segment — nothing
    // was ever acknowledged.
    recover_and_verify(workload, &state, acked);
}

/// Torn writes against the directory store: the shared byte budget
/// spans WAL segments, checkpoint temps, and the manifest alike, so the
/// wall lands mid-rotation, mid-snapshot, or mid-append at random. 160
/// fault points; half also lose every entry mutation after the last
/// directory sync (fail_dir_sync_at).
#[test]
fn torn_write_checkpoint_torture() {
    let mut rng = StdRng::seed_from_u64(0xC4EC_C4EC);
    let mut fault_points = 0usize;
    while fault_points < 160 {
        let workload = Workload::random(&mut rng);
        let clean_bytes = workload.clean_run_bytes();
        for _ in 0..4 {
            let budget = rng.gen_range(0..=clean_bytes);
            let plan = DirFaultPlan {
                fail_after_bytes: Some(budget),
                fail_dir_sync_at: if rng.gen_range(0..2) == 0 {
                    Some(rng.gen_range(0..8u64))
                } else {
                    None
                },
                ..DirFaultPlan::default()
            };
            run_one(&workload, plan);
            fault_points += 1;
        }
    }
}

/// Entry-operation faults: a planned failure on the Nth create, rename,
/// or delete — the atomic-rename checkpoint protocol and rotation must
/// degrade cleanly (old state intact, next attempt succeeds), never
/// acknowledge over a hole. 90 fault points.
#[test]
fn entry_op_fault_torture() {
    let mut rng = StdRng::seed_from_u64(0x0DD0_0505);
    let mut fault_points = 0usize;
    while fault_points < 90 {
        let workload = Workload::random(&mut rng);
        for _ in 0..3 {
            let n = rng.gen_range(0..6u64);
            let mut plan = DirFaultPlan::default();
            match rng.gen_range(0..3) {
                0 => plan.fail_create_at = Some(n),
                1 => plan.fail_rename_at = Some(n),
                _ => plan.fail_delete_at = Some(n),
            }
            run_one(&workload, plan);
            fault_points += 1;
        }
    }
}

/// Checkpoint corruption: run clean (checkpoints included), then flip a
/// random bit inside the newest checkpoint file, reopen, and require
/// the ladder to fall back — to an older checkpoint or full replay —
/// with zero data loss (the WAL still holds everything). 80 fault
/// points.
#[test]
fn corrupted_checkpoint_fallback_torture() {
    let mut rng = StdRng::seed_from_u64(0xFA11_BACC);
    let mut fault_points = 0usize;
    while fault_points < 80 {
        let workload = Workload::random(&mut rng);
        if !workload.checkpoint_after.iter().any(|&c| c) {
            continue; // need at least one checkpoint to corrupt
        }
        // Clean run on plain MemDir.
        let dir = MemDir::new();
        let state = dir.state();
        let (durable, _) = DurableStore::open_dir(
            Box::new(dir),
            workload.n_items,
            workload.config(),
            workload.durability(),
        )
        .expect("clean open");
        for (i, batch) in workload.batches.iter().enumerate() {
            durable
                .append_batch(
                    batch
                        .iter()
                        .map(|b| b.iter().map(|&id| ItemId(id)).collect::<Vec<_>>()),
                )
                .expect("clean append");
            if workload.checkpoint_after[i] {
                durable.checkpoint().expect("clean checkpoint");
            }
        }
        let acked = workload.batches.len();
        drop(durable);

        for _ in 0..4 {
            // Corrupt a fresh copy of the directory each round.
            let crashed = MemDir::crashed(&state);
            let cstate = crashed.state();
            let newest = {
                let mut d = MemDir::with_state(Arc::clone(&cstate));
                let names = d.list().expect("list");
                let Some(newest) = names
                    .iter()
                    .filter(|n| n.starts_with("ckpt."))
                    .max()
                    .cloned()
                else {
                    break; // retention may have replaced files; rare
                };
                let mut f = d.open(&newest).expect("open ckpt");
                let bytes = f.read_all().expect("read ckpt");
                let k = rng.gen_range(0..bytes.len());
                let bit = rng.gen_range(0..8u32);
                let mut damaged = bytes.clone();
                damaged[k] ^= 1u8 << bit;
                f.truncate(0).expect("truncate");
                f.append(&damaged).expect("rewrite");
                newest
            };
            let report = recover_and_verify(&workload, &cstate, acked);
            // The damaged newest snapshot must have been rejected (one
            // fallback), unless the flip landed in a basket id that
            // still decodes — impossible: the CRC covers every byte.
            assert!(
                report.checkpoint_fallbacks >= 1,
                "corrupting {newest} did not register as a fallback: {report:?}"
            );
            fault_points += 1;
        }
    }
}

/// Deterministic bounded-recovery check (the gauges the acceptance
/// criteria name): ingest, checkpoint, ingest a little more, reopen —
/// only the post-checkpoint records replay, and whole covered segments
/// are skipped without decoding.
#[test]
fn recovery_replays_only_post_checkpoint_records() {
    let dir = MemDir::new();
    let state = dir.state();
    let config = StoreConfig {
        segment_capacity: 4,
    };
    let durability = DurabilityConfig {
        segment_bytes: 64,
        retain_checkpoints: 2,
    };
    let (durable, _) = DurableStore::open_dir(Box::new(dir), 8, config, durability).expect("open");
    for i in 0..30u32 {
        durable.append_ids([i % 8, (i + 3) % 8]).expect("append");
    }
    durable.checkpoint().expect("first checkpoint");
    for i in 0..20u32 {
        durable.append_ids([i % 8, (i + 3) % 8]).expect("append");
    }
    // Second checkpoint: retention keeps both (retain_checkpoints = 2),
    // so coverage = 30 — the segments between epoch 30 and 50 survive
    // on disk, wholly covered by the newest snapshot. Recovery must
    // skip them without decoding.
    durable.checkpoint().expect("second checkpoint");
    for i in 0..5u32 {
        durable.append_ids([i % 8]).expect("append");
    }
    drop(durable);

    let (recovered, report) =
        DurableStore::open_dir(Box::new(MemDir::crashed(&state)), 8, config, durability)
            .expect("reopen");
    assert_eq!(report.epoch, 55);
    assert_eq!(report.checkpoint_epoch, 50);
    assert_eq!(
        report.baskets_recovered, 5,
        "only the 5 post-checkpoint appends replay: {report:?}"
    );
    assert!(
        report.segments_skipped > 0,
        "tiny segments under a checkpoint must be skipped whole: {report:?}"
    );
    let obs = recovered.observability().snapshot();
    assert_eq!(obs.gauge_value("bmb_basket_ckpt_recovery_epoch", &[]), 50);
    assert_eq!(obs.gauge_value("bmb_basket_wal_recovered_baskets", &[]), 5);
    assert_eq!(
        obs.gauge_value("bmb_basket_wal_recovery_skipped_segments", &[]) as u64,
        report.segments_skipped
    );
}

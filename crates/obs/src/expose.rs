//! Prometheus text exposition (format version 0.0.4).
//!
//! Renders one or more [`RegistrySnapshot`]s into the plain-text
//! format Prometheus scrapes: `# HELP` / `# TYPE` headers, one sample
//! line per series, histogram series expanded into cumulative
//! `_bucket{le="…"}` lines plus `_sum` and `_count`. Multiple
//! snapshots (server + engine + WAL + global) merge by family name;
//! families and series are sorted so the output is byte-deterministic
//! for the golden test.

use std::fmt::Write as _;

use crate::histogram::{bucket_upper_bound, FINITE_BUCKETS};
use crate::registry::{FamilySnapshot, MetricKind, MetricValue, RegistrySnapshot};

/// Escapes a `# HELP` text: backslash and newline.
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes a label value: backslash, double quote, newline.
fn escape_label(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders a label set (plus an optional extra label, used for `le`)
/// as `{k="v",…}`, or the empty string when there are no labels.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn kind_name(kind: MetricKind) -> &'static str {
    match kind {
        MetricKind::Counter => "counter",
        MetricKind::Gauge => "gauge",
        MetricKind::Histogram => "histogram",
    }
}

fn render_family(out: &mut String, family: &FamilySnapshot) {
    let name = &family.name;
    let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
    let _ = writeln!(out, "# TYPE {name} {}", kind_name(family.kind));
    for series in &family.series {
        match &series.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{name}{} {v}", label_block(&series.labels, None));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name}{} {v}", label_block(&series.labels, None));
            }
            MetricValue::Histogram(hist) => {
                let mut cumulative = 0u64;
                for (index, &count) in hist.buckets.iter().enumerate() {
                    cumulative = cumulative.saturating_add(count);
                    // Suppress interior all-zero buckets to keep the
                    // output small, but always emit a bucket whose
                    // cumulative count changed, the first bucket, and
                    // the +Inf bucket.
                    let is_inf = index >= FINITE_BUCKETS;
                    if count == 0 && !is_inf && index != 0 {
                        continue;
                    }
                    let le = if is_inf {
                        "+Inf".to_string()
                    } else {
                        bucket_upper_bound(index).to_string()
                    };
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cumulative}",
                        label_block(&series.labels, Some(("le", &le)))
                    );
                }
                let _ = writeln!(
                    out,
                    "{name}_sum{} {}",
                    label_block(&series.labels, None),
                    hist.sum
                );
                let _ = writeln!(
                    out,
                    "{name}_count{} {cumulative}",
                    label_block(&series.labels, None)
                );
            }
        }
    }
}

/// Renders snapshots to Prometheus text exposition. Families from all
/// snapshots are merged by name (first occurrence wins the help/type
/// header; series concatenate) and sorted; the result ends with a
/// trailing newline as the format requires.
pub fn render(snapshots: &[&RegistrySnapshot]) -> String {
    let mut merged: Vec<FamilySnapshot> = Vec::new();
    for snapshot in snapshots {
        for family in &snapshot.families {
            if let Some(existing) = merged.iter_mut().find(|f| f.name == family.name) {
                existing.series.extend(family.series.iter().cloned());
            } else {
                merged.push(family.clone());
            }
        }
    }
    merged.sort_by(|a, b| a.name.cmp(&b.name));
    for family in &mut merged {
        family.series.sort_by(|a, b| a.labels.cmp(&b.labels));
    }
    let mut out = String::new();
    for family in &merged {
        render_family(&mut out, family);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn counters_and_gauges_render_plain_lines() {
        let registry = Registry::new();
        registry.counter("bmb_x_total", "things").add(3);
        registry.gauge("bmb_y", "level").set(-2);
        let text = render(&[&registry.snapshot()]);
        assert!(text.contains("# TYPE bmb_x_total counter\nbmb_x_total 3\n"));
        assert!(text.contains("# TYPE bmb_y gauge\nbmb_y -2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter_with("bmb_esc_total", "escape\ncheck", &[("cmd", "a\"b\\c\nd")])
            .inc();
        let text = render(&[&registry.snapshot()]);
        assert!(text.contains("# HELP bmb_esc_total escape\\ncheck\n"));
        assert!(text.contains(r#"bmb_esc_total{cmd="a\"b\\c\nd"} 1"#));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_consistent() {
        let registry = Registry::new();
        let hist = registry.histogram("bmb_lat_us", "latency");
        hist.record(3); // bucket le=4
        hist.record(3);
        hist.record(100); // bucket le=128
        let text = render(&[&registry.snapshot()]);
        assert!(text.contains(r#"bmb_lat_us_bucket{le="4"} 2"#));
        assert!(text.contains(r#"bmb_lat_us_bucket{le="128"} 3"#));
        assert!(text.contains(r#"bmb_lat_us_bucket{le="+Inf"} 3"#));
        assert!(text.contains("bmb_lat_us_sum 106"));
        assert!(text.contains("bmb_lat_us_count 3"));
    }

    #[test]
    fn merge_combines_families_across_registries() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter_with("bmb_shared_total", "shared", &[("src", "a")])
            .inc();
        b.counter_with("bmb_shared_total", "shared", &[("src", "b")])
            .add(2);
        b.counter("bmb_only_b_total", "solo").inc();
        let text = render(&[&a.snapshot(), &b.snapshot()]);
        // One header for the merged family, both series present.
        assert_eq!(text.matches("# TYPE bmb_shared_total counter").count(), 1);
        assert!(text.contains(r#"bmb_shared_total{src="a"} 1"#));
        assert!(text.contains(r#"bmb_shared_total{src="b"} 2"#));
        assert!(text.contains("bmb_only_b_total 1"));
    }
}

//! Metric registry: named families of counters, gauges, histograms.
//!
//! Registration takes the registry mutex once and hands back an
//! `Arc`-backed handle; every subsequent hot-path operation is a single
//! relaxed atomic RMW with no lock. Re-registering the same
//! `(name, labels)` returns a handle to the *same* cell, so independent
//! subsystems can share a series without coordination. Registering an
//! existing name with a different metric kind is a programming error;
//! rather than panic (this crate is panic-free) the call returns a
//! *detached* cell that is never exported — the bug shows up as a
//! missing series in `/metrics`, not a crash.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::histogram::{HistogramCore, HistogramSnapshot};

/// Monotone event counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A detached counter not bound to any registry (useful in tests).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (active connections, degraded flag, …).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A detached gauge not bound to any registry (useful in tests).
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Adds `n` (may go negative).
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero: a release that races a
    /// concurrent reset can never drive the gauge negative.
    pub fn sub_saturating(&self, n: i64) {
        let _ = self
            .cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some((v - n).max(0))
            });
    }

    /// Raises the gauge to `value` if it is below it (monotonic max —
    /// high-water marks like the last served epoch).
    pub fn set_max(&self, value: i64) {
        self.cell.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Log-scale latency/size histogram. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A detached histogram not bound to any registry (useful in tests).
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.core.record(value);
    }

    /// Records a duration in microseconds (saturating).
    pub fn record_duration(&self, duration: Duration) {
        let micros = duration.as_micros().min(u128::from(u64::MAX)) as u64;
        self.core.record(micros);
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core.snapshot()
    }
}

/// What kind of metric a family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter (`_total` naming convention).
    Counter,
    /// Instantaneous gauge.
    Gauge,
    /// Log-scale histogram (`_us` naming convention for latencies).
    Histogram,
}

/// One registered series: a label set and its live cell.
#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    cell: Cell,
}

#[derive(Debug)]
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// All series sharing a metric name.
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// A set of metric families; the unit of snapshotting and exposition.
///
/// Servers and durable stores own one registry each (so parallel tests
/// never share counters); the batch miner uses [`crate::global`].
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or re-fetches) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or re-fetches) a counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, MetricKind::Counter, labels) {
            Cell::Counter(c) => c,
            _ => Counter::detached(),
        }
    }

    /// Registers (or re-fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or re-fetches) a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, MetricKind::Gauge, labels) {
            Cell::Gauge(g) => g,
            _ => Gauge::detached(),
        }
    }

    /// Registers (or re-fetches) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or re-fetches) a histogram with labels.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, MetricKind::Histogram, labels) {
            Cell::Histogram(h) => h,
            _ => Histogram::detached(),
        }
    }

    fn register(&self, name: &str, help: &str, kind: MetricKind, labels: &[(&str, &str)]) -> Cell {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            if family.kind != kind {
                // Kind clash: degrade to a detached cell (documented).
                return fresh_cell(kind);
            }
            if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
                return clone_cell(&series.cell);
            }
            let cell = fresh_cell(kind);
            family.series.push(Series {
                labels,
                cell: clone_cell(&cell),
            });
            return cell;
        }
        let cell = fresh_cell(kind);
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            series: vec![Series {
                labels,
                cell: clone_cell(&cell),
            }],
        });
        cell
    }

    /// Point-in-time copy of every registered series. Families and
    /// series are sorted (by name, then label set) so output is
    /// deterministic.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<FamilySnapshot> = families
            .iter()
            .map(|family| {
                let mut series: Vec<SeriesSnapshot> = family
                    .series
                    .iter()
                    .map(|s| SeriesSnapshot {
                        labels: s.labels.clone(),
                        value: match &s.cell {
                            Cell::Counter(c) => MetricValue::Counter(c.get()),
                            Cell::Gauge(g) => MetricValue::Gauge(g.get()),
                            Cell::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                        },
                    })
                    .collect();
                series.sort_by(|a, b| a.labels.cmp(&b.labels));
                FamilySnapshot {
                    name: family.name.clone(),
                    help: family.help.clone(),
                    kind: family.kind,
                    series,
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        RegistrySnapshot { families: out }
    }
}

fn fresh_cell(kind: MetricKind) -> Cell {
    match kind {
        MetricKind::Counter => Cell::Counter(Counter::detached()),
        MetricKind::Gauge => Cell::Gauge(Gauge::detached()),
        MetricKind::Histogram => Cell::Histogram(Histogram::detached()),
    }
}

fn clone_cell(cell: &Cell) -> Cell {
    match cell {
        Cell::Counter(c) => Cell::Counter(c.clone()),
        Cell::Gauge(g) => Cell::Gauge(g.clone()),
        Cell::Histogram(h) => Cell::Histogram(h.clone()),
    }
}

/// Snapshot of a whole registry (the programmatic API tests consume).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Families sorted by name.
    pub families: Vec<FamilySnapshot>,
}

/// Snapshot of one metric family.
#[derive(Clone, Debug, PartialEq)]
pub struct FamilySnapshot {
    /// Metric name (`bmb_<crate>_<subsystem>_<unit>`).
    pub name: String,
    /// Help text for the exposition `# HELP` line.
    pub help: String,
    /// Metric kind for the exposition `# TYPE` line.
    pub kind: MetricKind,
    /// Series sorted by label set.
    pub series: Vec<SeriesSnapshot>,
}

/// Snapshot of one series within a family.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSnapshot {
    /// Label key/value pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The observed value.
    pub value: MetricValue,
}

/// A snapshotted metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state (boxed: a snapshot is ~40 bucket counts, far
    /// larger than the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

impl RegistrySnapshot {
    /// Looks up a series by family name and exact label set.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let family = self.families.iter().find(|f| f.name == name)?;
        family
            .series
            .iter()
            .find(|s| {
                s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels.iter())
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|s| &s.value)
    }

    /// Counter value for `(name, labels)`, or 0 when absent.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.find(name, labels) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value for `(name, labels)`, or 0 when absent.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> i64 {
        match self.find(name, labels) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram snapshot for `(name, labels)`, or empty when absent.
    pub fn histogram_value(&self, name: &str, labels: &[(&str, &str)]) -> HistogramSnapshot {
        match self.find(name, labels) {
            Some(MetricValue::Histogram(h)) => **h,
            _ => HistogramSnapshot::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reregistration_shares_the_cell() {
        let registry = Registry::new();
        let a = registry.counter("bmb_test_events_total", "events");
        let b = registry.counter("bmb_test_events_total", "events");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(
            registry
                .snapshot()
                .counter_value("bmb_test_events_total", &[]),
            3
        );
    }

    #[test]
    fn labelled_series_are_distinct() {
        let registry = Registry::new();
        let hits = registry.counter_with("bmb_test_cache_total", "cache ops", &[("op", "hit")]);
        let misses = registry.counter_with("bmb_test_cache_total", "cache ops", &[("op", "miss")]);
        hits.add(5);
        misses.inc();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("bmb_test_cache_total", &[("op", "hit")]),
            5
        );
        assert_eq!(
            snap.counter_value("bmb_test_cache_total", &[("op", "miss")]),
            1
        );
    }

    #[test]
    fn kind_clash_degrades_to_detached() {
        let registry = Registry::new();
        let counter = registry.counter("bmb_test_thing", "thing");
        counter.add(7);
        // Same name, wrong kind: a detached gauge, not a panic.
        let gauge = registry.gauge("bmb_test_thing", "thing");
        gauge.set(99);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("bmb_test_thing", &[]), 7);
        assert_eq!(snap.families.len(), 1);
    }

    #[test]
    fn gauge_sub_saturates_at_zero() {
        let gauge = Gauge::detached();
        gauge.add(1);
        gauge.sub_saturating(1);
        gauge.sub_saturating(1);
        assert_eq!(gauge.get(), 0);
    }

    #[test]
    fn gauge_set_max_is_monotonic() {
        let gauge = Gauge::detached();
        gauge.set_max(5);
        gauge.set_max(3);
        assert_eq!(gauge.get(), 5, "a lower value must not lower the mark");
        gauge.set_max(9);
        assert_eq!(gauge.get(), 9);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let registry = Registry::new();
        registry.counter("bmb_z_total", "z");
        registry.counter("bmb_a_total", "a");
        registry.counter_with("bmb_m_total", "m", &[("k", "b")]);
        registry.counter_with("bmb_m_total", "m", &[("k", "a")]);
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["bmb_a_total", "bmb_m_total", "bmb_z_total"]);
        let m = &snap.families[1];
        assert_eq!(m.series[0].labels[0].1, "a");
        assert_eq!(m.series[1].labels[0].1, "b");
    }
}

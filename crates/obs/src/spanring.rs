//! Completed-span records for cross-node trace reconstruction.
//!
//! A [`SpanRecord`] is the durable residue of one timed operation —
//! request handling on a server, or one sub-request a coordinator sent
//! to a shard. Each node keeps a bounded [`SpanRing`] of recently
//! completed spans; the `trace <id>` wire command reads the ring back,
//! and the coordinator merges rings across nodes into the full
//! scatter-gather tree for one trace.
//!
//! Span ids must be unique across *processes* (a coordinator's client
//! span and a shard's server span land in different rings and meet
//! again only at reconstruction time), so [`next_span_id`] mixes a
//! per-process random base into a process-local counter. Trace ids
//! stay per-server sequential (golden fixtures pin them); span ids are
//! never echoed in responses, so randomness is safe here.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default capacity of a node's span ring.
pub const DEFAULT_SPAN_CAPACITY: usize = 512;

/// One completed span, as recorded into a node's [`SpanRing`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Operation name (`serve:chi2`, `rpc:support_vec`, …).
    pub name: String,
    /// The trace this span belongs to (never 0 for recorded spans).
    pub trace: u64,
    /// This span's id (unique across processes; never 0).
    pub span: u64,
    /// Parent span id (0 = root of its process's contribution).
    pub parent: u64,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub start_unix_us: u64,
    /// Wall time the operation took, microseconds.
    pub duration_us: u64,
    /// The recording node's role (`server`, `coordinator`, `shard`,
    /// `follower`).
    pub node: String,
    /// Shard index when the node serves one (`-1` = not sharded).
    pub shard: i64,
    /// Outcome: `ok`, `error`, `retryable`, or `fenced`.
    pub outcome: String,
}

/// Fixed-capacity ring of completed spans, oldest evicted first.
#[derive(Debug)]
pub struct SpanRing {
    capacity: usize,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<SpanRecord>>,
}

impl SpanRing {
    /// A ring keeping at most `capacity` recent spans.
    pub fn new(capacity: usize) -> SpanRing {
        SpanRing {
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Records one completed span, evicting the oldest when full.
    /// Spans without a trace id are dropped — they could never be
    /// queried back.
    pub fn record(&self, record: SpanRecord) {
        if record.trace == 0 {
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() >= self.capacity {
            ring.pop_front();
            // ordering: statistics only; racing reads may lag by one.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// The retained spans belonging to `trace`, oldest first.
    pub fn for_trace(&self, trace: u64) -> Vec<SpanRecord> {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.iter().filter(|s| s.trace == trace).cloned().collect()
    }

    /// Every retained span, oldest first.
    pub fn recent(&self) -> Vec<SpanRecord> {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.iter().cloned().collect()
    }

    /// How many spans the ring has evicted since creation.
    pub fn dropped(&self) -> u64 {
        // ordering: statistics only.
        self.dropped.load(Ordering::Relaxed)
    }
}

/// SplitMix64 finalizer — a cheap, well-mixed bijection on `u64`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A per-process random base so span ids never collide across the
/// nodes of one cluster (each process seeds from its own start time
/// and pid).
fn process_base() -> u64 {
    static BASE: OnceLock<u64> = OnceLock::new();
    *BASE.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        splitmix64(nanos ^ (std::process::id() as u64).rotate_left(32))
    })
}

/// Allocates a process-unique span id (never 0). Unlike trace ids —
/// per-server sequential so golden fixtures stay byte-stable — span
/// ids are internal to trace reconstruction and carry a random
/// per-process base for cross-process uniqueness.
pub fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    // ordering: uniqueness only needs the RMW to be atomic.
    let seq = NEXT.fetch_add(1, Ordering::Relaxed);
    let id = splitmix64(process_base().wrapping_add(seq));
    if id == 0 {
        1
    } else {
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(trace: u64, span: u64, start: u64) -> SpanRecord {
        SpanRecord {
            name: "serve:chi2".to_string(),
            trace,
            span,
            parent: 0,
            start_unix_us: start,
            duration_us: 5,
            node: "server".to_string(),
            shard: -1,
            outcome: "ok".to_string(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = SpanRing::new(2);
        ring.record(record(1, 10, 0));
        ring.record(record(1, 11, 1));
        ring.record(record(2, 12, 2));
        let all = ring.recent();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].span, 11);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn for_trace_filters() {
        let ring = SpanRing::new(8);
        ring.record(record(1, 10, 0));
        ring.record(record(2, 11, 1));
        ring.record(record(1, 12, 2));
        let spans = ring.for_trace(1);
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.trace == 1));
    }

    #[test]
    fn traceless_spans_are_dropped() {
        let ring = SpanRing::new(8);
        ring.record(record(0, 10, 0));
        assert!(ring.recent().is_empty());
    }

    #[test]
    fn span_ids_are_distinct_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = next_span_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "span id collided");
        }
    }
}

//! Tracing: trace ids, RAII timed spans, ring-buffered event log.
//!
//! * A [`TraceId`] names one logical request end to end. The serving
//!   layer allocates one per request from a per-server counter
//!   (deterministic for golden tests) and echoes it in the response;
//!   [`set_current_trace`] propagates it onto the worker thread so
//!   events emitted downstream carry it automatically.
//! * A [`Span`] is an RAII guard that pushes its name onto a
//!   per-thread span stack on creation and pops it on drop, optionally
//!   recording its wall time into a [`Histogram`]. The current stack
//!   (joined with `>`) is attached to every event.
//! * The [`EventLog`] is a fixed-capacity ring of structured events
//!   with severity filtering and a configurable sink: [`Sink::Memory`]
//!   keeps events for tests/`recent()`; [`Sink::Stderr`] additionally
//!   writes each event as one JSON line to stderr.

use std::cell::{Cell as StdCell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::ledger::EventLedger;
use crate::registry::Histogram;

/// Identifier propagated across one logical request. Zero means "no
/// trace"; rendered as 16 hex digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The absent trace id.
    pub const NONE: TraceId = TraceId(0);

    /// Wraps a raw id (servers allocate these from their own counter).
    pub fn from_u64(raw: u64) -> TraceId {
        TraceId(raw)
    }

    /// Raw value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Whether this is a real trace id.
    pub fn is_set(self) -> bool {
        self.0 != 0
    }

    /// Parses the wire form: exactly 16 lowercase hex digits, nonzero.
    /// This is the validation gate for client-supplied `"trace"` ids —
    /// anything else is rejected rather than silently replaced.
    pub fn parse_hex(text: &str) -> Option<TraceId> {
        if text.len() != 16 {
            return None;
        }
        if !text
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return None;
        }
        match u64::from_str_radix(text, 16) {
            Ok(0) | Err(_) => None,
            Ok(raw) => Some(TraceId(raw)),
        }
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Process-wide trace id allocator (used where no per-server counter
/// exists, e.g. `bmb mine --trace`).
pub fn next_trace_id() -> TraceId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
}

thread_local! {
    static CURRENT_TRACE: StdCell<u64> = const { StdCell::new(0) };
    static CURRENT_SPAN: StdCell<u64> = const { StdCell::new(0) };
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Sets this thread's current trace id, returning the previous one so
/// callers can restore it (worker threads are pooled).
pub fn set_current_trace(id: TraceId) -> TraceId {
    CURRENT_TRACE.with(|c| TraceId(c.replace(id.0)))
}

/// This thread's current trace id ([`TraceId::NONE`] if unset).
pub fn current_trace() -> TraceId {
    CURRENT_TRACE.with(|c| TraceId(c.get()))
}

/// Sets this thread's current *recorded* span id (the parent for child
/// spans fanned out downstream), returning the previous one so pooled
/// worker threads can restore it. Distinct from the named
/// [`span_path`] stack: this is the cross-process tree identity, that
/// is human-readable context.
pub fn set_current_span(id: u64) -> u64 {
    CURRENT_SPAN.with(|c| c.replace(id))
}

/// This thread's current recorded span id (0 if unset).
pub fn current_span() -> u64 {
    CURRENT_SPAN.with(|c| c.get())
}

/// This thread's span stack joined with `>` (empty string when no span
/// is open).
pub fn span_path() -> String {
    SPAN_STACK.with(|s| s.borrow().join(">"))
}

/// RAII timed span. Create with [`span`] or [`span_timed`]; the guard
/// pops itself (and records its duration) on drop.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    timer: Option<Histogram>,
}

/// Opens a span: pushes `name` onto this thread's span stack.
pub fn span(name: &'static str) -> Span {
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    Span {
        name,
        start: Instant::now(),
        timer: None,
    }
}

/// Opens a span that records its wall time (µs) into `timer` on drop.
pub fn span_timed(name: &'static str, timer: &Histogram) -> Span {
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    Span {
        name,
        start: Instant::now(),
        timer: Some(timer.clone()),
    }
}

impl Span {
    /// Wall time since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Span name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop our own frame; tolerate a foreign top (mismatched
            // drop order) by searching from the back.
            if let Some(pos) = stack.iter().rposition(|n| *n == self.name) {
                stack.remove(pos);
            }
        });
        if let Some(timer) = &self.timer {
            timer.record_duration(self.start.elapsed());
        }
    }
}

/// Event severity, ordered: `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Development detail (span closes, cache decisions).
    Debug,
    /// Normal operational landmarks (startup, recovery summary).
    Info,
    /// Unexpected but handled (slow query, repaired WAL tail).
    Warn,
    /// Functionality lost (degraded WAL).
    Error,
}

impl Severity {
    fn from_u8(raw: u8) -> Severity {
        match raw {
            0 => Severity::Debug,
            1 => Severity::Info,
            2 => Severity::Warn,
            _ => Severity::Error,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Severity::Debug => 0,
            Severity::Info => 1,
            Severity::Warn => 2,
            Severity::Error => 3,
        }
    }

    /// Lower-case name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// Where emitted events go (always the in-memory ring; optionally
/// stderr too).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sink {
    /// Ring buffer only (default; what tests read back).
    Memory,
    /// Ring buffer plus one JSON line per event on stderr.
    Stderr,
}

/// One structured event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number (per log).
    pub seq: u64,
    /// Microseconds since the Unix epoch at emission.
    pub unix_micros: u64,
    /// Severity level.
    pub severity: Severity,
    /// Trace id current on the emitting thread (0 when none).
    pub trace: u64,
    /// Span stack at emission, joined with `>`.
    pub span: String,
    /// Human-readable message.
    pub message: String,
    /// Structured key/value payload.
    pub fields: Vec<(String, String)>,
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl Event {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "{{\"seq\":{},\"ts_us\":{},\"level\":\"{}\",\"trace\":\"{}\",\"span\":\"{}\",\"msg\":\"{}\"",
                self.seq,
                self.unix_micros,
                self.severity.as_str(),
                TraceId(self.trace),
                json_escape(&self.span),
                json_escape(&self.message),
            ),
        );
        for (key, value) in &self.fields {
            let _ = fmt::Write::write_fmt(
                &mut out,
                format_args!(",\"{}\":\"{}\"", json_escape(key), json_escape(value)),
            );
        }
        out.push('}');
        out
    }
}

/// Fixed-capacity ring of structured events with severity filtering.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    seq: AtomicU64,
    min_severity: AtomicU8,
    sink: AtomicU8,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
    /// Optional persisted ledger every retained event is appended to
    /// (see [`EventLedger`]); the slot lock is never held across the
    /// ledger's own I/O.
    ledger: Mutex<Option<Arc<EventLedger>>>,
}

impl EventLog {
    /// A log keeping at most `capacity` recent events (sink
    /// [`Sink::Memory`], minimum severity [`Severity::Info`]).
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            min_severity: AtomicU8::new(Severity::Info.as_u8()),
            sink: AtomicU8::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
            ledger: Mutex::new(None),
        }
    }

    /// Attaches a persisted ledger: every retained event is also
    /// appended (as its JSON line) to `ledger`. Pass-through for the
    /// process-global log on cluster nodes; detach with
    /// [`EventLog::detach_ledger`].
    pub fn attach_ledger(&self, ledger: Arc<EventLedger>) {
        *self.ledger.lock().unwrap_or_else(PoisonError::into_inner) = Some(ledger);
    }

    /// Detaches the persisted ledger, if any, returning it.
    pub fn detach_ledger(&self) -> Option<Arc<EventLedger>> {
        self.ledger
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }

    /// The attached ledger, if any (the `events` wire command serves
    /// from it when present).
    pub fn ledger(&self) -> Option<Arc<EventLedger>> {
        self.ledger
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Sets the sink.
    pub fn set_sink(&self, sink: Sink) {
        let raw = match sink {
            Sink::Memory => 0,
            Sink::Stderr => 1,
        };
        // ordering: stale reads just route a few events to the old sink.
        self.sink.store(raw, Ordering::Relaxed);
    }

    /// Sets the minimum severity retained (below it, `emit` is a
    /// single atomic load and return).
    pub fn set_min_severity(&self, severity: Severity) {
        // ordering: the floor is advisory; racing emits may use the old one.
        self.min_severity.store(severity.as_u8(), Ordering::Relaxed);
    }

    /// Current severity floor.
    pub fn min_severity(&self) -> Severity {
        // ordering: see set_min_severity — the floor is advisory.
        Severity::from_u8(self.min_severity.load(Ordering::Relaxed))
    }

    /// Emits an event carrying the thread's current trace id and span
    /// path. Events below the severity floor are discarded cheaply.
    pub fn emit(&self, severity: Severity, message: &str, fields: &[(&str, &str)]) {
        // ordering: a stale floor only affects events racing the change.
        if severity.as_u8() < self.min_severity.load(Ordering::Relaxed) {
            return;
        }
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            unix_micros: unix_micros_now(),
            severity,
            trace: current_trace().as_u64(),
            span: span_path(),
            message: message.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        };
        // ordering: a stale sink misdirects only events racing set_sink.
        if self.sink.load(Ordering::Relaxed) == 1 {
            let mut line = event.to_json_line();
            line.push('\n');
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
        let ledger = self.ledger();
        if let Some(ledger) = &ledger {
            ledger.append_line(&event.to_json_line());
        }
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Copies the retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.iter().cloned().collect()
    }

    /// How many events the ring has evicted since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Clears the ring (tests).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.clear();
    }
}

fn unix_micros_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_stack_tracks_nesting() {
        assert_eq!(span_path(), "");
        let _outer = span("mine");
        {
            let _inner = span("count");
            assert_eq!(span_path(), "mine>count");
        }
        assert_eq!(span_path(), "mine");
        drop(_outer);
        assert_eq!(span_path(), "");
    }

    #[test]
    fn timed_span_records_into_histogram() {
        let hist = Histogram::detached();
        {
            let _span = span_timed("work", &hist);
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 1);
        assert!(snap.sum >= 2_000, "2ms sleep is at least 2000us");
    }

    #[test]
    fn event_log_rings_and_counts_drops() {
        let log = EventLog::new(2);
        log.emit(Severity::Info, "a", &[]);
        log.emit(Severity::Info, "b", &[]);
        log.emit(Severity::Info, "c", &[]);
        let events = log.recent();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "b");
        assert_eq!(events[1].message, "c");
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn severity_floor_filters() {
        let log = EventLog::new(8);
        log.emit(Severity::Debug, "hidden", &[]);
        log.emit(Severity::Warn, "kept", &[]);
        let events = log.recent();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].message, "kept");
    }

    #[test]
    fn parse_hex_accepts_only_canonical_ids() {
        assert_eq!(
            TraceId::parse_hex("00000000000000ab"),
            Some(TraceId::from_u64(0xab))
        );
        let id = TraceId::from_u64(0xdead_beef_0123);
        assert_eq!(TraceId::parse_hex(&id.to_string()), Some(id));
        for bad in [
            "",
            "ab",                // too short
            "00000000000000abc", // too long
            "00000000000000AB",  // uppercase
            "0000000000000000",  // zero
            "0000000000000zzz",  // non-hex
            " 0000000000000ab",  // whitespace
            "+0000000000000ab",  // sign
        ] {
            assert_eq!(TraceId::parse_hex(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn current_span_propagates_and_restores() {
        assert_eq!(current_span(), 0);
        let prev = set_current_span(42);
        assert_eq!(prev, 0);
        assert_eq!(current_span(), 42);
        set_current_span(prev);
        assert_eq!(current_span(), 0);
    }

    #[test]
    fn attached_ledger_receives_event_lines() {
        let mut path = std::env::temp_dir();
        path.push(format!("bmb_eventlog_ledger_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = EventLog::new(8);
        log.attach_ledger(Arc::new(EventLedger::open(&path, 32).unwrap()));
        log.emit(Severity::Warn, "promotion", &[("generation", "3")]);
        let lines = log.ledger().unwrap().read_lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"msg\":\"promotion\""));
        assert!(lines[0].contains("\"generation\":\"3\""));
        assert!(log.detach_ledger().is_some());
        log.emit(Severity::Warn, "after detach", &[]);
        // Detached: the file must not grow.
        let ledger = EventLedger::open(&path, 32).unwrap();
        assert_eq!(ledger.read_lines().len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn events_carry_trace_and_fields_in_json() {
        let log = EventLog::new(8);
        let prev = set_current_trace(TraceId::from_u64(0xabc));
        log.emit(
            Severity::Warn,
            "slow \"query\"",
            &[("cmd", "chi2"), ("us", "1500")],
        );
        set_current_trace(prev);
        let events = log.recent();
        assert_eq!(events[0].trace, 0xabc);
        let line = events[0].to_json_line();
        assert!(line.contains("\"trace\":\"0000000000000abc\""));
        assert!(line.contains("\"msg\":\"slow \\\"query\\\"\""));
        assert!(line.contains("\"cmd\":\"chi2\""));
        assert!(line.contains("\"us\":\"1500\""));
    }
}

//! Fixed-bucket log-scale histogram core.
//!
//! Buckets are powers of two over `u64` values (microseconds in every
//! current use): bucket `i < FINITE_BUCKETS` holds observations with
//! `value <= 2^i`, and one overflow bucket catches the rest. Recording
//! is two relaxed atomic adds; there is no lock anywhere. Quantiles are
//! nearest-rank over the bucket counts and return the containing
//! bucket's upper bound, so a reported quantile is always within one
//! bucket boundary of the true order statistic — the property the
//! exposition proptest pins.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of finite buckets: upper bounds `2^0 ..= 2^(FINITE_BUCKETS-1)`.
///
/// 40 buckets cover 1 µs to ~2^39 µs (≈ 6.4 days) — wider than any
/// latency this workspace can observe.
pub const FINITE_BUCKETS: usize = 40;

/// Total buckets including the overflow (`+Inf`) bucket.
pub const BUCKETS: usize = FINITE_BUCKETS + 1;

/// Index of the bucket that holds `value`.
///
/// Bucket `i` has inclusive upper bound `2^i`; values above the last
/// finite bound land in the overflow bucket (`FINITE_BUCKETS`).
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        return 0;
    }
    // ceil(log2(value)) for value >= 2.
    let ceil_log2 = 64 - ((value - 1).leading_zeros() as usize);
    ceil_log2.min(FINITE_BUCKETS)
}

/// Inclusive upper bound of bucket `index`.
///
/// The overflow bucket reports `u64::MAX` (rendered `+Inf` in the
/// Prometheus exposition).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index < FINITE_BUCKETS {
        1u64 << index
    } else {
        u64::MAX
    }
}

/// Lock-free histogram storage shared by cloned [`crate::Histogram`]
/// handles.
#[derive(Debug)]
pub struct HistogramCore {
    /// Per-bucket observation counts (not cumulative).
    buckets: [AtomicU64; BUCKETS],
    /// Sum of all observed values.
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation. Two relaxed atomic adds; the sum is
    /// bumped *before* the bucket so a snapshot that reads buckets
    /// first always observes `sum >= count * min_recorded_value`.
    pub fn record(&self, value: u64) {
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and sum. Buckets are
    /// read before the sum (see [`HistogramCore::record`]) so derived
    /// invariants hold even mid-hammer.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSnapshot { buckets, sum }
    }
}

/// Immutable copy of a histogram's state; all derived statistics
/// (count, quantiles) are computed from the bucket counts so they are
/// internally consistent by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative).
    pub buckets: [u64; BUCKETS],
    /// Sum of all observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of observations (sum of bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`; returns the upper bound
    /// of the bucket containing the rank, so the result is within one
    /// bucket boundary of the exact order statistic. An empty
    /// histogram reports `0` (never NaN), pinning the `/stats`
    /// empty-ring contract.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (index, &count) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(count);
            if cumulative >= rank {
                return bucket_upper_bound(index);
            }
        }
        // Unreachable: cumulative reaches `total >= rank` on the last
        // bucket. Report the overflow bound rather than panicking.
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Median (p50) upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile upper bound.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 39), 39);
        assert_eq!(bucket_index((1 << 39) + 1), FINITE_BUCKETS);
        assert_eq!(bucket_index(u64::MAX), FINITE_BUCKETS);
    }

    #[test]
    fn every_value_is_within_its_bucket_bounds() {
        for value in [0u64, 1, 2, 3, 7, 8, 9, 1000, 123_456, 1 << 20, 1 << 39] {
            let idx = bucket_index(value);
            assert!(value <= bucket_upper_bound(idx));
            if idx > 0 {
                assert!(value > bucket_upper_bound(idx - 1));
            }
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = HistogramCore::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.p999(), 0);
        assert_eq!(snap.quantile(1.0), 0);
    }

    #[test]
    fn known_distribution_quantiles() {
        let core = HistogramCore::new();
        // 100 observations at 10 µs, 10 at 1000 µs.
        for _ in 0..100 {
            core.record(10);
        }
        for _ in 0..10 {
            core.record(1000);
        }
        let snap = core.snapshot();
        assert_eq!(snap.count(), 110);
        assert_eq!(snap.sum, 100 * 10 + 10 * 1000);
        // 10 lands in bucket ub=16; 1000 in bucket ub=1024.
        assert_eq!(snap.p50(), 16);
        assert_eq!(snap.p99(), 1024);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let core = HistogramCore::new();
        for v in [1u64, 5, 9, 40, 90, 300, 5000, 100_000] {
            core.record(v);
        }
        let snap = core.snapshot();
        let mut last = 0;
        for step in 0..=100 {
            let q = f64::from(step) / 100.0;
            let value = snap.quantile(q);
            assert!(value >= last, "quantile must be monotone");
            last = value;
        }
    }
}

//! Persisted, bounded event ledger: the post-mortem timeline.
//!
//! The in-memory [`crate::EventLog`] ring dies with the process — the
//! one moment a promotion/fencing timeline matters most. An
//! [`EventLedger`] is a JSON-lines file (the exact
//! [`crate::trace::Event::to_json_line`] format) that an event log can
//! be attached to: every retained event is appended, and when the file
//! grows past twice its line budget it is compacted down to the newest
//! `capacity` lines via a write-sync-rename cycle, so a crash leaves
//! either the old or the new file — never a torn one.
//!
//! Durability caveat (DESIGN.md §14): appends are *not* fsynced — an
//! event ledger is diagnostic, and syncing per event would put a disk
//! barrier on the failover path. A crash can lose the last few
//! appended events; compaction, which rewrites history, does sync.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Bounded JSON-lines event ledger on disk.
#[derive(Debug)]
pub struct EventLedger {
    path: PathBuf,
    capacity: usize,
    state: Mutex<LedgerState>,
}

#[derive(Debug)]
struct LedgerState {
    file: Option<File>,
    lines: usize,
}

impl EventLedger {
    /// Opens (creating if absent) the ledger at `path`, retaining at
    /// most `capacity` newest lines after compaction.
    ///
    /// # Errors
    ///
    /// Propagates file open/read failures.
    pub fn open(path: impl Into<PathBuf>, capacity: usize) -> std::io::Result<EventLedger> {
        let path = path.into();
        let lines = match File::open(&path) {
            Ok(file) => BufReader::new(file).lines().count(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(EventLedger {
            path,
            capacity: capacity.max(1),
            state: Mutex::new(LedgerState {
                file: Some(file),
                lines,
            }),
        })
    }

    /// The ledger's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one JSON line (no trailing newline expected). Best
    /// effort: an I/O failure drops the event rather than failing the
    /// operation that emitted it.
    pub fn append_line(&self, line: &str) {
        // Serializes appends and compaction; the file write below
        // happens under the guard on purpose. // lock:allow(io)
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(file) = state.file.as_mut() else {
            return;
        };
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        if file.write_all(buf.as_bytes()).is_err() {
            return;
        }
        state.lines += 1;
        if state.lines >= self.capacity.saturating_mul(2) {
            self.compact(&mut state);
        }
    }

    /// Reads the retained lines back, oldest first.
    pub fn read_lines(&self) -> Vec<String> {
        // Hold the lock so a concurrent compaction can't swap the file
        // out from under the read. // lock:allow(io)
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = &*state;
        read_all_lines(&self.path)
    }

    /// Rewrites the file down to its newest `capacity` lines via
    /// temp-write, sync, atomic rename.
    fn compact(&self, state: &mut LedgerState) {
        let mut lines = read_all_lines(&self.path);
        if lines.len() > self.capacity {
            lines.drain(..lines.len() - self.capacity);
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        let rewrite = || -> std::io::Result<File> {
            let mut out = File::create(&tmp)?;
            for line in &lines {
                out.write_all(line.as_bytes())?;
                out.write_all(b"\n")?;
            }
            out.sync_all()?;
            std::fs::rename(&tmp, &self.path)?;
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
        };
        match rewrite() {
            Ok(file) => {
                state.file = Some(file);
                state.lines = lines.len();
            }
            Err(_) => {
                // Leave the oversized file in place; a later append
                // retries compaction. Diagnostic data: never fatal.
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }
}

fn read_all_lines(path: &Path) -> Vec<String> {
    let mut text = String::new();
    if File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .is_err()
    {
        return Vec::new();
    }
    text.lines().map(str::to_string).collect()
}

/// Extracts the `"ts_us":<digits>` timestamp from one ledger line
/// without a JSON parser; `None` when absent or malformed. Used for
/// cheap `events --since` filtering.
pub fn line_ts_us(line: &str) -> Option<u64> {
    let key = "\"ts_us\":";
    let at = line.find(key)? + key.len();
    let digits: String = line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    if digits.is_empty() {
        None
    } else {
        digits.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "bmb_ledger_{tag}_{}_{}.jsonl",
            std::process::id(),
            next_span_tag()
        ));
        path
    }

    fn next_span_tag() -> u64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        // ordering: test-only unique suffix.
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    #[test]
    fn appends_and_reads_back_in_order() {
        let path = temp_path("order");
        let ledger = EventLedger::open(&path, 16).unwrap();
        ledger.append_line(r#"{"seq":0,"ts_us":10,"msg":"a"}"#);
        ledger.append_line(r#"{"seq":1,"ts_us":20,"msg":"b"}"#);
        let lines = ledger.read_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"a\""));
        assert!(lines[1].contains("\"b\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_bounds_the_file_to_newest_lines() {
        let path = temp_path("compact");
        let ledger = EventLedger::open(&path, 4).unwrap();
        for i in 0..20u64 {
            ledger.append_line(&format!("{{\"seq\":{i},\"ts_us\":{i}}}"));
        }
        let lines = ledger.read_lines();
        assert!(
            lines.len() <= 8,
            "file must stay under 2x capacity, got {}",
            lines.len()
        );
        // The newest line always survives.
        assert!(lines.last().is_some_and(|l| l.contains("\"seq\":19")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_counts_existing_lines() {
        let path = temp_path("reopen");
        {
            let ledger = EventLedger::open(&path, 64).unwrap();
            ledger.append_line(r#"{"seq":0,"ts_us":1}"#);
        }
        let ledger = EventLedger::open(&path, 64).unwrap();
        ledger.append_line(r#"{"seq":1,"ts_us":2}"#);
        assert_eq!(ledger.read_lines().len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ts_scanner_reads_timestamps() {
        assert_eq!(
            line_ts_us(r#"{"seq":3,"ts_us":1234,"msg":"x"}"#),
            Some(1234)
        );
        assert_eq!(line_ts_us(r#"{"seq":3}"#), None);
        assert_eq!(line_ts_us(r#"{"ts_us":"nope"}"#), None);
    }
}

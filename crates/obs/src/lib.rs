//! `bmb-obs` — workspace-wide observability: metrics + tracing.
//!
//! Every runtime crate (`bmb-basket`, `bmb-core`, `bmb-serve`) reports
//! into this layer instead of hand-rolling counters. Two facilities:
//!
//! * **Metrics** ([`Registry`]): atomic [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket log-scale [`Histogram`]s with p50/p90/p99/p999
//!   extraction. Hot-path operations are a single relaxed atomic
//!   RMW — the registry mutex is touched only at registration and
//!   snapshot time. Snapshots render to Prometheus text exposition
//!   via [`expose::render`].
//! * **Tracing** ([`trace`]): RAII timed [`trace::Span`]s stacked
//!   per-thread, propagated [`trace::TraceId`]s, and a ring-buffered
//!   [`trace::EventLog`] with severity levels and a configurable sink
//!   (stderr JSON lines for production, in-memory for tests).
//!
//! Metric names follow `bmb_<crate>_<subsystem>_<unit>` (DESIGN.md
//! §10): `bmb_serve_request_us`, `bmb_core_cache_hits_total`,
//! `bmb_basket_wal_sync_us`, `bmb_core_miner_stage_us`.
//!
//! The crate is std-only and panic-free; every API is infallible
//! (misregistration degrades to a detached metric rather than
//! panicking — see [`Registry`]).

/// Prometheus text exposition rendering over registry snapshots.
pub mod expose;
/// Fixed-bucket log-scale histograms with quantile extraction.
pub mod histogram;
/// Persisted, bounded JSON-lines event ledger (failover post-mortems).
pub mod ledger;
/// The metrics registry: counters, gauges, histograms, snapshots.
pub mod registry;
/// Completed-span rings and cross-process span ids.
pub mod spanring;
/// Spans, trace ids, severity-tagged events, and sinks.
pub mod trace;

use std::sync::OnceLock;

pub use histogram::{bucket_index, bucket_upper_bound, HistogramSnapshot, BUCKETS, FINITE_BUCKETS};
pub use ledger::EventLedger;
pub use registry::{
    Counter, FamilySnapshot, Gauge, Histogram, MetricKind, MetricValue, Registry, RegistrySnapshot,
    SeriesSnapshot,
};
pub use spanring::{next_span_id, SpanRecord, SpanRing, DEFAULT_SPAN_CAPACITY};
pub use trace::{EventLog, Severity, Sink, Span, TraceId};

/// The process-wide registry, used by code with no natural owner for a
/// per-object registry (the batch miner). Servers and stores own their
/// own [`Registry`] so parallel tests never share counters.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-wide event log (capacity 1024, sink [`Sink::Memory`],
/// minimum severity [`Severity::Info`] until configured otherwise).
pub fn events() -> &'static EventLog {
    static EVENTS: OnceLock<EventLog> = OnceLock::new();
    EVENTS.get_or_init(|| EventLog::new(1024))
}

//! Golden-file test for the Prometheus text exposition.
//!
//! A controlled registry (every metric kind, escaped label values and
//! help text, a multi-series histogram) renders to a byte-pinned
//! fixture. Structural properties — bucket cumulativity, `_sum` /
//! `_count` consistency, name/label escaping — are additionally
//! checked by parsing the rendered text, so a regenerated fixture
//! cannot silently pin a malformed exposition.
//!
//! `BMB_UPDATE_GOLDEN=1 cargo test -p bmb-obs --test exposition_golden`
//! regenerates the fixture.

use std::collections::HashMap;
use std::path::PathBuf;

use bmb_obs::{expose, Registry};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join("exposition.golden")
}

/// Builds the registry the fixture pins: deterministic values only.
fn build_registry() -> Registry {
    let registry = Registry::new();
    registry
        .counter("bmb_test_requests_total", "Requests handled.")
        .add(42);
    registry
        .counter_with(
            "bmb_test_cache_ops_total",
            "Cache operations by outcome.",
            &[("cache", "table"), ("op", "hit")],
        )
        .add(7);
    registry
        .counter_with(
            "bmb_test_cache_ops_total",
            "Cache operations by outcome.",
            &[("cache", "table"), ("op", "miss")],
        )
        .add(3);
    registry
        .gauge("bmb_test_active_connections", "Open connections.")
        .set(5);
    registry
        .counter_with(
            "bmb_test_escapes_total",
            "Help with a \\ backslash\nand a newline.",
            &[("label", "quote \" slash \\ nl \n end")],
        )
        .inc();
    let latency = registry.histogram_with(
        "bmb_test_latency_us",
        "Request latency in microseconds.",
        &[("cmd", "chi2")],
    );
    // 3 observations <= 4us, 2 <= 64us, 1 overflow-scale value.
    latency.record(2);
    latency.record(3);
    latency.record(4);
    latency.record(50);
    latency.record(64);
    latency.record(u64::MAX);
    registry
}

#[test]
fn exposition_matches_golden_fixture() {
    let text = expose::render(&[&build_registry().snapshot()]);
    let path = fixture_path();
    if std::env::var_os("BMB_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &text).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("exposition fixture present (regenerate with BMB_UPDATE_GOLDEN=1)");
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from the golden fixture"
    );
}

/// Minimal exposition parser: returns (metric line name, label string,
/// value) triples, skipping comments.
fn parse_samples(text: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (head, value) = line.rsplit_once(' ').expect("sample line has a value");
        let (name, labels) = match head.find('{') {
            Some(idx) => (&head[..idx], &head[idx..]),
            None => (head, ""),
        };
        let value: f64 = value.parse().expect("numeric sample value");
        out.push((name.to_string(), labels.to_string(), value));
    }
    out
}

#[test]
fn buckets_are_cumulative_and_sum_count_consistent() {
    let text = expose::render(&[&build_registry().snapshot()]);
    let samples = parse_samples(&text);

    // Group histogram bucket lines by their series (labels minus `le`).
    let mut buckets: HashMap<String, Vec<(String, f64)>> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();
    for (name, labels, value) in &samples {
        if let Some(base) = name.strip_suffix("_bucket") {
            let le = labels
                .split("le=\"")
                .nth(1)
                .and_then(|rest| rest.split('"').next())
                .expect("bucket line has le")
                .to_string();
            buckets
                .entry(base.to_string())
                .or_default()
                .push((le, *value));
        } else if let Some(base) = name.strip_suffix("_count") {
            counts.insert(base.to_string(), *value);
        }
    }
    assert!(!buckets.is_empty(), "fixture registry has a histogram");
    for (base, series) in &buckets {
        let mut last = f64::MIN;
        for (le, cumulative) in series {
            assert!(
                *cumulative >= last,
                "{base} bucket le={le} not cumulative: {cumulative} < {last}"
            );
            last = *cumulative;
        }
        let (last_le, last_value) = series.last().expect("at least one bucket");
        assert_eq!(last_le, "+Inf", "{base} must end with the +Inf bucket");
        let count = counts.get(base).expect("histogram has _count");
        assert!(
            (count - last_value).abs() < 0.5,
            "{base}: _count {count} != +Inf bucket {last_value}"
        );
    }
}

#[test]
fn escaped_labels_render_one_parseable_line() {
    let text = expose::render(&[&build_registry().snapshot()]);
    let line = text
        .lines()
        .find(|l| l.starts_with("bmb_test_escapes_total"))
        .expect("escape series present");
    assert_eq!(
        line,
        r#"bmb_test_escapes_total{label="quote \" slash \\ nl \n end"} 1"#
    );
    let help = text
        .lines()
        .find(|l| l.starts_with("# HELP bmb_test_escapes_total"))
        .expect("escape help present");
    assert_eq!(
        help,
        r"# HELP bmb_test_escapes_total Help with a \\ backslash\nand a newline."
    );
}

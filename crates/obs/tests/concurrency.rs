//! Concurrency: writers hammer metrics while a reader snapshots.
//!
//! Follows the workspace's 1..=8-thread stress pattern: for each
//! thread count, N writers increment counters, flip a gauge, and
//! record histogram observations while a reader thread takes rolling
//! snapshots. Every snapshot must be internally consistent — no torn
//! reads (counter values never exceed the number of operations
//! issued), monotone counters and histogram counts across consecutive
//! snapshots, and `sum >= count * min_value` (guaranteed by the
//! record-order contract in `HistogramCore::record`). After the
//! writers join, the final snapshot must be exact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bmb_obs::{expose, MetricValue, Registry};

const OPS_PER_WRITER: u64 = 20_000;
/// Every writer records values from this set (min 3, max 900).
const VALUES: [u64; 4] = [3, 40, 170, 900];

#[test]
fn snapshots_stay_consistent_under_hammering() {
    for writers in 1..=8usize {
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("bmb_test_ops_total", "ops");
        let gauge = registry.gauge("bmb_test_inflight", "in flight");
        let hist = registry.histogram("bmb_test_lat_us", "latency");
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|scope| {
            for w in 0..writers {
                let counter = counter.clone();
                let gauge = gauge.clone();
                let hist = hist.clone();
                scope.spawn(move || {
                    for i in 0..OPS_PER_WRITER {
                        gauge.add(1);
                        counter.inc();
                        hist.record(VALUES[(i as usize + w) % VALUES.len()]);
                        gauge.sub_saturating(1);
                    }
                });
            }

            let reader = {
                let registry = Arc::clone(&registry);
                let stop = Arc::clone(&stop);
                let writers = writers as u64;
                scope.spawn(move || {
                    let mut last_count = 0u64;
                    let mut last_hist_count = 0u64;
                    let mut snapshots = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = registry.snapshot();
                        let ops = snap.counter_value("bmb_test_ops_total", &[]);
                        let inflight = snap.gauge_value("bmb_test_inflight", &[]);
                        let h = snap.histogram_value("bmb_test_lat_us", &[]);
                        let hist_count = h.count();

                        assert!(ops >= last_count, "counter went backwards");
                        assert!(
                            ops <= writers * OPS_PER_WRITER,
                            "counter beyond total issued ops: torn read"
                        );
                        assert!(
                            hist_count >= last_hist_count,
                            "histogram count went backwards"
                        );
                        assert!(
                            (0..=writers as i64).contains(&inflight),
                            "gauge outside [0, writers]: {inflight}"
                        );
                        let min = *VALUES.iter().min().expect("non-empty");
                        assert!(
                            h.sum >= hist_count.saturating_mul(min),
                            "sum {} below count {} * min {min}",
                            h.sum,
                            hist_count
                        );
                        // Quantiles over a partial snapshot stay within
                        // the recorded value range's bucket bounds.
                        if hist_count > 0 {
                            let p99 = h.p99();
                            assert!(p99 >= min && p99 <= 1024, "p99 {p99} outside bucket range");
                        }
                        // Rendering a mid-hammer snapshot must stay
                        // structurally sound (cumulative by construction).
                        let text = expose::render(&[&snap]);
                        assert!(text.contains("# TYPE bmb_test_lat_us histogram"));

                        last_count = ops;
                        last_hist_count = hist_count;
                        snapshots += 1;
                    }
                    snapshots
                })
            };

            // Writers are spawned above in this scope; wait for them by
            // letting the scope's non-reader threads drain first: the
            // reader polls until told to stop, so signal it once every
            // writer handle (spawned before it) has finished. Scope
            // join order is manual here.
            // (Writer handles were intentionally detached into the
            // scope; re-spawn a watchdog that signals completion.)
            let counter_done = counter.clone();
            let stop_signal = Arc::clone(&stop);
            let writers_u64 = writers as u64;
            scope.spawn(move || {
                while counter_done.get() < writers_u64 * OPS_PER_WRITER {
                    std::thread::yield_now();
                }
                stop_signal.store(true, Ordering::Relaxed);
            });

            let snapshots = reader.join().expect("reader");
            assert!(snapshots > 0, "reader took at least one snapshot");
        });

        // Quiescent: the final snapshot is exact.
        let snap = registry.snapshot();
        let expected_ops = writers as u64 * OPS_PER_WRITER;
        assert_eq!(snap.counter_value("bmb_test_ops_total", &[]), expected_ops);
        assert_eq!(snap.gauge_value("bmb_test_inflight", &[]), 0);
        let h = snap.histogram_value("bmb_test_lat_us", &[]);
        assert_eq!(h.count(), expected_ops);
        let per_cycle: u64 = VALUES.iter().sum();
        assert_eq!(
            h.sum,
            per_cycle * (expected_ops / VALUES.len() as u64),
            "sum must be exact at quiescence"
        );
        match snap.find("bmb_test_lat_us", &[]) {
            Some(MetricValue::Histogram(_)) => {}
            other => panic!("histogram family lost: {other:?}"),
        }
    }
}

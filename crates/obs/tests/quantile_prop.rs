//! Property test: histogram quantiles are within one bucket boundary.
//!
//! For any recorded multiset of values and any quantile `q`, the
//! reported quantile must equal the upper bound of the log-scale
//! bucket containing the exact nearest-rank order statistic — i.e.
//! `exact <= reported` and `reported` is never more than one bucket
//! boundary above `exact`. This is the accuracy contract `/stats`
//! p50/p99 rely on after the ring-buffer migration.

use bmb_obs::{bucket_index, bucket_upper_bound, Histogram};
use proptest::collection;
use proptest::prelude::*;

/// Exact nearest-rank order statistic for quantile `q`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let total = sorted.len() as f64;
    let rank = ((q * total).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn reported_quantile_is_within_one_bucket(
        values in collection::vec(0u64..(1u64 << 39), 1..200),
        q_mille in 1u32..=1000,
    ) {
        let hist = Histogram::detached();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let q = f64::from(q_mille) / 1000.0;
        let exact = exact_quantile(&sorted, q);
        let reported = hist.snapshot().quantile(q);
        // The reported value is the upper bound of the exact order
        // statistic's bucket: never below the true value, never more
        // than one bucket boundary above it.
        prop_assert!(reported >= exact, "reported {reported} < exact {exact}");
        prop_assert_eq!(
            reported,
            bucket_upper_bound(bucket_index(exact)),
            "reported quantile must be the exact statistic's bucket bound"
        );
    }

    #[test]
    fn fixed_quantiles_bound_recorded_range(
        values in collection::vec(1u64..1_000_000, 1..100),
    ) {
        let hist = Histogram::detached();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let max = *values.iter().max().expect("non-empty");
        let min = *values.iter().min().expect("non-empty");
        for reported in [snap.p50(), snap.p90(), snap.p99(), snap.p999()] {
            prop_assert!(reported >= min, "quantile below the recorded minimum");
            prop_assert!(
                reported <= bucket_upper_bound(bucket_index(max)),
                "quantile above the maximum's bucket bound"
            );
        }
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
    }
}

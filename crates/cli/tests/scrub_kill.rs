//! Live two-node scrub-repair SIGKILL torture: `kill -9` landing
//! during at-rest repair must never lose acked epochs (DESIGN.md §15).
//!
//! Two real `bmb cluster shard` processes over real directories: node
//! B holds a pristine copy of the workload and serves as the repair
//! peer; node A's on-disk sealed segment is corrupted between runs.
//! Each round restarts A with `--scrub-interval-secs 1
//! --repair-peer B`, fires an admin `scrub` over the wire, and
//! SIGKILLs A at a different delay so the kill lands before, inside,
//! and after the quarantine → rebuild → atomic-replace window. The
//! contract, checked on every restart:
//!
//! * the recovered epoch is exactly the acked basket count — repair
//!   publishes (quarantine copy, rebuilt segment, re-cut checkpoint)
//!   are sync-before-rename, so no kill point can eat acked history;
//! * answers stay byte-identical to the pre-kill baseline;
//! * after one *completed* scrub pass the directory converges: `bmb
//!   fsck` exits clean on the survivors of all those kills.
//!
//! The exhaustive in-process corruption sweep lives in `bmb-core`'s
//! `scrub_torture`; this test is the end-to-end half: real processes,
//! real fsync, real SIGKILL.

use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use bmb_serve::json::{parse, Value};
use bmb_serve::Client;

const N_ITEMS: usize = 8;
const N_BASKETS: u64 = 24;
const CHECKPOINT_AT: u64 = 10;

fn scratch_dir(tag: &str) -> PathBuf {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("bmb-scrub-kill-{pid}-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic basket for epoch `i` (same shape the scrub torture
/// suite uses).
fn basket(i: u64) -> Vec<i64> {
    vec![(i % 3) as i64, 3 + (i % 5) as i64]
}

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `bmb cluster shard` over `dir`; `repair_peer` also enables
/// the background scrubber. Returns once the listen address is known.
fn spawn_node(dir: &Path, repair_peer: Option<&str>) -> (KillOnDrop, SocketAddr) {
    let mut command = Command::new(env!("CARGO_BIN_EXE_bmb"));
    command
        .arg("cluster")
        .arg("shard")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--items")
        .arg(N_ITEMS.to_string())
        .arg("--dir")
        .arg(dir)
        .arg("--segment-capacity")
        .arg("4")
        .arg("--segment-bytes")
        .arg("64")
        .arg("--retain-checkpoints")
        .arg("2");
    if let Some(peer) = repair_peer {
        command
            .arg("--scrub-interval-secs")
            .arg("1")
            .arg("--repair-peer")
            .arg(peer);
    }
    let mut child = command
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn bmb cluster shard");
    let stdout = child.stdout.take().expect("piped stdout");
    let child = KillOnDrop(child);
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("shard exited before listening")
            .expect("read shard stdout");
        if let Some(rest) = line.split("listening on ").nth(1) {
            let addr = rest.split_whitespace().next().expect("address token");
            break addr.parse::<SocketAddr>().expect("shard address");
        }
    };
    (child, addr)
}

/// Strips the per-request trace id; everything else must be stable.
fn stripped(line: &str) -> String {
    let Value::Object(pairs) = parse(line).expect("response JSON") else {
        panic!("response is not an object: {line}");
    };
    Value::Object(pairs.into_iter().filter(|(k, _)| k != "trace").collect()).to_string()
}

/// Fixed-id chi-squared probes whose stripped response lines are the
/// byte-identity baseline.
fn probes() -> Vec<String> {
    (0..6)
        .map(|i| {
            let a = i * 2 % N_ITEMS;
            let b = (i * 2 + 3) % N_ITEMS;
            format!(r#"{{"id":{i},"cmd":"chi2","items":[{a},{b}]}}"#)
        })
        .collect()
}

/// Ingests the full workload with a checkpoint cut mid-stream, so the
/// directory holds a checkpoint plus sealed segments past it.
fn ingest_workload(client: &mut Client) {
    for chunk in (0..N_BASKETS).collect::<Vec<u64>>().chunks(5) {
        let rows: Vec<Value> = chunk
            .iter()
            .map(|&i| Value::Array(basket(i).into_iter().map(Value::Int).collect()))
            .collect();
        let request = Value::object()
            .with("cmd", Value::Str("ingest".to_string()))
            .with("baskets", Value::Array(rows));
        client.request(&request).expect("ingest");
        if chunk.contains(&(CHECKPOINT_AT - 1)) {
            client
                .request_line(r#"{"cmd":"checkpoint"}"#)
                .expect("checkpoint");
        }
    }
}

fn stats_epoch(client: &mut Client) -> u64 {
    let line = client
        .request_line(r#"{"id":90,"cmd":"stats"}"#)
        .expect("stats");
    parse(&line)
        .expect("stats JSON")
        .get("result")
        .and_then(|r| r.get("epoch"))
        .and_then(Value::as_u64)
        .expect("stats epoch")
}

/// The lowest-indexed (sealed) WAL segment on disk, if any survives.
fn sealed_segment(dir: &Path) -> Option<PathBuf> {
    let mut segments: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|entry| {
            let entry = entry.expect("dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            name.strip_prefix("wal.")
                .and_then(|digits| digits.parse::<u64>().ok())
                .map(|index| (index, entry.path()))
        })
        .collect();
    segments.sort();
    // The highest index is the active tail; everything below is sealed.
    if segments.len() < 2 {
        return None;
    }
    segments.pop();
    segments.into_iter().next().map(|(_, path)| path)
}

/// Re-damages the sealed segment if a prior round's scrub already
/// repaired it back to pristine. Returns false when the segment is
/// gone (a repair fell back to re-checkpointing past the hole and
/// retention reclaimed it — also a legal way to heal).
fn ensure_corrupt(path: &Path, pristine: &[u8]) -> bool {
    let Ok(mut bytes) = std::fs::read(path) else {
        return false;
    };
    if bytes == pristine {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(path, bytes).expect("write corrupted segment");
    }
    true
}

/// Connects, consumes the HELLO banner, fires one request line, and
/// returns *without reading the response* — the caller SIGKILLs the
/// server while the command is (potentially) mid-repair.
fn fire_and_forget(addr: SocketAddr, line: &str) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut hello = String::new();
    reader.read_line(&mut hello).expect("HELLO");
    let mut stream = stream;
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("write request");
    stream.flush().expect("flush request");
}

#[test]
fn sigkill_during_repair_never_loses_acked_epochs() {
    // --- node B: the pristine replica that serves repairs ---
    let dir_b = scratch_dir("peer");
    let (_peer, peer_addr) = spawn_node(&dir_b, None);
    let mut client = Client::connect(peer_addr).expect("connect peer");
    ingest_workload(&mut client);
    assert_eq!(stats_epoch(&mut client), N_BASKETS);
    drop(client);

    // --- node A: same workload, then SIGKILL (acks are durable) ---
    let dir_a = scratch_dir("node");
    let (mut node, addr) = spawn_node(&dir_a, None);
    let mut client = Client::connect(addr).expect("connect node");
    ingest_workload(&mut client);
    assert_eq!(stats_epoch(&mut client), N_BASKETS);
    let baseline: Vec<String> = probes()
        .iter()
        .map(|line| stripped(&client.request_line(line).expect("baseline")))
        .collect();
    drop(client);
    node.0.kill().expect("SIGKILL node");
    node.0.wait().expect("reap node");
    drop(node);

    let segment = sealed_segment(&dir_a).expect("a sealed segment on disk");
    let pristine = std::fs::read(&segment).expect("pristine segment bytes");

    // --- the kill ladder: scrub in flight, SIGKILL at varied delays ---
    let peer = peer_addr.to_string();
    for (round, delay_ms) in [0u64, 2, 5, 10, 20, 40].into_iter().enumerate() {
        ensure_corrupt(&segment, &pristine);
        let (mut node, addr) = spawn_node(&dir_a, Some(&peer));
        let mut client = Client::connect(addr).expect("reconnect after kill");
        assert_eq!(
            stats_epoch(&mut client),
            N_BASKETS,
            "round {round}: restart lost acked epochs"
        );
        let probe = &probes()[round % 6];
        assert_eq!(
            &stripped(&client.request_line(probe).expect("probe")),
            &baseline[round % 6],
            "round {round}: answer diverged from the pre-kill baseline"
        );
        drop(client);
        fire_and_forget(addr, r#"{"id":77,"cmd":"scrub"}"#);
        std::thread::sleep(Duration::from_millis(delay_ms));
        node.0.kill().expect("SIGKILL mid-scrub");
        node.0.wait().expect("reap node");
    }

    // --- convergence: one completed pass, then clean fsck ---
    ensure_corrupt(&segment, &pristine);
    let (mut node, addr) = spawn_node(&dir_a, Some(&peer));
    let mut client = Client::connect(addr).expect("final connect");
    assert_eq!(stats_epoch(&mut client), N_BASKETS);
    let scrub = parse(
        &client
            .request_line(r#"{"id":88,"cmd":"scrub"}"#)
            .expect("completed scrub"),
    )
    .expect("scrub JSON");
    assert_eq!(
        scrub.get("ok").and_then(Value::as_bool),
        Some(true),
        "scrub failed: {scrub}"
    );
    let result = scrub.get("result").expect("scrub result");
    assert_eq!(
        result.get("degraded").and_then(Value::as_bool),
        Some(false),
        "store degraded after the kill ladder: {scrub}"
    );
    assert_eq!(result.get("complete").and_then(Value::as_bool), Some(true));
    for (probe, expected) in probes().iter().zip(&baseline) {
        assert_eq!(
            &stripped(&client.request_line(probe).expect("final probe")),
            expected,
            "post-repair answer diverged from the pre-kill baseline"
        );
    }
    assert_eq!(stats_epoch(&mut client), N_BASKETS);
    let _ = client.request_line(r#"{"cmd":"shutdown"}"#);
    drop(client);
    node.0.wait().expect("graceful shutdown");

    let fsck = Command::new(env!("CARGO_BIN_EXE_bmb"))
        .arg("fsck")
        .arg(&dir_a)
        .output()
        .expect("run bmb fsck");
    let stdout = String::from_utf8_lossy(&fsck.stdout);
    assert!(
        fsck.status.success(),
        "fsck found damage after convergence:\n{stdout}"
    );
    assert!(
        stdout.contains("clean"),
        "unexpected fsck output:\n{stdout}"
    );

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

//! # bmb-cli — the `bmb` command
//!
//! Command-line access to the correlation miner: mine basket files, print
//! pair reports, run the support-confidence baseline, and generate the
//! synthetic datasets. The subcommands live in [`commands`] as testable
//! functions; [`args`] is the dependency-free flag parser.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

//! Tiny hand-rolled argument parsing (no external parser crates).
//!
//! Flags are `--name value` or boolean `--name`; everything else is a
//! positional argument. Unknown flags are an error so typos fail loudly.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: HashMap<String, String>,
    booleans: Vec<String>,
}

/// A flag's declared shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlagKind {
    /// Takes a value: `--support 0.01`.
    Value,
    /// Presence-only: `--walk`.
    Boolean,
}

impl Args {
    /// Parses `argv` (without the program name) against the declared flag
    /// set `spec` (`name -> kind`).
    pub fn parse(
        argv: impl IntoIterator<Item = String>,
        spec: &[(&str, FlagKind)],
    ) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = argv.into_iter();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                match spec.iter().find(|(n, _)| *n == name) {
                    None => return Err(format!("unknown flag --{name}")),
                    Some((_, FlagKind::Boolean)) => args.booleans.push(name.to_string()),
                    Some((_, FlagKind::Value)) => {
                        let value = iter
                            .next()
                            .ok_or_else(|| format!("flag --{name} needs a value"))?;
                        args.flags.insert(name.to_string(), value);
                    }
                }
            } else {
                args.positionals.push(token);
            }
        }
        Ok(args)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Number of positionals.
    pub fn n_positionals(&self) -> usize {
        self.positionals.len()
    }

    /// A value flag, parsed into `T`.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name}: cannot parse {raw:?}")),
        }
    }

    /// A value flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        Ok(self.get(name)?.unwrap_or(default))
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.booleans.iter().any(|b| b == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &[(&str, FlagKind)] = &[("support", FlagKind::Value), ("walk", FlagKind::Boolean)];

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(tokens.iter().map(|s| s.to_string()), SPEC)
    }

    #[test]
    fn positionals_and_flags() {
        let args = parse(&["mine", "data.baskets", "--support", "0.01", "--walk"]).unwrap();
        assert_eq!(args.positional(0), Some("mine"));
        assert_eq!(args.positional(1), Some("data.baskets"));
        assert_eq!(args.get::<f64>("support").unwrap(), Some(0.01));
        assert!(args.has("walk"));
        assert_eq!(args.n_positionals(), 2);
    }

    #[test]
    fn defaults_apply() {
        let args = parse(&["mine"]).unwrap();
        assert_eq!(args.get_or("support", 0.05).unwrap(), 0.05);
        assert!(!args.has("walk"));
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&["--support"]).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn unparsable_value_rejected() {
        let args = parse(&["--support", "banana"]).unwrap();
        assert!(args
            .get::<f64>("support")
            .unwrap_err()
            .contains("cannot parse"));
    }
}

//! The `bmb` subcommands, factored as library functions so they can be
//! tested without spawning processes. Each writes its report to a
//! `Write` sink and returns `Err(message)` on user error.

use std::io::Write;

use bmb_basket::{io as basket_io, BasketDatabase, Itemset};
use bmb_core::{mine, mine_walk, pairs_report, CountingStrategy, MinerConfig, SupportSpec};
use bmb_lattice::WalkConfig;
use bmb_stats::Chi2Test;

use crate::args::{Args, FlagKind};

/// Flags accepted by `bmb mine`.
pub const MINE_SPEC: &[(&str, FlagKind)] = &[
    ("support", FlagKind::Value),
    ("p", FlagKind::Value),
    ("alpha", FlagKind::Value),
    ("max-level", FlagKind::Value),
    ("threads", FlagKind::Value),
    ("numeric", FlagKind::Boolean),
    ("walk", FlagKind::Boolean),
    ("walks", FlagKind::Value),
    ("scan", FlagKind::Boolean),
    ("trace", FlagKind::Boolean),
];

/// Flags accepted by `bmb pairs`.
pub const PAIRS_SPEC: &[(&str, FlagKind)] =
    &[("alpha", FlagKind::Value), ("numeric", FlagKind::Boolean)];

/// Flags accepted by `bmb rules`.
pub const RULES_SPEC: &[(&str, FlagKind)] = &[
    ("support", FlagKind::Value),
    ("confidence", FlagKind::Value),
    ("numeric", FlagKind::Boolean),
];

/// Flags accepted by `bmb generate`.
pub const GENERATE_SPEC: &[(&str, FlagKind)] = &[
    ("n", FlagKind::Value),
    ("items", FlagKind::Value),
    ("seed", FlagKind::Value),
    ("out", FlagKind::Value),
];

/// Flags accepted by `bmb stats`.
pub const STATS_SPEC: &[(&str, FlagKind)] = &[("numeric", FlagKind::Boolean)];

/// Flags accepted by `bmb serve`.
pub const SERVE_SPEC: &[(&str, FlagKind)] = &[
    ("addr", FlagKind::Value),
    ("workers", FlagKind::Value),
    ("items", FlagKind::Value),
    ("segment-capacity", FlagKind::Value),
    ("wal", FlagKind::Value),
    ("checkpoint-dir", FlagKind::Value),
    ("checkpoint-every", FlagKind::Value),
    ("checkpoint-interval-secs", FlagKind::Value),
    ("max-connections", FlagKind::Value),
    ("metrics-addr", FlagKind::Value),
    ("events-ledger", FlagKind::Value),
    ("scrub-interval-secs", FlagKind::Value),
    ("repair-peer", FlagKind::Value),
    ("numeric", FlagKind::Boolean),
];

/// Flags accepted by `bmb query`.
pub const QUERY_SPEC: &[(&str, FlagKind)] = &[("timeout-secs", FlagKind::Value)];

/// Flags accepted by `bmb wal` (the `inspect` subcommand).
pub const WAL_SPEC: &[(&str, FlagKind)] = &[("limit", FlagKind::Value), ("dir", FlagKind::Value)];

/// Flags accepted by `bmb fsck` (none; the DIR positional is the input).
pub const FSCK_SPEC: &[(&str, FlagKind)] = &[];

/// Flags accepted by `bmb cluster {serve|shard|follow|chaos}`.
pub const CLUSTER_SPEC: &[(&str, FlagKind)] = &[
    ("addr", FlagKind::Value),
    ("items", FlagKind::Value),
    ("workers", FlagKind::Value),
    ("max-connections", FlagKind::Value),
    ("metrics-addr", FlagKind::Value),
    // coordinator (`cluster serve`)
    ("shards", FlagKind::Value),
    ("followers", FlagKind::Value),
    ("seed", FlagKind::Value),
    ("round-robin", FlagKind::Boolean),
    ("request-timeout-ms", FlagKind::Value),
    ("probe-cooldown-ms", FlagKind::Value),
    // shard identity stamped on spans (`cluster shard`, `cluster follow`)
    ("shard-index", FlagKind::Value),
    // observability clients (`cluster trace`, `cluster events`)
    ("since-us", FlagKind::Value),
    ("timeout-secs", FlagKind::Value),
    // durable roles (`cluster shard`, `cluster follow`)
    ("dir", FlagKind::Value),
    ("segment-capacity", FlagKind::Value),
    ("segment-bytes", FlagKind::Value),
    ("retain-checkpoints", FlagKind::Value),
    ("checkpoint-every", FlagKind::Value),
    ("checkpoint-interval-secs", FlagKind::Value),
    // background integrity scrubbing (`cluster shard`, `cluster
    // follow`); on `cluster serve` the same interval paces the
    // coordinator's anti-entropy digest comparisons
    ("scrub-interval-secs", FlagKind::Value),
    ("repair-peer", FlagKind::Value),
    // follower (`cluster follow`)
    ("primary", FlagKind::Value),
    ("poll-ms", FlagKind::Value),
    // fault proxy (`cluster chaos`)
    ("listen", FlagKind::Value),
    ("upstream", FlagKind::Value),
    ("control", FlagKind::Value),
    ("refuse-per-mille", FlagKind::Value),
    ("drop-per-mille", FlagKind::Value),
    ("stall-per-mille", FlagKind::Value),
    ("corrupt-per-mille", FlagKind::Value),
    ("delay-per-mille", FlagKind::Value),
    ("max-delay-us", FlagKind::Value),
    ("throttle-per-mille", FlagKind::Value),
    ("throttle-bytes-per-sec", FlagKind::Value),
];

/// Loads a basket file, named by default, numeric with `--numeric`.
pub fn load(path: &str, numeric: bool) -> Result<BasketDatabase, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader = std::io::BufReader::new(file);
    let db = if numeric {
        basket_io::read_numeric(reader).map_err(|e| e.to_string())?
    } else {
        basket_io::read_named(reader).map_err(|e| e.to_string())?
    };
    if db.is_empty() {
        return Err(format!("{path} holds no baskets"));
    }
    Ok(db)
}

/// `bmb mine FILE` — minimal correlated itemsets.
pub fn cmd_mine(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let path = args.positional(1).ok_or("usage: bmb mine FILE [flags]")?;
    let db = load(path, args.has("numeric"))?;
    let config = MinerConfig {
        support: SupportSpec::Fraction(args.get_or("support", 0.01)?),
        support_fraction: args.get_or("p", 0.3)?,
        alpha: args.get_or("alpha", 0.95)?,
        max_level: args.get_or("max-level", 6usize)?,
        threads: args.get_or("threads", 1usize)?,
        counting: if args.has("scan") {
            CountingStrategy::BasketScan
        } else {
            CountingStrategy::Bitmap
        },
        ..MinerConfig::default()
    };
    let sink = |e: std::io::Error| e.to_string();
    if args.has("walk") {
        let walk = WalkConfig {
            walks: args.get_or("walks", 256usize)?,
            max_level: config.max_level,
            seed: 7,
        };
        let result = mine_walk(&db, &config, walk, None);
        writeln!(
            out,
            "# random-walk border ({} crossings)",
            result.raw.stats.crossings
        )
        .map_err(sink)?;
        for set in &result.border {
            writeln!(out, "{}", db.describe(set)).map_err(sink)?;
        }
        return Ok(());
    }
    let result = mine(&db, &config);
    writeln!(
        out,
        "# {} significant itemsets (s = {}, chi2 cutoff {:.2}, {:?})",
        result.significant.len(),
        result.support_count,
        result.chi2_cutoff,
        result.elapsed
    )
    .map_err(sink)?;
    for level in &result.levels {
        writeln!(
            out,
            "# level {}: {} candidates, {} discarded, {} SIG, {} NOTSIG",
            level.level, level.candidates, level.discards, level.significant, level.not_significant
        )
        .map_err(sink)?;
    }
    if args.has("trace") {
        let profile = &result.profile;
        writeln!(
            out,
            "# trace: index build {}us, initial pairs {}us",
            profile.index_build_us, profile.initial_pairs_us
        )
        .map_err(sink)?;
        for stage in &profile.levels {
            let stats = result.levels.iter().find(|s| s.level == stage.level);
            let (candidates, discards) = stats.map_or((0, 0), |s| (s.candidates, s.discards));
            let pruned_pct = if candidates == 0 {
                0.0
            } else {
                100.0 * discards as f64 / candidates as f64
            };
            writeln!(
                out,
                "# trace level {}: count {}us, evaluate {}us, emit {}us, \
                 candgen {}us, total {}us, pruned {discards}/{candidates} ({pruned_pct:.1}%)",
                stage.level,
                stage.count_us,
                stage.evaluate_us,
                stage.emit_us,
                stage.candgen_us,
                stage.total_us(),
            )
            .map_err(sink)?;
        }
    }
    for rule in &result.significant {
        let (includes, omits) = rule.major_dependence_words(&db);
        writeln!(
            out,
            "{}\tchi2={:.3}\tdependence: [{}] without [{}]",
            db.describe(&rule.itemset),
            rule.chi2.statistic,
            includes.join(" "),
            omits.join(" "),
        )
        .map_err(sink)?;
    }
    Ok(())
}

/// `bmb pairs FILE` — the Table 2 style report for every pair.
pub fn cmd_pairs(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let path = args.positional(1).ok_or("usage: bmb pairs FILE [flags]")?;
    let db = load(path, args.has("numeric"))?;
    let test = Chi2Test::at_level(args.get_or("alpha", 0.95)?);
    let rows = pairs_report(&db, &test);
    let sink = |e: std::io::Error| e.to_string();
    writeln!(
        out,
        "# pair\tchi2\tsignificant\tI(ab)\tI(!ab)\tI(a!b)\tI(!a!b)"
    )
    .map_err(sink)?;
    for row in rows {
        writeln!(
            out,
            "{}\t{:.3}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
            db.describe(&Itemset::from_items([row.a, row.b])),
            row.chi2.statistic,
            row.chi2.significant,
            row.interests[0],
            row.interests[1],
            row.interests[2],
            row.interests[3],
        )
        .map_err(sink)?;
    }
    Ok(())
}

/// `bmb rules FILE` — support-confidence association rules (the baseline).
pub fn cmd_rules(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let path = args.positional(1).ok_or("usage: bmb rules FILE [flags]")?;
    let db = load(path, args.has("numeric"))?;
    let support = args.get_or("support", 0.01)?;
    let confidence = args.get_or("confidence", 0.5)?;
    let frequent =
        bmb_apriori::apriori(&db, bmb_apriori::MinSupport::Fraction(support), usize::MAX);
    let rules = bmb_apriori::generate_rules(&frequent, db.len() as u64, confidence);
    let sink = |e: std::io::Error| e.to_string();
    writeln!(
        out,
        "# {} rules (s >= {support}, c >= {confidence})",
        rules.len()
    )
    .map_err(sink)?;
    for rule in rules {
        writeln!(
            out,
            "{} => {}\tsupport={:.4}\tconfidence={:.3}\tlift={:.3}",
            db.describe(&rule.antecedent),
            db.describe(&rule.consequent),
            rule.support,
            rule.confidence,
            rule.lift,
        )
        .map_err(sink)?;
    }
    Ok(())
}

/// `bmb generate {quest|census|text}` — write a synthetic dataset.
pub fn cmd_generate(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let kind = args
        .positional(1)
        .ok_or("usage: bmb generate {quest|census|text} [flags]")?;
    let db = match kind {
        "quest" => bmb_quest::generate(&bmb_quest::QuestParams {
            n_transactions: args.get_or("n", 10_000usize)?,
            n_items: args.get_or("items", 870usize)?,
            seed: args.get_or("seed", 0x5151u64)?,
            ..bmb_quest::QuestParams::paper_table5()
        }),
        "census" => bmb_datasets::generate_census(),
        "text" => bmb_datasets::generate_text(&bmb_datasets::TextParams {
            seed: args.get_or("seed", 0x7e47u64)?,
            ..Default::default()
        }),
        other => return Err(format!("unknown dataset kind {other:?}")),
    };
    match args.get::<String>("out")? {
        Some(path) => {
            let file =
                std::fs::File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
            basket_io::write(&db, std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "wrote {} baskets over {} items to {path}",
                db.len(),
                db.n_items()
            )
            .map_err(|e| e.to_string())?;
        }
        None => {
            basket_io::write(&db, &mut *out).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// `bmb stats FILE` — database summary.
pub fn cmd_stats(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let path = args.positional(1).ok_or("usage: bmb stats FILE [flags]")?;
    let db = load(path, args.has("numeric"))?;
    let sink = |e: std::io::Error| e.to_string();
    writeln!(out, "baskets: {}", db.len()).map_err(sink)?;
    writeln!(out, "items: {}", db.n_items()).map_err(sink)?;
    writeln!(out, "mean basket size: {:.2}", db.mean_basket_len()).map_err(sink)?;
    let mut counts: Vec<(u64, u32)> = db
        .item_counts()
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i as u32))
        .collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    writeln!(out, "top items:").map_err(sink)?;
    for &(count, id) in counts.iter().take(10) {
        let name = db
            .catalog()
            .and_then(|c| c.name(bmb_basket::ItemId(id)))
            .map(str::to_string)
            .unwrap_or_else(|| format!("i{id}"));
        writeln!(out, "  {name} ({count})").map_err(sink)?;
    }
    Ok(())
}

/// Spawns the background integrity scrubber when the role asked for it
/// (`--scrub-interval-secs N`; 0 disables). `peer` names the replica
/// that damaged sealed segments are re-fetched from; without one,
/// repair is limited to what the live store can rebuild locally.
fn spawn_scrubber(
    args: &Args,
    durable: &std::sync::Arc<bmb_basket::DurableStore>,
    peer: Option<String>,
    out: &mut dyn Write,
) -> Result<Option<bmb_serve::Scrubber>, String> {
    let Some(secs) = args.get::<u64>("scrub-interval-secs")? else {
        return Ok(None);
    };
    let config = bmb_serve::ScrubberConfig {
        interval: (secs > 0).then(|| std::time::Duration::from_secs(secs)),
        peer,
        ..Default::default()
    };
    if !config.is_enabled() {
        return Ok(None);
    }
    writeln!(out, "scrubbing every {secs}s").map_err(|e| e.to_string())?;
    Ok(Some(bmb_serve::Scrubber::spawn(
        std::sync::Arc::clone(durable),
        config,
    )))
}

/// `bmb serve [FILE]` — run the correlation-query server.
///
/// With a FILE the store is seeded from it; with `--items N` (and no
/// FILE) the store starts empty over an `N`-item space. With
/// `--wal PATH` ingest is crash-safe: appends are written to a
/// checksummed write-ahead log before acknowledgement, and a restart
/// against the same PATH replays every acknowledged basket and resumes
/// at the recovered epoch. Prints the bound address
/// (`listening on HOST:PORT`) before blocking in the accept loop; a
/// client's `shutdown` command drains in-flight queries and exits 0.
/// With `--metrics-addr HOST:PORT` a second listener serves a
/// Prometheus text snapshot at `/metrics` (announced as
/// `metrics on http://HOST:PORT/metrics`). With `--checkpoint-dir` and
/// `--scrub-interval-secs N`, a background scrubber re-verifies sealed
/// WAL segments and checkpoints on that cadence, quarantining and
/// repairing what it can (`--repair-peer HOST:PORT` names a replica to
/// re-fetch damaged segments from).
pub fn cmd_serve(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let sink = |e: std::io::Error| e.to_string();
    let store_config = bmb_basket::StoreConfig {
        segment_capacity: args.get_or("segment-capacity", 4096usize)?,
    };
    let server_config = bmb_serve::ServerConfig {
        addr: args.get_or("addr", "127.0.0.1:7878".to_string())?,
        workers: args.get_or("workers", 4usize)?,
        max_connections: args.get_or("max-connections", 256usize)?,
        metrics_addr: args.get::<String>("metrics-addr")?,
        ..Default::default()
    };
    let ckpt_dir = args.get::<String>("checkpoint-dir")?;
    let durable = match (args.get::<String>("wal")?, &ckpt_dir) {
        (Some(_), Some(_)) => {
            return Err(
                "--wal and --checkpoint-dir are mutually exclusive: the checkpoint \
                 directory holds its own rotating WAL segments"
                    .to_string(),
            );
        }
        (Some(wal_path), None) => {
            if args.positional(1).is_some() {
                return Err(
                    "--wal cannot be combined with a FILE seed: the log is the durable \
                     source of truth; use --items N and ingest over the protocol"
                        .to_string(),
                );
            }
            let n_items = args
                .get::<usize>("items")?
                .ok_or("--wal requires --items N (the store's item-space size)")?;
            let storage = bmb_basket::FileStorage::open(std::path::Path::new(&wal_path))
                .map_err(|e| format!("cannot open wal {wal_path}: {e}"))?;
            let (durable, report) =
                bmb_basket::DurableStore::open(Box::new(storage), n_items, store_config)
                    .map_err(|e| format!("cannot recover wal {wal_path}: {e}"))?;
            writeln!(
                out,
                "recovered {} baskets from {wal_path} (epoch {})",
                report.baskets_recovered, report.epoch
            )
            .map_err(sink)?;
            Some(std::sync::Arc::new(durable))
        }
        (None, Some(dir_path)) => {
            if args.positional(1).is_some() {
                return Err(
                    "--checkpoint-dir cannot be combined with a FILE seed: the directory \
                     is the durable source of truth; use --items N and ingest over the \
                     protocol"
                        .to_string(),
                );
            }
            let n_items = args
                .get::<usize>("items")?
                .ok_or("--checkpoint-dir requires --items N (the store's item-space size)")?;
            let dir = bmb_basket::FsDir::open(std::path::Path::new(dir_path))
                .map_err(|e| format!("cannot open checkpoint dir {dir_path}: {e}"))?;
            let (durable, report) = bmb_basket::DurableStore::open_dir(
                Box::new(dir),
                n_items,
                store_config,
                bmb_basket::DurabilityConfig::default(),
            )
            .map_err(|e| format!("cannot recover {dir_path}: {e}"))?;
            writeln!(
                out,
                "recovered {} baskets from {dir_path} (epoch {}, checkpoint epoch {}, \
                 {} records skipped)",
                report.baskets_recovered,
                report.epoch,
                report.checkpoint_epoch,
                report.records_skipped
            )
            .map_err(sink)?;
            Some(std::sync::Arc::new(durable))
        }
        (None, None) => None,
    };
    let store = match &durable {
        Some(durable) => std::sync::Arc::clone(durable.store()),
        None => match args.positional(1) {
            Some(path) => {
                let db = load(path, args.has("numeric"))?;
                std::sync::Arc::new(bmb_basket::IncrementalStore::from_database(
                    &db,
                    store_config,
                ))
            }
            None => {
                let n_items = args
                    .get::<usize>("items")?
                    .ok_or("usage: bmb serve FILE [flags], or bmb serve --items N")?;
                std::sync::Arc::new(bmb_basket::IncrementalStore::new(n_items, store_config))
            }
        },
    };
    let events_ledger_attached = match args.get::<String>("events-ledger")? {
        Some(path) => {
            attach_events_ledger(std::path::Path::new(&path), out)?;
            true
        }
        None => false,
    };
    let engine = std::sync::Arc::new(bmb_core::QueryEngine::new(
        store,
        bmb_core::EngineConfig::default(),
    ));
    let repair_peer = args.get::<String>("repair-peer")?;
    let mut service = bmb_serve::EngineService::new(engine);
    if let Some(peer) = &repair_peer {
        service = service.with_repair_peer(peer.clone());
    }
    if let Some(durable) = &durable {
        service = service.with_durable(std::sync::Arc::clone(durable));
    }
    let server = bmb_serve::Server::bind_service(
        std::sync::Arc::new(service) as std::sync::Arc<dyn bmb_serve::Service>,
        server_config,
    )
    .map_err(|e| format!("cannot bind: {e}"))?;
    let mut checkpointer = None;
    let mut scrubber = None;
    if let Some(durable) = &durable {
        if ckpt_dir.is_some() {
            let config = bmb_serve::CheckpointerConfig {
                interval: Some(std::time::Duration::from_secs(
                    args.get_or("checkpoint-interval-secs", 60u64)?,
                )),
                every_records: Some(args.get_or("checkpoint-every", 100_000u64)?),
                ..Default::default()
            };
            checkpointer = Some(bmb_serve::Checkpointer::spawn(
                std::sync::Arc::clone(durable),
                config,
            ));
            scrubber = spawn_scrubber(args, durable, repair_peer, out)?;
        }
    }
    let metrics = server.metrics();
    writeln!(out, "listening on {}", server.local_addr()).map_err(sink)?;
    if let Some(addr) = server.metrics_local_addr() {
        writeln!(out, "metrics on http://{addr}/metrics").map_err(sink)?;
    }
    out.flush().map_err(sink)?;
    let run_result = server.run();
    if let Some(scrubber) = scrubber {
        scrubber.stop();
    }
    if let Some(checkpointer) = checkpointer {
        checkpointer.stop();
    }
    if events_ledger_attached {
        bmb_obs::events().detach_ledger();
    }
    run_result.map_err(|e| format!("server failed: {e}"))?;
    let snapshot = metrics.snapshot();
    writeln!(
        out,
        "served {} requests ({} errors), p50 {}us, p99 {}us",
        snapshot.requests, snapshot.errors, snapshot.p50_us, snapshot.p99_us
    )
    .map_err(sink)?;
    Ok(())
}

/// `bmb query ADDR [LINE...]` — send protocol lines to a running server.
///
/// Each LINE positional is one JSON request; with none, lines are read
/// from stdin. Response lines are printed verbatim.
pub fn cmd_query(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let addr = args
        .positional(1)
        .ok_or("usage: bmb query ADDR [LINE...]")?;
    let timeout = std::time::Duration::from_secs(args.get_or("timeout-secs", 30u64)?);
    let mut client = bmb_serve::Client::connect_timeout(addr, timeout)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let sink = |e: std::io::Error| e.to_string();
    let mut send = |line: &str, out: &mut dyn Write| -> Result<(), String> {
        let response = client
            .request_line(line)
            .map_err(|e| format!("request failed: {e}"))?;
        writeln!(out, "{response}").map_err(sink)
    };
    if args.n_positionals() > 2 {
        for i in 2..args.n_positionals() {
            if let Some(line) = args.positional(i) {
                send(line, out)?;
            }
        }
    } else {
        let stdin = std::io::stdin();
        for line in std::io::BufRead::lines(stdin.lock()) {
            let line = line.map_err(|e| e.to_string())?;
            if line.trim().is_empty() {
                continue;
            }
            send(&line, out)?;
        }
    }
    Ok(())
}

/// `bmb wal inspect PATH` — dump a WAL file's records and tail state.
///
/// Works on both formats: a single-file WAL (`--wal PATH`) and a
/// rotating segment out of a checkpoint directory (`wal.000017`).
/// Prints one line per record (offset, kind, payload size, CRC status,
/// running epoch) and ends with a diagnosis line — `clean`, or what is
/// torn and why recovery will truncate there. `--limit N` caps the
/// per-record lines (the summary always prints). With `--dir DIR`
/// instead of a PATH, walks the rotated segments (`wal.000000`…) of a
/// checkpoint directory and prints one line per segment — its base
/// epoch, record count, end epoch, and diagnosis.
///
/// Exit status is the verdict: anything other than a fully clean log —
/// a torn tail, a CRC mismatch, a truncated record — exits non-zero
/// (after printing the full report), so scripts and CI can assert WAL
/// health without parsing the output.
pub fn cmd_wal(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let action = args.positional(1).ok_or("usage: bmb wal inspect PATH")?;
    if action != "inspect" {
        return Err(format!("unknown wal action {action:?} (try 'inspect')"));
    }
    let limit = args.get_or("limit", usize::MAX)?;
    if let Some(dir) = args.get::<String>("dir")? {
        if args.positional(2).is_some() {
            return Err(
                "--dir replaces the PATH positional: bmb wal inspect --dir DIR".to_string(),
            );
        }
        return wal_inspect_dir(&dir, limit, out);
    }
    let path = args
        .positional(2)
        .ok_or("usage: bmb wal inspect PATH, or bmb wal inspect --dir DIR")?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let inspection =
        bmb_basket::inspect_wal_bytes(&bytes).map_err(|e| format!("{path} is not a WAL: {e}"))?;
    let sink = |e: std::io::Error| e.to_string();
    match inspection.base_epoch {
        Some(base) => {
            writeln!(
                out,
                "{path}: format {} (segment), base epoch {base}",
                inspection.format
            )
            .map_err(sink)?;
        }
        None => writeln!(out, "{path}: format {}", inspection.format).map_err(sink)?,
    }
    for record in inspection.records.iter().take(limit) {
        writeln!(
            out,
            "  @{:<10} {:<7} len={:<8} crc={} {}",
            record.offset,
            record.kind,
            record.len,
            if record.crc_ok { "ok " } else { "BAD" },
            record.detail
        )
        .map_err(sink)?;
    }
    if inspection.records.len() > limit {
        writeln!(
            out,
            "  ... {} more records",
            inspection.records.len() - limit
        )
        .map_err(sink)?;
    }
    writeln!(
        out,
        "records: {}, end epoch: {}, valid bytes: {}/{}",
        inspection.records.len(),
        inspection.end_epoch,
        inspection.valid_bytes,
        inspection.total_bytes
    )
    .map_err(sink)?;
    writeln!(out, "diagnosis: {}", inspection.diagnosis).map_err(sink)?;
    if inspection.diagnosis != "clean" {
        return Err(format!(
            "{path}: WAL is not clean: {}",
            inspection.diagnosis
        ));
    }
    Ok(())
}

/// Walks a rotated WAL segment directory, one summary line per
/// `wal.NNNNNN` file in rotation order: base epoch, record count, end
/// epoch, and diagnosis. Checkpoint artifacts ride along: every
/// `ckpt.*` file is structurally verified (magic, CRC, named epoch,
/// basket-table walk) and `MANIFEST` must be intact, list strictly
/// ascending epochs, and agree with the files on disk. `limit` caps
/// the per-segment lines (the summaries always print).
fn wal_inspect_dir(dir: &str, limit: usize, out: &mut dyn Write) -> Result<(), String> {
    let sink = |e: std::io::Error| e.to_string();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read {dir}: {e}"))?;
    let names: Vec<String> = entries
        .filter_map(Result::ok)
        .map(|entry| entry.file_name().to_string_lossy().into_owned())
        .collect();
    let mut segments: Vec<(u64, String)> = names
        .iter()
        .filter_map(|name| {
            bmb_basket::wal::parse_segment_name(name).map(|index| (index, name.clone()))
        })
        .collect();
    if segments.is_empty() {
        return Err(format!("{dir} holds no wal.NNNNNN segments"));
    }
    segments.sort_unstable();
    let n_segments = segments.len();
    let mut total_records = 0usize;
    let mut end_epoch = 0u64;
    let mut torn = 0usize;
    for (shown, (_, name)) in segments.into_iter().enumerate() {
        let path = std::path::Path::new(dir).join(&name);
        let bytes =
            std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let inspection = bmb_basket::inspect_wal_bytes(&bytes)
            .map_err(|e| format!("{} is not a WAL segment: {e}", path.display()))?;
        total_records += inspection.records.len();
        end_epoch = end_epoch.max(inspection.end_epoch);
        if inspection.diagnosis != "clean" {
            torn += 1;
        }
        if shown < limit {
            let base = match inspection.base_epoch {
                Some(base) => format!("base epoch {base}"),
                None => format!("no segment header (format {})", inspection.format),
            };
            writeln!(
                out,
                "{name}: {base}, {} records, end epoch {}, {}",
                inspection.records.len(),
                inspection.end_epoch,
                inspection.diagnosis
            )
            .map_err(sink)?;
        }
    }
    if n_segments > limit {
        writeln!(out, "... {} more segments", n_segments - limit).map_err(sink)?;
    }
    writeln!(
        out,
        "segments: {n_segments}, records: {total_records}, end epoch: {end_epoch}, \
         torn segments: {torn}"
    )
    .map_err(sink)?;

    // The checkpoint side of the directory: every `ckpt.*` file must
    // verify structurally, and the MANIFEST must agree with the disk.
    let mut checkpoints: Vec<(u64, String)> = names
        .iter()
        .filter_map(|name| bmb_basket::parse_checkpoint_name(name).map(|e| (e, name.clone())))
        .collect();
    checkpoints.sort_unstable();
    let mut damaged = 0usize;
    for (epoch, name) in &checkpoints {
        let path = std::path::Path::new(dir).join(name);
        let bytes =
            std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        match bmb_basket::verify_checkpoint_bytes(*epoch, &bytes, None) {
            Ok(()) => writeln!(out, "{name}: epoch {epoch}, {} bytes, clean", bytes.len())
                .map_err(sink)?,
            Err(detail) => {
                damaged += 1;
                writeln!(out, "{name}: {detail}").map_err(sink)?;
            }
        }
    }
    let manifest_path = std::path::Path::new(dir).join(bmb_basket::MANIFEST_NAME);
    if names.iter().any(|n| n == bmb_basket::MANIFEST_NAME) {
        let bytes = std::fs::read(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        match bmb_basket::verify_manifest_bytes(&bytes) {
            Ok(listed) => {
                writeln!(out, "MANIFEST: {} checkpoint(s) listed", listed.len()).map_err(sink)?;
                for epoch in &listed {
                    if !checkpoints.iter().any(|(e, _)| e == epoch) {
                        damaged += 1;
                        writeln!(
                            out,
                            "MANIFEST lists epoch {epoch} but {} is missing",
                            bmb_basket::checkpoint_name(*epoch)
                        )
                        .map_err(sink)?;
                    }
                }
                for (epoch, name) in &checkpoints {
                    if !listed.contains(epoch) {
                        damaged += 1;
                        writeln!(out, "{name} is on disk but not listed in MANIFEST")
                            .map_err(sink)?;
                    }
                }
            }
            Err(detail) => {
                damaged += 1;
                writeln!(out, "MANIFEST: {detail}").map_err(sink)?;
            }
        }
    } else if !checkpoints.is_empty() {
        damaged += 1;
        writeln!(
            out,
            "MANIFEST missing with {} checkpoint(s) on disk",
            checkpoints.len()
        )
        .map_err(sink)?;
    }
    writeln!(
        out,
        "checkpoints: {}, damaged artifacts: {damaged}",
        checkpoints.len()
    )
    .map_err(sink)?;
    if torn > 0 || damaged > 0 {
        return Err(format!(
            "{dir}: {torn} torn segment(s), {damaged} damaged checkpoint artifact(s)"
        ));
    }
    Ok(())
}

/// `bmb fsck DIR` — offline integrity check of a durability directory.
///
/// Runs the same structural verification the background scrubber uses
/// (see `bmb_basket::fsck_dir`): the `GEN` record, the `MANIFEST`'s
/// CRC and epoch order, manifest↔file agreement, every checkpoint's
/// magic/CRC/epoch/basket table, every WAL segment's record walk, and
/// the segment base-epoch chain. Read-only — nothing is repaired,
/// renamed, or deleted — and exits non-zero when anything fails to
/// verify, so scripts and CI can assert at-rest integrity. Quarantined
/// evidence files (`quarantine.*`) are counted but are not damage.
pub fn cmd_fsck(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let dir_path = args.positional(1).ok_or("usage: bmb fsck DIR")?;
    let sink = |e: std::io::Error| e.to_string();
    let mut dir = bmb_basket::FsDir::open(std::path::Path::new(dir_path))
        .map_err(|e| format!("cannot open {dir_path}: {e}"))?;
    let report =
        bmb_basket::fsck_dir(&mut dir).map_err(|e| format!("cannot list {dir_path}: {e}"))?;
    writeln!(
        out,
        "{dir_path}: {} artifact(s), {} byte(s) verified, {} quarantined",
        report.artifacts, report.bytes, report.quarantined
    )
    .map_err(sink)?;
    for finding in &report.findings {
        writeln!(out, "  {}: {}", finding.name, finding.detail).map_err(sink)?;
    }
    if report.is_clean() {
        writeln!(out, "clean").map_err(sink)?;
        Ok(())
    } else {
        Err(format!(
            "{dir_path}: {} integrity finding(s)",
            report.findings.len()
        ))
    }
}

/// `bmb cluster {serve|shard|follow|chaos}` — the sharded-cluster roles.
///
/// `shard` runs one durable shard: a generation-fenced node starting as
/// primary, answering the full wire protocol (including `support_vec`,
/// `replicate_pull`, and `demote`). `serve` runs the coordinator: it
/// speaks the same protocol but holds no baskets, scattering every
/// query to `--shards` and gathering the per-shard support vectors into
/// bit-identical central answers. `follow` runs a warm standby that
/// tails a shard primary's WAL via `replicate_pull` and takes over at a
/// bumped generation on `promote`. `chaos` runs the deterministic
/// fault-injection proxy in front of one upstream.
pub fn cmd_cluster(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    const CLUSTER_USAGE: &str =
        "usage: bmb cluster {serve|shard|follow|chaos|trace|events} [flags]";
    match args.positional(1) {
        Some("serve") => cluster_serve(args, out),
        Some("shard") => cluster_shard(args, out),
        Some("follow") => cluster_follow(args, out),
        Some("chaos") => cluster_chaos(args, out),
        Some("trace") => cluster_trace(args, out),
        Some("events") => cluster_events(args, out),
        Some(other) => Err(format!("unknown cluster role {other:?} ({CLUSTER_USAGE})")),
        None => Err(CLUSTER_USAGE.to_string()),
    }
}

/// The listener config shared by all three cluster roles. `role` is
/// stamped on every span the node records (the `node` field of a trace
/// tree); `--shard-index N` adds the shard coordinate for shard-role
/// nodes so cross-node trees name which partition answered.
fn cluster_server_config(
    args: &Args,
    default_addr: &str,
    role: &str,
) -> Result<bmb_serve::ServerConfig, String> {
    Ok(bmb_serve::ServerConfig {
        addr: args.get_or("addr", default_addr.to_string())?,
        workers: args.get_or("workers", 4usize)?,
        max_connections: args.get_or("max-connections", 256usize)?,
        metrics_addr: args.get::<String>("metrics-addr")?,
        node_role: role.to_string(),
        shard_index: args.get::<i64>("shard-index")?,
        ..Default::default()
    })
}

/// Line budget for the on-disk event ledger durable roles keep next to
/// their WAL (`events.jsonl`): compaction rewrites the file once it
/// doubles past this.
const EVENTS_LEDGER_CAPACITY: usize = 4096;

/// Routes the process-wide event log into a persisted JSON-lines
/// ledger at `path`, so promotion/fencing timelines survive the
/// process (`bmb cluster events` reads them back). Best-effort
/// durability: appends are not fsynced (see DESIGN.md §14).
fn attach_events_ledger(path: &std::path::Path, out: &mut dyn Write) -> Result<(), String> {
    let ledger = bmb_obs::EventLedger::open(path, EVENTS_LEDGER_CAPACITY)
        .map_err(|e| format!("cannot open events ledger {}: {e}", path.display()))?;
    bmb_obs::events().attach_ledger(std::sync::Arc::new(ledger));
    writeln!(out, "events ledger at {}", path.display()).map_err(|e| e.to_string())
}

/// Opens (recovering if needed) the durable store a shard or follower
/// role keeps under `--dir`, announcing the recovery on `out`.
fn cluster_open_durable(
    args: &Args,
    role: &str,
    out: &mut dyn Write,
) -> Result<std::sync::Arc<bmb_basket::DurableStore>, String> {
    let dir_path = args.get::<String>("dir")?.ok_or_else(|| {
        format!("bmb cluster {role} requires --dir DIR (its WAL/checkpoint directory)")
    })?;
    let n_items = args.get::<usize>("items")?.ok_or_else(|| {
        format!("bmb cluster {role} requires --items N (the cluster-wide item-space size)")
    })?;
    let dir = bmb_basket::FsDir::open(std::path::Path::new(&dir_path))
        .map_err(|e| format!("cannot open {dir_path}: {e}"))?;
    let (durable, report) = bmb_basket::DurableStore::open_dir(
        Box::new(dir),
        n_items,
        bmb_basket::StoreConfig {
            segment_capacity: args.get_or("segment-capacity", 4096usize)?,
        },
        bmb_basket::DurabilityConfig {
            segment_bytes: args.get_or("segment-bytes", 8u64 << 20)?,
            retain_checkpoints: args.get_or("retain-checkpoints", 2usize)?,
        },
    )
    .map_err(|e| format!("cannot recover {dir_path}: {e}"))?;
    writeln!(
        out,
        "recovered {} baskets from {dir_path} (epoch {}, checkpoint epoch {})",
        report.baskets_recovered, report.epoch, report.checkpoint_epoch
    )
    .map_err(|e| e.to_string())?;
    Ok(std::sync::Arc::new(durable))
}

/// The background checkpointer for a durable cluster role.
fn cluster_checkpointer(
    args: &Args,
    durable: &std::sync::Arc<bmb_basket::DurableStore>,
) -> Result<bmb_serve::Checkpointer, String> {
    Ok(bmb_serve::Checkpointer::spawn(
        std::sync::Arc::clone(durable),
        bmb_serve::CheckpointerConfig {
            interval: Some(std::time::Duration::from_secs(
                args.get_or("checkpoint-interval-secs", 60u64)?,
            )),
            every_records: Some(args.get_or("checkpoint-every", 4096u64)?),
            ..Default::default()
        },
    ))
}

/// `bmb cluster shard --dir DIR --items N` — one durable shard: a
/// generation-fenced node starting as primary, demotable at runtime.
fn cluster_shard(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let sink = |e: std::io::Error| e.to_string();
    let durable = cluster_open_durable(args, "shard", out)?;
    let engine = std::sync::Arc::new(bmb_core::QueryEngine::new(
        std::sync::Arc::clone(durable.store()),
        bmb_core::EngineConfig::default(),
    ));
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut repl = bmb_cluster::FollowerConfig::new(String::new());
    repl.poll_interval = std::time::Duration::from_millis(args.get_or("poll-ms", 50u64)?);
    let repair_peer = args.get::<String>("repair-peer")?;
    let mut inner =
        bmb_serve::EngineService::new(engine).with_durable(std::sync::Arc::clone(&durable));
    if let Some(peer) = &repair_peer {
        inner = inner.with_repair_peer(peer.clone());
    }
    let node = bmb_cluster::NodeService::primary(
        inner,
        std::sync::Arc::clone(&durable),
        repl,
        std::sync::Arc::clone(&stop),
        std::sync::Arc::new(bmb_cluster::ClusterMetrics::new()),
    );
    let service = std::sync::Arc::new(node) as std::sync::Arc<dyn bmb_serve::Service>;
    let server = bmb_serve::Server::bind_service(
        service,
        cluster_server_config(args, "127.0.0.1:0", "shard")?,
    )
    .map_err(|e| format!("cannot bind: {e}"))?;
    if let Some(dir) = args.get::<String>("dir")? {
        attach_events_ledger(&std::path::Path::new(&dir).join("events.jsonl"), out)?;
    }
    let checkpointer = cluster_checkpointer(args, &durable)?;
    let scrubber = spawn_scrubber(args, &durable, repair_peer, out)?;
    writeln!(
        out,
        "shard listening on {} (generation {})",
        server.local_addr(),
        durable.generation()
    )
    .map_err(sink)?;
    if let Some(addr) = server.metrics_local_addr() {
        writeln!(out, "metrics on http://{addr}/metrics").map_err(sink)?;
    }
    out.flush().map_err(sink)?;
    let run_result = server.run();
    stop.store(true, std::sync::atomic::Ordering::Release);
    if let Some(scrubber) = scrubber {
        scrubber.stop();
    }
    checkpointer.stop();
    bmb_obs::events().detach_ledger();
    run_result.map_err(|e| format!("shard failed: {e}"))
}

/// `bmb cluster serve --items N --shards A,B,...` — the coordinator.
fn cluster_serve(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let sink = |e: std::io::Error| e.to_string();
    let n_items = args
        .get::<usize>("items")?
        .ok_or("bmb cluster serve requires --items N (the cluster-wide item-space size)")?;
    let shards_flag = args.get::<String>("shards")?.ok_or(
        "bmb cluster serve requires --shards ADDR,ADDR,... (shard primaries, in partition order)",
    )?;
    let shard_addrs: Vec<String> = shards_flag
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if shard_addrs.is_empty() {
        return Err("--shards names no addresses".to_string());
    }
    let mut config = bmb_cluster::CoordinatorConfig::new(n_items, shard_addrs.iter().cloned());
    if let Some(followers_flag) = args.get::<String>("followers")? {
        let followers: Vec<&str> = followers_flag.split(',').map(str::trim).collect();
        if followers.len() != config.shards.len() {
            return Err(format!(
                "--followers names {} slots for {} shards; leave a slot empty \
                 (e.g. 'a,,c') for a shard with no follower",
                followers.len(),
                config.shards.len()
            ));
        }
        for (spec, follower) in config.shards.iter_mut().zip(followers) {
            if !follower.is_empty() {
                spec.follower = Some(follower.to_string());
            }
        }
    }
    config.seed = args.get_or("seed", bmb_cluster::DEFAULT_SEED)?;
    if args.has("round-robin") {
        config.strategy = bmb_cluster::PartitionStrategy::RoundRobin;
    }
    let request_timeout_ms = args.get_or("request-timeout-ms", 5000u64)?;
    let probe_cooldown_ms = args.get_or("probe-cooldown-ms", 1000u64)?;
    config.request_timeout = std::time::Duration::from_millis(request_timeout_ms);
    config.probe_cooldown = std::time::Duration::from_millis(probe_cooldown_ms);
    let coordinator = std::sync::Arc::new(bmb_cluster::CoordinatorService::new(config));
    let service = std::sync::Arc::clone(&coordinator) as std::sync::Arc<dyn bmb_serve::Service>;
    let server = bmb_serve::Server::bind_service(
        service,
        cluster_server_config(args, "127.0.0.1:7878", "coordinator")?,
    )
    .map_err(|e| format!("cannot bind: {e}"))?;
    let metrics = server.metrics();
    // With --scrub-interval-secs, the coordinator periodically compares
    // primary/follower segment digests per slot and triggers a scrub on
    // whichever side diverged (anti-entropy; see DESIGN.md §15).
    let ae_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut anti_entropy = None;
    if let Some(secs) = args.get::<u64>("scrub-interval-secs")? {
        if secs > 0 {
            writeln!(out, "anti-entropy every {secs}s").map_err(sink)?;
            let coordinator = std::sync::Arc::clone(&coordinator);
            let ae_stop = std::sync::Arc::clone(&ae_stop);
            let interval = std::time::Duration::from_secs(secs);
            anti_entropy = Some(std::thread::spawn(move || {
                let mut next = std::time::Instant::now() + interval;
                while !ae_stop.load(std::sync::atomic::Ordering::Acquire) {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    if std::time::Instant::now() >= next {
                        coordinator.anti_entropy_round();
                        next = std::time::Instant::now() + interval;
                    }
                }
            }));
        }
    }
    writeln!(
        out,
        "scattering over {} shards (request timeout {request_timeout_ms}ms, \
         probe cooldown {probe_cooldown_ms}ms)",
        shard_addrs.len()
    )
    .map_err(sink)?;
    writeln!(out, "coordinator listening on {}", server.local_addr()).map_err(sink)?;
    if let Some(addr) = server.metrics_local_addr() {
        writeln!(out, "metrics on http://{addr}/metrics").map_err(sink)?;
    }
    out.flush().map_err(sink)?;
    let run_result = server.run();
    ae_stop.store(true, std::sync::atomic::Ordering::Release);
    if let Some(thread) = anti_entropy {
        thread.join().ok();
    }
    run_result.map_err(|e| format!("coordinator failed: {e}"))?;
    let snapshot = metrics.snapshot();
    writeln!(
        out,
        "served {} requests ({} errors), p50 {}us, p99 {}us",
        snapshot.requests, snapshot.errors, snapshot.p50_us, snapshot.p99_us
    )
    .map_err(sink)?;
    Ok(())
}

/// `bmb cluster follow --dir DIR --items N --primary ADDR` — a warm
/// standby tailing a shard's WAL, promotable at a bumped generation.
fn cluster_follow(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let sink = |e: std::io::Error| e.to_string();
    let primary = args
        .get::<String>("primary")?
        .ok_or("bmb cluster follow requires --primary HOST:PORT (the shard to tail)")?;
    let standby = cluster_open_durable(args, "follow", out)?;
    let engine = std::sync::Arc::new(bmb_core::QueryEngine::new(
        std::sync::Arc::clone(standby.store()),
        bmb_core::EngineConfig::default(),
    ));
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut follower_config = bmb_cluster::FollowerConfig::new(primary.clone());
    follower_config.poll_interval =
        std::time::Duration::from_millis(args.get_or("poll-ms", 50u64)?);
    // The follower's repair source is the primary it tails, unless a
    // different replica is named explicitly.
    let repair_peer = args
        .get::<String>("repair-peer")?
        .unwrap_or_else(|| primary.clone());
    let node = bmb_cluster::NodeService::follower(
        bmb_serve::EngineService::new(engine)
            .with_durable(std::sync::Arc::clone(&standby))
            .with_repair_peer(repair_peer.clone()),
        std::sync::Arc::clone(&standby),
        follower_config,
        std::sync::Arc::clone(&stop),
        std::sync::Arc::new(bmb_cluster::ClusterMetrics::new()),
    )
    .map_err(|e| format!("cannot start replication: {e}"))?;
    let service = std::sync::Arc::new(node) as std::sync::Arc<dyn bmb_serve::Service>;
    let server = bmb_serve::Server::bind_service(
        service,
        cluster_server_config(args, "127.0.0.1:0", "follower")?,
    )
    .map_err(|e| format!("cannot bind: {e}"))?;
    if let Some(dir) = args.get::<String>("dir")? {
        attach_events_ledger(&std::path::Path::new(&dir).join("events.jsonl"), out)?;
    }
    let checkpointer = cluster_checkpointer(args, &standby)?;
    let scrubber = spawn_scrubber(args, &standby, Some(repair_peer), out)?;
    writeln!(out, "tailing primary {primary}").map_err(sink)?;
    writeln!(
        out,
        "follower listening on {} (generation {})",
        server.local_addr(),
        standby.generation()
    )
    .map_err(sink)?;
    out.flush().map_err(sink)?;
    let run_result = server.run();
    stop.store(true, std::sync::atomic::Ordering::Release);
    if let Some(scrubber) = scrubber {
        scrubber.stop();
    }
    checkpointer.stop();
    bmb_obs::events().detach_ledger();
    run_result.map_err(|e| format!("follower failed: {e}"))
}

/// `bmb cluster chaos --listen A --upstream B` — the deterministic
/// fault-injection proxy. Fault rates are per-mille per connection;
/// the partition is toggled over the control socket (`partition`,
/// `heal`, `status`, `stop` — same line-JSON envelope as the data
/// protocol).
fn cluster_chaos(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let sink = |e: std::io::Error| e.to_string();
    let listen = args
        .get::<String>("listen")?
        .ok_or("bmb cluster chaos requires --listen HOST:PORT (where clients connect)")?;
    let upstream = args
        .get::<String>("upstream")?
        .ok_or("bmb cluster chaos requires --upstream HOST:PORT (the real endpoint)")?;
    let control = args.get::<String>("control")?;
    let mut config = bmb_cluster::ChaosConfig::new(args.get_or("seed", 0u64)?);
    config.refuse_per_mille = args.get_or("refuse-per-mille", 0u16)?;
    config.drop_per_mille = args.get_or("drop-per-mille", 0u16)?;
    config.stall_per_mille = args.get_or("stall-per-mille", 0u16)?;
    config.corrupt_per_mille = args.get_or("corrupt-per-mille", 0u16)?;
    config.delay_per_mille = args.get_or("delay-per-mille", 0u16)?;
    config.max_delay_us = args.get_or("max-delay-us", 20_000u64)?;
    config.throttle_per_mille = args.get_or("throttle-per-mille", 0u16)?;
    config.throttle_bytes_per_sec = args.get_or("throttle-bytes-per-sec", 65_536u64)?;
    let seed = config.seed;
    let mut handle = bmb_cluster::ChaosProxy::spawn(&listen, &upstream, control.as_deref(), config)
        .map_err(|e| format!("cannot bind chaos proxy: {e}"))?;
    writeln!(
        out,
        "chaos proxy on {} -> {upstream} (seed {seed})",
        handle.local_addr()
    )
    .map_err(sink)?;
    writeln!(out, "control on {}", handle.control_addr()).map_err(sink)?;
    out.flush().map_err(sink)?;
    while !handle.is_stopped() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    handle.stop();
    writeln!(out, "chaos proxy stopped").map_err(sink)?;
    Ok(())
}

/// `bmb cluster trace ADDR TRACE_ID` — pull a trace's span tree.
///
/// Against a coordinator the answer is the cross-node tree: the
/// coordinator fans the lookup out to every shard primary and follower
/// it knows, merges their retained spans with its own, and the render
/// below indents children under parents — one line per span with the
/// node that recorded it, its start offset within the trace, its
/// duration, and its outcome. Against a single node it shows just that
/// node's spans.
fn cluster_trace(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    const TRACE_USAGE: &str =
        "usage: bmb cluster trace ADDR TRACE_ID (16 lowercase hex digits) [--timeout-secs N]";
    let addr = args.positional(2).ok_or(TRACE_USAGE)?;
    let id = args.positional(3).ok_or(TRACE_USAGE)?;
    let timeout = std::time::Duration::from_secs(args.get_or("timeout-secs", 30u64)?);
    let mut client = bmb_serve::Client::connect_timeout(addr, timeout)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let request = bmb_serve::json::Value::object()
        .with("cmd", bmb_serve::json::Value::Str("trace".to_string()))
        .with("trace", bmb_serve::json::Value::Str(id.to_string()));
    let result = client
        .request(&request)
        .map_err(|e| format!("trace query failed: {e}"))?;
    render_trace_tree(&result, out)
}

/// Renders a `trace` response as an indented tree: children under
/// parents, orphans (parent span evicted from some node's ring) at the
/// root level.
fn render_trace_tree(result: &bmb_serve::json::Value, out: &mut dyn Write) -> Result<(), String> {
    use bmb_serve::json::Value;
    let sink = |e: std::io::Error| e.to_string();
    let trace = result.get("trace").and_then(Value::as_str).unwrap_or("?");
    let spans = result
        .get("spans")
        .and_then(Value::as_array)
        .map(<[Value]>::to_vec)
        .unwrap_or_default();
    writeln!(out, "trace {trace}: {} span(s)", spans.len()).map_err(sink)?;
    if spans.is_empty() {
        writeln!(out, "  (no node retains spans for that trace)").map_err(sink)?;
        return Ok(());
    }
    let field = |s: &Value, key: &str| s.get(key).and_then(Value::as_str).map(str::to_string);
    let ids: std::collections::HashSet<String> =
        spans.iter().filter_map(|s| field(s, "span")).collect();
    let base_start = spans
        .iter()
        .filter_map(|s| s.get("start_us").and_then(Value::as_u64))
        .min()
        .unwrap_or(0);
    let mut children: std::collections::HashMap<String, Vec<usize>> =
        std::collections::HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        match field(span, "parent") {
            // A self-parented span would make itself its own child.
            Some(p) if ids.contains(&p) && field(span, "span") != Some(p.clone()) => {
                children.entry(p).or_default().push(i);
            }
            _ => roots.push(i),
        }
    }
    let mut visited = vec![false; spans.len()];
    let mut stack: Vec<(usize, usize)> = roots.into_iter().rev().map(|i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        if std::mem::replace(&mut visited[i], true) {
            continue;
        }
        let span = &spans[i];
        let name = field(span, "name").unwrap_or_else(|| "?".to_string());
        let node = field(span, "node").unwrap_or_else(|| "?".to_string());
        let outcome = field(span, "outcome").unwrap_or_else(|| "?".to_string());
        let start = span
            .get("start_us")
            .and_then(Value::as_u64)
            .unwrap_or(base_start);
        let duration = span.get("duration_us").and_then(Value::as_u64).unwrap_or(0);
        let at = match span.get("shard").and_then(Value::as_i64) {
            Some(shard) => format!("{node}/shard{shard}"),
            None => node,
        };
        writeln!(
            out,
            "{:indent$}{name}  [{at}]  +{}us {duration}us  {outcome}",
            "",
            start.saturating_sub(base_start),
            indent = depth * 2
        )
        .map_err(sink)?;
        if let Some(kids) = children.get(&field(span, "span").unwrap_or_default()) {
            for &kid in kids.iter().rev() {
                stack.push((kid, depth + 1));
            }
        }
    }
    Ok(())
}

/// `bmb cluster events ADDR [--since-us N]` — a node's event timeline.
///
/// Prints the node's retained events (its persisted ledger when the
/// role runs with `--dir`, the in-memory ring otherwise) one JSON line
/// each, oldest first. `--since-us N` keeps only events stamped at or
/// after the unix-microsecond floor.
fn cluster_events(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    const EVENTS_USAGE: &str = "usage: bmb cluster events ADDR [--since-us N] [--timeout-secs N]";
    let addr = args.positional(2).ok_or(EVENTS_USAGE)?;
    let timeout = std::time::Duration::from_secs(args.get_or("timeout-secs", 30u64)?);
    let mut client = bmb_serve::Client::connect_timeout(addr, timeout)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut request = bmb_serve::json::Value::object()
        .with("cmd", bmb_serve::json::Value::Str("events".to_string()));
    if let Some(since) = args.get::<u64>("since-us")? {
        request = request.with("since_us", bmb_serve::json::Value::Int(since as i64));
    }
    let result = client
        .request(&request)
        .map_err(|e| format!("events query failed: {e}"))?;
    let sink = |e: std::io::Error| e.to_string();
    let source = result
        .get("source")
        .and_then(bmb_serve::json::Value::as_str)
        .unwrap_or("?");
    let events = result
        .get("events")
        .and_then(bmb_serve::json::Value::as_array)
        .map(<[bmb_serve::json::Value]>::to_vec)
        .unwrap_or_default();
    writeln!(out, "{} event(s) from the node's {source}", events.len()).map_err(sink)?;
    for event in &events {
        writeln!(out, "{event}").map_err(sink)?;
    }
    Ok(())
}

/// Top-level usage text.
pub const USAGE: &str = "\
bmb — correlation mining for generalized basket data
(Brin/Motwani/Silverstein, SIGMOD 1997)

USAGE:
  bmb mine FILE      [--support F] [--p F] [--alpha F] [--max-level N]
                     [--threads N] [--numeric] [--scan] [--walk] [--walks N]
                     [--trace]
  bmb pairs FILE     [--alpha F] [--numeric]
  bmb rules FILE     [--support F] [--confidence F] [--numeric]
  bmb generate KIND  [--n N] [--items N] [--seed N] [--out FILE]
                     (KIND: quest | census | text)
  bmb stats FILE     [--numeric]
  bmb serve [FILE]   [--addr HOST:PORT] [--workers N] [--items N]
                     [--segment-capacity N] [--wal PATH]
                     [--checkpoint-dir DIR] [--checkpoint-every N]
                     [--checkpoint-interval-secs N]
                     [--scrub-interval-secs N] [--repair-peer HOST:PORT]
                     [--max-connections N] [--metrics-addr HOST:PORT]
                     [--events-ledger PATH] [--numeric]
  bmb query ADDR     [LINE...]  [--timeout-secs N]
  bmb wal inspect PATH  [--limit N]
  bmb wal inspect --dir DIR  [--limit N]
  bmb fsck DIR
  bmb cluster shard  --dir DIR --items N [--addr HOST:PORT]
                     [--shard-index N] [--segment-capacity N]
                     [--segment-bytes N] [--retain-checkpoints N]
                     [--checkpoint-every N] [--checkpoint-interval-secs N]
                     [--scrub-interval-secs N] [--repair-peer HOST:PORT]
                     [--workers N] [--max-connections N]
                     [--metrics-addr HOST:PORT]
  bmb cluster serve  --items N --shards A,B,... [--followers A,,...]
                     [--addr HOST:PORT] [--seed N] [--round-robin]
                     [--request-timeout-ms N] [--probe-cooldown-ms N]
                     [--scrub-interval-secs N]
                     [--workers N] [--max-connections N]
                     [--metrics-addr HOST:PORT]
  bmb cluster follow --dir DIR --items N --primary HOST:PORT
                     [--addr HOST:PORT] [--shard-index N] [--poll-ms N]
                     [--scrub-interval-secs N] [--repair-peer HOST:PORT]
                     [--workers N]
  bmb cluster chaos  --listen HOST:PORT --upstream HOST:PORT
                     [--control HOST:PORT] [--seed N]
                     [--refuse-per-mille N] [--drop-per-mille N]
                     [--stall-per-mille N] [--corrupt-per-mille N]
                     [--delay-per-mille N] [--max-delay-us N]
                     [--throttle-per-mille N] [--throttle-bytes-per-sec N]
  bmb cluster trace  ADDR TRACE_ID  [--timeout-secs N]
  bmb cluster events ADDR  [--since-us N] [--timeout-secs N]

Basket files are one basket per line; tokens are item names (default) or
numeric ids (--numeric). '#' starts a comment line.

'bmb serve' answers line-delimited JSON over TCP (cmd: chi2, chi2_batch,
interest, topk, border, ingest, checkpoint, stats, metrics, ping,
shutdown); 'bmb query' sends request lines from the command line or
stdin. With --metrics-addr, 'bmb serve' also exposes a Prometheus text
snapshot over HTTP at /metrics; 'bmb mine --trace' prints per-stage
wall times. With --checkpoint-dir, 'bmb serve' keeps a rotating WAL
plus periodic checkpoints in DIR — restarts replay only the records
after the newest valid checkpoint; 'bmb wal inspect' dumps any WAL
file's records and torn-tail diagnosis (with --dir, one summary line
per rotated segment with its base epoch, plus every checkpoint's
CRC/epoch verdict and the MANIFEST's agreement with the disk). 'bmb
fsck DIR' is the full offline integrity check — every artifact's
magic, CRC, and epoch chain — exiting non-zero on any finding. With
--scrub-interval-secs, durable roles re-verify sealed segments and
checkpoints in the background, quarantining damage and repairing from
--repair-peer or a re-cut checkpoint ('scrub' over the protocol runs
one pass on demand; on the coordinator the same flag paces
anti-entropy digest comparisons across replicas).

'bmb cluster' runs the sharded roles: 'shard' is one durable store,
'serve' is the coordinator that scatters queries over --shards and
gathers per-shard support vectors into answers bit-identical to a
single store (every response carries the per-shard epoch vector), and
'follow' is a warm standby that tails a shard's WAL over
'replicate_pull' and serves reads once promoted.

Every response names its trace id (16 hex digits; supply your own via
a \"trace\" request field to correlate across requests). 'bmb cluster
trace ADDR ID' pulls the span tree for one trace — against the
coordinator, the full cross-node scatter-gather tree. 'bmb cluster
events ADDR' prints a node's event timeline (persisted to
events.jsonl under --dir for durable roles; see also 'bmb serve
--events-ledger'). The coordinator's /metrics federates every node's
exposition with node=/shard= labels plus cluster rollups.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(spec: &[(&str, FlagKind)], tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()), spec).unwrap()
    }

    fn temp_basket_file(contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "bmb-cli-test-{}-{}.baskets",
            std::process::id(),
            contents.len()
        ));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn mine_command_end_to_end() {
        // Parity data as a named file: the miner must find the triple.
        let db = bmb_datasets::parity_triple(200, 3);
        let mut text = Vec::new();
        bmb_basket::io::write(&db, &mut text).unwrap();
        let path = temp_basket_file(std::str::from_utf8(&text).unwrap());
        let a = args(
            MINE_SPEC,
            &[
                "mine",
                path.to_str().unwrap(),
                "--numeric",
                "--support",
                "0.02",
            ],
        );
        let mut out = Vec::new();
        cmd_mine(&a, &mut out).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(
            rendered.contains("{0, 1, 2}") || rendered.contains("{i0,i1,i2}"),
            "{rendered}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mine_trace_prints_stage_profile() {
        let db = bmb_datasets::parity_triple(200, 3);
        let mut text = Vec::new();
        bmb_basket::io::write(&db, &mut text).unwrap();
        let path = temp_basket_file(std::str::from_utf8(&text).unwrap());
        let a = args(
            MINE_SPEC,
            &[
                "mine",
                path.to_str().unwrap(),
                "--numeric",
                "--support",
                "0.02",
                "--trace",
            ],
        );
        let mut out = Vec::new();
        cmd_mine(&a, &mut out).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("# trace: index build "), "{rendered}");
        assert!(rendered.contains("# trace level 2: count "), "{rendered}");
        assert!(rendered.contains("pruned "), "{rendered}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn pairs_command_reports_interest() {
        let path = temp_basket_file("tea coffee\ncoffee\ncoffee\ntea\n");
        let a = args(PAIRS_SPEC, &["pairs", path.to_str().unwrap()]);
        let mut out = Vec::new();
        cmd_pairs(&a, &mut out).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("tea"), "{rendered}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rules_command_finds_the_association() {
        let path = temp_basket_file("beer diapers\nbeer diapers\nbeer\nmilk\n");
        let a = args(
            RULES_SPEC,
            &[
                "rules",
                path.to_str().unwrap(),
                "--support",
                "0.25",
                "--confidence",
                "0.6",
            ],
        );
        let mut out = Vec::new();
        cmd_rules(&a, &mut out).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("diapers"), "{rendered}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_census_round_trips_through_stats() {
        let out_path =
            std::env::temp_dir().join(format!("bmb-cli-census-{}.baskets", std::process::id()));
        let a = args(
            GENERATE_SPEC,
            &["generate", "census", "--out", out_path.to_str().unwrap()],
        );
        let mut out = Vec::new();
        cmd_generate(&a, &mut out).unwrap();
        let s = args(STATS_SPEC, &["stats", out_path.to_str().unwrap()]);
        let mut out = Vec::new();
        cmd_stats(&s, &mut out).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("baskets: 30370"), "{rendered}");
        std::fs::remove_file(out_path).ok();
    }

    #[test]
    fn missing_file_is_a_user_error() {
        let a = args(STATS_SPEC, &["stats", "/definitely/not/here.baskets"]);
        let mut out = Vec::new();
        assert!(cmd_stats(&a, &mut out).unwrap_err().contains("cannot open"));
    }

    #[test]
    fn bad_dataset_kind_is_reported() {
        let a = args(GENERATE_SPEC, &["generate", "sandwiches"]);
        let mut out = Vec::new();
        assert!(cmd_generate(&a, &mut out)
            .unwrap_err()
            .contains("unknown dataset"));
    }

    /// A `Write` sink the serve thread and the test can both observe.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
        }
    }

    /// Polls the serve output for the announced address — first line
    /// only, since `--metrics-addr` may announce a second listener.
    fn wait_for_addr(buf: &SharedBuf) -> String {
        loop {
            let text = buf.contents();
            if let Some(pos) = text.find("listening on ") {
                let rest = &text[pos + "listening on ".len()..];
                // The announcement may trail the address with extras
                // like "(generation 1)" — the address is the first word.
                if let Some(line) = rest.lines().next() {
                    if let Some(addr) = line.split_whitespace().next() {
                        break addr.to_string();
                    }
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    #[test]
    fn serve_and_query_commands_end_to_end() {
        let path = temp_basket_file("0 1\n0 1 2\n2\n0 1\n");
        let serve_args = args(
            SERVE_SPEC,
            &[
                "serve",
                path.to_str().unwrap(),
                "--numeric",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
            ],
        );
        let buf = SharedBuf::default();
        let server_thread = {
            let mut sink = buf.clone();
            std::thread::spawn(move || cmd_serve(&serve_args, &mut sink))
        };
        // Wait for the ephemeral port to be announced.
        let addr = wait_for_addr(&buf);
        let query_args = args(
            QUERY_SPEC,
            &["query", &addr, r#"{"id":1,"cmd":"chi2","items":[0,1]}"#],
        );
        let mut out = Vec::new();
        cmd_query(&query_args, &mut out).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains(r#""support":3"#), "{rendered}");
        // `shutdown` must drain and let `cmd_serve` return Ok.
        let stop_args = args(QUERY_SPEC, &["query", &addr, r#"{"cmd":"shutdown"}"#]);
        let mut out = Vec::new();
        cmd_query(&stop_args, &mut out).unwrap();
        server_thread.join().unwrap().unwrap();
        assert!(buf.contents().contains("served"), "{}", buf.contents());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn serve_announces_and_serves_http_metrics() {
        use std::io::{Read, Write as _};
        let path = temp_basket_file("0 1\n0 1 2\n2\n0 1\n");
        let serve_args = args(
            SERVE_SPEC,
            &[
                "serve",
                path.to_str().unwrap(),
                "--numeric",
                "--addr",
                "127.0.0.1:0",
                "--metrics-addr",
                "127.0.0.1:0",
                "--workers",
                "2",
            ],
        );
        let buf = SharedBuf::default();
        let server_thread = {
            let mut sink = buf.clone();
            std::thread::spawn(move || cmd_serve(&serve_args, &mut sink))
        };
        let addr = wait_for_addr(&buf);
        // The metrics listener is announced on its own line.
        let metrics_addr = loop {
            let text = buf.contents();
            if let Some(pos) = text.find("metrics on http://") {
                let rest = &text[pos + "metrics on http://".len()..];
                if let Some(end) = rest.find("/metrics") {
                    break rest[..end].to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let mut stream = std::net::TcpStream::connect(&metrics_addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("bmb_serve_requests_total"), "{response}");
        let stop_args = args(QUERY_SPEC, &["query", &addr, r#"{"cmd":"shutdown"}"#]);
        let mut out = Vec::new();
        cmd_query(&stop_args, &mut out).unwrap();
        server_thread.join().unwrap().unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn serve_without_file_or_items_is_a_user_error() {
        let a = args(SERVE_SPEC, &["serve"]);
        let mut out = Vec::new();
        assert!(cmd_serve(&a, &mut out).unwrap_err().contains("usage"));
    }

    #[test]
    fn serve_wal_without_items_is_a_user_error() {
        let a = args(SERVE_SPEC, &["serve", "--wal", "/tmp/x.wal"]);
        let mut out = Vec::new();
        assert!(cmd_serve(&a, &mut out).unwrap_err().contains("--items"));
    }

    /// Boots `bmb serve --wal`, returns the bound address and handles.
    fn spawn_wal_server(
        wal: &std::path::Path,
    ) -> (
        String,
        SharedBuf,
        std::thread::JoinHandle<Result<(), String>>,
    ) {
        let serve_args = args(
            SERVE_SPEC,
            &[
                "serve",
                "--items",
                "4",
                "--wal",
                wal.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
            ],
        );
        let buf = SharedBuf::default();
        let thread = {
            let mut sink = buf.clone();
            std::thread::spawn(move || cmd_serve(&serve_args, &mut sink))
        };
        let addr = wait_for_addr(&buf);
        (addr, buf, thread)
    }

    #[test]
    fn serve_with_wal_recovers_across_restart() {
        let wal = std::env::temp_dir().join(format!("bmb-cli-wal-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&wal);

        // First life: a fresh WAL, three baskets ingested durably.
        let (addr, buf, thread) = spawn_wal_server(&wal);
        assert!(
            buf.contents().contains("recovered 0 baskets"),
            "{}",
            buf.contents()
        );
        let ingest = args(
            QUERY_SPEC,
            &[
                "query",
                &addr,
                r#"{"cmd":"ingest","baskets":[[0,1],[1,2],[0,1]]}"#,
                r#"{"cmd":"shutdown"}"#,
            ],
        );
        let mut out = Vec::new();
        cmd_query(&ingest, &mut out).unwrap();
        assert!(String::from_utf8_lossy(&out).contains(r#""epoch":3"#));
        thread.join().unwrap().unwrap();

        // Second life: the same WAL replays, the epoch resumes at 3.
        let (addr, buf, thread) = spawn_wal_server(&wal);
        assert!(
            buf.contents().contains("(epoch 3)"),
            "restart must announce the recovered epoch: {}",
            buf.contents()
        );
        let probe = args(
            QUERY_SPEC,
            &[
                "query",
                &addr,
                r#"{"cmd":"chi2","items":[0,1]}"#,
                r#"{"cmd":"shutdown"}"#,
            ],
        );
        let mut out = Vec::new();
        cmd_query(&probe, &mut out).unwrap();
        let rendered = String::from_utf8_lossy(&out).into_owned();
        assert!(rendered.contains(r#""support":2"#), "{rendered}");
        assert!(rendered.contains(r#""epoch":3"#), "{rendered}");
        thread.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&wal);
    }

    /// Boots `bmb serve --checkpoint-dir`, returns address and handles.
    fn spawn_ckpt_server(
        dir: &std::path::Path,
        every: &str,
    ) -> (
        String,
        SharedBuf,
        std::thread::JoinHandle<Result<(), String>>,
    ) {
        let serve_args = args(
            SERVE_SPEC,
            &[
                "serve",
                "--items",
                "4",
                "--checkpoint-dir",
                dir.to_str().unwrap(),
                "--checkpoint-every",
                every,
                "--checkpoint-interval-secs",
                "3600",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
            ],
        );
        let buf = SharedBuf::default();
        let thread = {
            let mut sink = buf.clone();
            std::thread::spawn(move || cmd_serve(&serve_args, &mut sink))
        };
        let addr = wait_for_addr(&buf);
        (addr, buf, thread)
    }

    #[test]
    fn serve_with_checkpoint_dir_recovers_and_answers_admin_checkpoint() {
        let dir = std::env::temp_dir().join(format!("bmb-cli-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // First life: ingest, force an admin checkpoint, ingest more.
        let (addr, _buf, thread) = spawn_ckpt_server(&dir, "1000000");
        let ingest = args(
            QUERY_SPEC,
            &[
                "query",
                &addr,
                r#"{"cmd":"ingest","baskets":[[0,1],[1,2],[0,1]]}"#,
                r#"{"id":9,"cmd":"checkpoint"}"#,
                r#"{"cmd":"ingest","baskets":[[2,3]]}"#,
                r#"{"cmd":"shutdown"}"#,
            ],
        );
        let mut out = Vec::new();
        cmd_query(&ingest, &mut out).unwrap();
        let rendered = String::from_utf8_lossy(&out).into_owned();
        assert!(rendered.contains(r#""id":9,"ok":true"#), "{rendered}");
        assert!(rendered.contains(r#""epoch":4"#), "{rendered}");
        thread.join().unwrap().unwrap();
        assert!(
            std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(Result::ok)
                .any(|e| e.file_name().to_string_lossy().starts_with("ckpt.")),
            "checkpoint file on disk"
        );

        // Second life: bounded recovery announces the checkpoint epoch.
        let (addr, buf, thread) = spawn_ckpt_server(&dir, "1000000");
        assert!(
            buf.contents().contains("checkpoint epoch 3"),
            "{}",
            buf.contents()
        );
        let probe = args(
            QUERY_SPEC,
            &[
                "query",
                &addr,
                r#"{"cmd":"chi2","items":[0,1]}"#,
                r#"{"cmd":"shutdown"}"#,
            ],
        );
        let mut out = Vec::new();
        cmd_query(&probe, &mut out).unwrap();
        let rendered = String::from_utf8_lossy(&out).into_owned();
        assert!(rendered.contains(r#""epoch":4"#), "{rendered}");
        assert!(rendered.contains(r#""support":2"#), "{rendered}");
        thread.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_rejects_wal_plus_checkpoint_dir() {
        let a = args(
            SERVE_SPEC,
            &[
                "serve",
                "--items",
                "4",
                "--wal",
                "/tmp/x.wal",
                "--checkpoint-dir",
                "/tmp/x.d",
            ],
        );
        let mut out = Vec::new();
        assert!(cmd_serve(&a, &mut out)
            .unwrap_err()
            .contains("mutually exclusive"));
    }

    #[test]
    fn wal_inspect_dumps_records_and_diagnosis() {
        // Build a real single-file WAL, then inspect it.
        let wal = std::env::temp_dir().join(format!("bmb-cli-inspect-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&wal);
        {
            let storage = bmb_basket::FileStorage::open(&wal).unwrap();
            let (durable, _) = bmb_basket::DurableStore::open(
                Box::new(storage),
                4,
                bmb_basket::StoreConfig::default(),
            )
            .unwrap();
            durable.append_ids([0, 1]).unwrap();
            durable.append_ids([1, 2]).unwrap();
        }
        let a = args(WAL_SPEC, &["wal", "inspect", wal.to_str().unwrap()]);
        let mut out = Vec::new();
        cmd_wal(&a, &mut out).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("format v1"), "{rendered}");
        assert!(rendered.contains("batch"), "{rendered}");
        assert!(rendered.contains("diagnosis: clean"), "{rendered}");
        assert!(rendered.contains("end epoch: 2"), "{rendered}");

        // Tear the tail: the diagnosis must say so, and the command
        // must fail (non-zero exit) so scripts can assert WAL health.
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();
        let mut out = Vec::new();
        let verdict = cmd_wal(&a, &mut out).unwrap_err();
        assert!(verdict.contains("WAL is not clean"), "{verdict}");
        let rendered = String::from_utf8(out).unwrap();
        assert!(!rendered.contains("diagnosis: clean"), "{rendered}");
        assert!(rendered.contains("end epoch: 1"), "{rendered}");
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn wal_inspect_rejects_non_wal_files() {
        let path = temp_basket_file("definitely not a wal\n");
        let a = args(WAL_SPEC, &["wal", "inspect", path.to_str().unwrap()]);
        let mut out = Vec::new();
        assert!(cmd_wal(&a, &mut out).unwrap_err().contains("not a WAL"));
        let bad_action = args(WAL_SPEC, &["wal", "frobnicate", "x"]);
        let mut out = Vec::new();
        assert!(cmd_wal(&bad_action, &mut out)
            .unwrap_err()
            .contains("unknown wal action"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn wal_inspect_dir_prints_per_segment_base_epochs() {
        // A directory-mode store with a tiny segment cap so rotation
        // actually happens, then the --dir walk.
        let dir = std::env::temp_dir().join(format!("bmb-cli-waldir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let fs = bmb_basket::FsDir::open(&dir).unwrap();
            let (durable, _) = bmb_basket::DurableStore::open_dir(
                Box::new(fs),
                4,
                bmb_basket::StoreConfig::default(),
                bmb_basket::DurabilityConfig {
                    segment_bytes: 64,
                    retain_checkpoints: 2,
                },
            )
            .unwrap();
            for _ in 0..20 {
                durable.append_ids([0, 1]).unwrap();
            }
        }
        let a = args(
            WAL_SPEC,
            &["wal", "inspect", "--dir", dir.to_str().unwrap()],
        );
        let mut out = Vec::new();
        cmd_wal(&a, &mut out).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("wal.000000: base epoch 0"), "{rendered}");
        assert!(rendered.contains("wal.000001: base epoch "), "{rendered}");
        assert!(rendered.contains("end epoch: 20"), "{rendered}");
        assert!(rendered.contains("segments: "), "{rendered}");

        // --limit caps the per-segment lines, the summary survives.
        let limited = args(
            WAL_SPEC,
            &[
                "wal",
                "inspect",
                "--dir",
                dir.to_str().unwrap(),
                "--limit",
                "1",
            ],
        );
        let mut out = Vec::new();
        cmd_wal(&limited, &mut out).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("more segments"), "{rendered}");
        assert!(rendered.contains("end epoch: 20"), "{rendered}");

        // An empty directory is a user error, not a silent success.
        let empty = std::env::temp_dir().join(format!("bmb-cli-waldir-e-{}", std::process::id()));
        std::fs::create_dir_all(&empty).unwrap();
        let a = args(
            WAL_SPEC,
            &["wal", "inspect", "--dir", empty.to_str().unwrap()],
        );
        let mut out = Vec::new();
        assert!(cmd_wal(&a, &mut out).unwrap_err().contains("no wal."));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&empty);
    }

    /// A healthy on-disk durability directory: rotated segments, one
    /// checkpoint (plus its MANIFEST), and post-checkpoint records.
    fn durable_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bmb-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = bmb_basket::FsDir::open(&dir).unwrap();
        let (durable, _) = bmb_basket::DurableStore::open_dir(
            Box::new(fs),
            8,
            bmb_basket::StoreConfig {
                segment_capacity: 4,
            },
            bmb_basket::DurabilityConfig {
                segment_bytes: 64,
                retain_checkpoints: 2,
            },
        )
        .unwrap();
        for i in 0..10u32 {
            durable.append_ids([i % 3, 3 + (i % 5)]).unwrap();
        }
        durable.checkpoint().unwrap();
        for i in 0..4u32 {
            durable.append_ids([i % 3, 3 + (i % 5)]).unwrap();
        }
        dir
    }

    /// The directory's checkpoint file (there is exactly one).
    fn checkpoint_file(dir: &std::path::Path) -> std::path::PathBuf {
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .map(|n| n.to_string_lossy().starts_with("ckpt."))
                    .unwrap_or(false)
            })
            .expect("a checkpoint on disk")
    }

    #[test]
    fn fsck_passes_a_healthy_directory_and_fails_a_damaged_one() {
        let dir = durable_dir("fsck");
        let a = args(FSCK_SPEC, &["fsck", dir.to_str().unwrap()]);
        let mut out = Vec::new();
        cmd_fsck(&a, &mut out).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("clean"), "{rendered}");
        assert!(rendered.contains("artifact(s)"), "{rendered}");

        // Flip one checkpoint byte: fsck must report it and exit
        // non-zero (the Err return maps to exit code 1 in main).
        let ckpt = checkpoint_file(&dir);
        let mut bytes = std::fs::read(&ckpt).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&ckpt, &bytes).unwrap();
        let mut out = Vec::new();
        let verdict = cmd_fsck(&a, &mut out).unwrap_err();
        assert!(verdict.contains("integrity finding"), "{verdict}");
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("ckpt."), "{rendered}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_requires_a_directory_argument() {
        let a = args(FSCK_SPEC, &["fsck"]);
        let mut out = Vec::new();
        assert!(cmd_fsck(&a, &mut out)
            .unwrap_err()
            .contains("usage: bmb fsck DIR"));
    }

    #[test]
    fn wal_inspect_dir_validates_checkpoints_and_manifest() {
        let dir = durable_dir("walck");
        let a = args(
            WAL_SPEC,
            &["wal", "inspect", "--dir", dir.to_str().unwrap()],
        );

        // Healthy: the checkpoint and MANIFEST verify and are listed.
        let mut out = Vec::new();
        cmd_wal(&a, &mut out).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("ckpt."), "{rendered}");
        assert!(
            rendered.contains("MANIFEST: 1 checkpoint(s) listed"),
            "{rendered}"
        );
        assert!(
            rendered.contains("checkpoints: 1, damaged artifacts: 0"),
            "{rendered}"
        );

        // A flipped checkpoint byte fails the walk with a CRC verdict.
        let ckpt = checkpoint_file(&dir);
        let pristine = std::fs::read(&ckpt).unwrap();
        let mut damaged = pristine.clone();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0xFF;
        std::fs::write(&ckpt, &damaged).unwrap();
        let mut out = Vec::new();
        let verdict = cmd_wal(&a, &mut out).unwrap_err();
        assert!(verdict.contains("damaged checkpoint artifact"), "{verdict}");
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("CRC mismatch"), "{rendered}");

        // Restore the bytes but delete the file: the MANIFEST now
        // disagrees with the disk, which is also a non-zero exit.
        std::fs::write(&ckpt, &pristine).unwrap();
        std::fs::remove_file(&ckpt).unwrap();
        let mut out = Vec::new();
        let verdict = cmd_wal(&a, &mut out).unwrap_err();
        assert!(verdict.contains("damaged checkpoint artifact"), "{verdict}");
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("is missing"), "{rendered}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Boots one `bmb cluster shard` on an ephemeral port.
    fn spawn_cluster_shard(
        dir: &std::path::Path,
    ) -> (String, std::thread::JoinHandle<Result<(), String>>) {
        let shard_args = args(
            CLUSTER_SPEC,
            &[
                "cluster",
                "shard",
                "--dir",
                dir.to_str().unwrap(),
                "--items",
                "8",
            ],
        );
        let buf = SharedBuf::default();
        let thread = {
            let mut sink = buf.clone();
            std::thread::spawn(move || cmd_cluster(&shard_args, &mut sink))
        };
        let addr = wait_for_addr(&buf);
        (addr, thread)
    }

    fn shutdown_at(addr: &str) {
        let stop = args(QUERY_SPEC, &["query", addr, r#"{"cmd":"shutdown"}"#]);
        let mut out = Vec::new();
        cmd_query(&stop, &mut out).unwrap();
    }

    #[test]
    fn cluster_commands_end_to_end() {
        // Two shards, one coordinator, one follower tailing shard 0 —
        // all through the public CLI entry points.
        let base = std::env::temp_dir().join(format!("bmb-cli-cluster-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let (shard0_addr, shard0_thread) = spawn_cluster_shard(&base.join("s0"));
        let (shard1_addr, shard1_thread) = spawn_cluster_shard(&base.join("s1"));

        let serve_args = args(
            CLUSTER_SPEC,
            &[
                "cluster",
                "serve",
                "--items",
                "8",
                "--shards",
                &format!("{shard0_addr},{shard1_addr}"),
                "--round-robin",
                "--addr",
                "127.0.0.1:0",
            ],
        );
        let coord_buf = SharedBuf::default();
        let coord_thread = {
            let mut sink = coord_buf.clone();
            std::thread::spawn(move || cmd_cluster(&serve_args, &mut sink))
        };
        let coord_addr = wait_for_addr(&coord_buf);

        let follow_args = args(
            CLUSTER_SPEC,
            &[
                "cluster",
                "follow",
                "--dir",
                base.join("f0").to_str().unwrap(),
                "--items",
                "8",
                "--primary",
                &shard0_addr,
                "--poll-ms",
                "5",
            ],
        );
        let follow_buf = SharedBuf::default();
        let follow_thread = {
            let mut sink = follow_buf.clone();
            std::thread::spawn(move || cmd_cluster(&follow_args, &mut sink))
        };
        let follow_addr = wait_for_addr(&follow_buf);

        // Ingest through the coordinator; the answer names both epochs.
        let ingest = args(
            QUERY_SPEC,
            &[
                "query",
                &coord_addr,
                r#"{"cmd":"ingest","baskets":[[0,1],[1,2],[0,1],[2,3],[0,1,2]]}"#,
            ],
        );
        let mut out = Vec::new();
        cmd_query(&ingest, &mut out).unwrap();
        let rendered = String::from_utf8_lossy(&out).into_owned();
        assert!(rendered.contains(r#""ingested":5"#), "{rendered}");
        assert!(rendered.contains(r#""epoch":5"#), "{rendered}");
        assert!(rendered.contains(r#""epochs":["#), "{rendered}");

        // A chi2 through the coordinator carries the epoch vector.
        let probe = args(
            QUERY_SPEC,
            &["query", &coord_addr, r#"{"cmd":"chi2","items":[0,1]}"#],
        );
        let mut out = Vec::new();
        cmd_query(&probe, &mut out).unwrap();
        let rendered = String::from_utf8_lossy(&out).into_owned();
        assert!(rendered.contains(r#""statistic":"#), "{rendered}");
        assert!(rendered.contains(r#""epochs":["#), "{rendered}");

        // Round-robin routed baskets 0, 2, 4 to shard 0; the follower
        // tails that shard until its standby reaches the same epoch.
        let stat_of = |addr: &str, key: &str| -> i64 {
            let q = args(QUERY_SPEC, &["query", addr, r#"{"cmd":"stats"}"#]);
            let mut out = Vec::new();
            cmd_query(&q, &mut out).unwrap();
            let line = String::from_utf8(out).unwrap();
            let value = bmb_serve::json::parse(line.trim()).unwrap();
            value
                .get("result")
                .and_then(|r| r.get(key))
                .and_then(bmb_serve::json::Value::as_i64)
                .unwrap_or_else(|| panic!("no {key} in {line}"))
        };
        assert_eq!(stat_of(&shard0_addr, "epoch"), 3);
        let stats = args(QUERY_SPEC, &["query", &follow_addr, r#"{"cmd":"stats"}"#]);
        let mut out = Vec::new();
        cmd_query(&stats, &mut out).unwrap();
        let rendered = String::from_utf8_lossy(&out).into_owned();
        assert!(rendered.contains(r#""role":"follower""#), "{rendered}");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while stat_of(&follow_addr, "epoch") < 3 || stat_of(&follow_addr, "replication_lag") != 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "follower never caught up to shard 0"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }

        shutdown_at(&coord_addr);
        coord_thread.join().unwrap().unwrap();
        assert!(
            coord_buf.contents().contains("served "),
            "{}",
            coord_buf.contents()
        );
        shutdown_at(&follow_addr);
        follow_thread.join().unwrap().unwrap();
        shutdown_at(&shard0_addr);
        shard0_thread.join().unwrap().unwrap();
        shutdown_at(&shard1_addr);
        shard1_thread.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn cluster_role_errors_are_user_errors() {
        let mut out = Vec::new();
        let a = args(CLUSTER_SPEC, &["cluster"]);
        assert!(cmd_cluster(&a, &mut out).unwrap_err().contains("usage"));
        let a = args(CLUSTER_SPEC, &["cluster", "frobnicate"]);
        assert!(cmd_cluster(&a, &mut out)
            .unwrap_err()
            .contains("unknown cluster role"));
        let a = args(CLUSTER_SPEC, &["cluster", "serve", "--items", "4"]);
        assert!(cmd_cluster(&a, &mut out).unwrap_err().contains("--shards"));
        let a = args(CLUSTER_SPEC, &["cluster", "shard", "--items", "4"]);
        assert!(cmd_cluster(&a, &mut out).unwrap_err().contains("--dir"));
        let a = args(
            CLUSTER_SPEC,
            &["cluster", "follow", "--dir", "/tmp/x", "--items", "4"],
        );
        assert!(cmd_cluster(&a, &mut out).unwrap_err().contains("--primary"));
        let a = args(
            CLUSTER_SPEC,
            &[
                "cluster",
                "serve",
                "--items",
                "4",
                "--shards",
                "a:1,b:2",
                "--followers",
                "c:3",
            ],
        );
        assert!(cmd_cluster(&a, &mut out).unwrap_err().contains("2 shards"));
    }

    #[test]
    fn query_against_no_server_is_a_user_error() {
        let a = args(QUERY_SPEC, &["query", "127.0.0.1:1", r#"{"cmd":"ping"}"#]);
        let mut out = Vec::new();
        assert!(cmd_query(&a, &mut out)
            .unwrap_err()
            .contains("cannot connect"));
    }
}

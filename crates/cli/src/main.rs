//! `bmb` — correlation mining from the command line.

use bmb_cli::args::Args;
use bmb_cli::commands::{
    cmd_cluster, cmd_fsck, cmd_generate, cmd_mine, cmd_pairs, cmd_query, cmd_rules, cmd_serve,
    cmd_stats, cmd_wal, CLUSTER_SPEC, FSCK_SPEC, GENERATE_SPEC, MINE_SPEC, PAIRS_SPEC, QUERY_SPEC,
    RULES_SPEC, SERVE_SPEC, STATS_SPEC, USAGE, WAL_SPEC,
};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command: String = argv.first().cloned().unwrap_or_default();
    let command = command.as_str();
    let spec = match command {
        "mine" => MINE_SPEC,
        "pairs" => PAIRS_SPEC,
        "rules" => RULES_SPEC,
        "generate" => GENERATE_SPEC,
        "stats" => STATS_SPEC,
        "serve" => SERVE_SPEC,
        "query" => QUERY_SPEC,
        "wal" => WAL_SPEC,
        "fsck" => FSCK_SPEC,
        "cluster" => CLUSTER_SPEC,
        _ => {
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    let result = Args::parse(argv, spec).and_then(|args| {
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        match command {
            "mine" => cmd_mine(&args, &mut out),
            "pairs" => cmd_pairs(&args, &mut out),
            "rules" => cmd_rules(&args, &mut out),
            "generate" => cmd_generate(&args, &mut out),
            "stats" => cmd_stats(&args, &mut out),
            "serve" => cmd_serve(&args, &mut out),
            "query" => cmd_query(&args, &mut out),
            "wal" => cmd_wal(&args, &mut out),
            "fsck" => cmd_fsck(&args, &mut out),
            "cluster" => cmd_cluster(&args, &mut out),
            _ => unreachable!(),
        }
    });
    if let Err(message) = result {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

//! Ordered token streams — the corpus with word order preserved.
//!
//! The basket abstraction deliberately forgets ordering ("there could be
//! structure in the data (e.g., word ordering within documents) that is
//! lost in this general framework" — Section 1.1). The paper's conclusion
//! proposes rules that exploit that ordering; this module generates the
//! corpus as token sequences so `bmb-core::locality` can test them.
//! Planted *collocation adjacency*: in documents where a planted pair is
//! active, the two words are also emitted adjacently several times (the
//! way "Nelson" precedes "Mandela" in real text).

use bmb_basket::{BasketDatabase, ItemCatalog, ItemId};
use bmb_sampling::AliasTable;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use super::corpus::{TextParams, PARITY_TRIPLE, PLANTED_PAIRS};

/// A corpus with ordering: token streams plus the word catalog.
#[derive(Clone, Debug)]
pub struct SequenceCorpus {
    /// One token stream per document.
    pub documents: Vec<Vec<ItemId>>,
    /// Word names for the item space.
    pub catalog: ItemCatalog,
}

impl SequenceCorpus {
    /// The number of distinct words in the item space.
    pub fn n_words(&self) -> usize {
        self.catalog.len()
    }

    /// Collapses the ordered corpus into a basket database (distinct words
    /// per document), the Section 5.2 representation.
    pub fn to_baskets(&self) -> BasketDatabase {
        let mut db = BasketDatabase::new(self.n_words());
        for doc in &self.documents {
            db.push_basket(doc.iter().copied());
        }
        db.set_catalog(self.catalog.clone());
        db
    }
}

/// Generates an ordered corpus. Shares [`TextParams`] with the unordered
/// generator but emits token streams; planted pairs appear *adjacent*
/// (within a couple of tokens) in their active documents.
pub fn generate_sequences(params: &TextParams) -> SequenceCorpus {
    assert!(params.n_documents > 0, "need at least one document");
    assert!(
        params.min_tokens <= params.max_tokens,
        "token bounds inverted"
    );
    assert!(params.n_topics > 0, "need at least one topic");
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5e9);

    let mut names: Vec<String> = Vec::new();
    for &(a, b, _) in &PLANTED_PAIRS {
        names.push(a.to_string());
        names.push(b.to_string());
    }
    for w in PARITY_TRIPLE {
        names.push(w.to_string());
    }
    let n_planted = names.len();
    for i in 0..params.vocabulary {
        names.push(format!("w{i:04}"));
    }
    let catalog = ItemCatalog::from_names(names);

    let base: Vec<f64> = (0..params.vocabulary)
        .map(|r| 1.0 / ((r + 1) as f64).powf(params.zipf_exponent))
        .collect();
    let slice_len = params.vocabulary / params.n_topics;
    let topic_samplers: Vec<AliasTable> = (0..params.n_topics)
        .map(|t| {
            let lo = t * slice_len;
            let hi = lo + slice_len;
            let weights: Vec<f64> = base
                .iter()
                .enumerate()
                .map(|(r, &w)| {
                    if r >= lo && r < hi {
                        w * params.topic_boost
                    } else {
                        w
                    }
                })
                .collect();
            AliasTable::new(&weights)
        })
        .collect();

    let n = params.n_documents;
    let mut activations: Vec<Vec<bool>> = Vec::new();
    for &(_, _, fraction) in &PLANTED_PAIRS {
        let k = ((fraction * n as f64).round() as usize).min(n);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut active = vec![false; n];
        for &doc in order.iter().take(k) {
            active[doc] = true;
        }
        activations.push(active);
    }

    let mut documents = Vec::with_capacity(n);
    for doc in 0..n {
        let topic = rng.gen_range(0..params.n_topics);
        let tokens = rng.gen_range(params.min_tokens..=params.max_tokens);
        let mut stream: Vec<ItemId> = Vec::with_capacity(tokens + 16);
        for _ in 0..tokens {
            let filler_rank = topic_samplers[topic].sample(&mut rng);
            stream.push(ItemId((n_planted + filler_rank) as u32));
        }
        // Splice the active collocations in as *adjacent* token pairs, a
        // few mentions each, at random positions.
        for (pair_idx, active) in activations.iter().enumerate() {
            if !active[doc] {
                continue;
            }
            let first = ItemId((pair_idx * 2) as u32);
            let second = ItemId((pair_idx * 2 + 1) as u32);
            let mentions = rng.gen_range(2..=5);
            for _ in 0..mentions {
                let at = rng.gen_range(0..=stream.len());
                stream.insert(at, second);
                stream.insert(at, first);
            }
        }
        documents.push(stream);
    }
    SequenceCorpus { documents, catalog }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_have_order_and_length() {
        let corpus = generate_sequences(&TextParams {
            vocabulary: 500,
            ..TextParams::default()
        });
        assert_eq!(corpus.documents.len(), 91);
        for doc in &corpus.documents {
            assert!(doc.len() >= 200, "document shorter than the paper's floor");
        }
    }

    #[test]
    fn collapsing_to_baskets_matches_membership() {
        let corpus = generate_sequences(&TextParams {
            vocabulary: 300,
            ..TextParams::default()
        });
        let db = corpus.to_baskets();
        assert_eq!(db.len(), corpus.documents.len());
        for (i, doc) in corpus.documents.iter().enumerate() {
            for &token in doc {
                assert!(db.basket(i).contains(&token));
            }
        }
    }

    #[test]
    fn planted_pairs_are_adjacent_in_active_documents() {
        let corpus = generate_sequences(&TextParams {
            vocabulary: 400,
            ..TextParams::default()
        });
        let mandela = corpus.catalog.get("mandela").unwrap();
        let nelson = corpus.catalog.get("nelson").unwrap();
        let mut adjacent = 0usize;
        for doc in &corpus.documents {
            for w in doc.windows(2) {
                if w[0] == mandela && w[1] == nelson {
                    adjacent += 1;
                }
            }
        }
        assert!(
            adjacent >= 40,
            "expected many adjacent mentions, got {adjacent}"
        );
    }

    #[test]
    fn deterministic() {
        let params = TextParams {
            vocabulary: 200,
            ..TextParams::default()
        };
        let a = generate_sequences(&params);
        let b = generate_sequences(&params);
        assert_eq!(a.documents, b.documents);
    }
}

//! Corpus generation: topics, Zipfian filler, planted structure.

use bmb_basket::{BasketDatabase, ItemId};
use bmb_sampling::AliasTable;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic corpus.
#[derive(Clone, Copy, Debug)]
pub struct TextParams {
    /// Number of documents (the paper uses 91).
    pub n_documents: usize,
    /// Minimum tokens per document (the paper filtered at 200 words).
    pub min_tokens: usize,
    /// Maximum tokens per document.
    pub max_tokens: usize,
    /// Raw vocabulary size before document-frequency pruning.
    pub vocabulary: usize,
    /// Zipf exponent of the filler vocabulary.
    pub zipf_exponent: f64,
    /// Number of topics; topical words co-occur, giving the broad
    /// correlation mass the paper observes.
    pub n_topics: usize,
    /// Multiplicative boost a topic gives its own slice of the vocabulary.
    pub topic_boost: f64,
    /// Document-frequency pruning threshold (the paper's 10%).
    pub df_threshold: f64,
    /// RNG seed; generation is deterministic given the seed.
    pub seed: u64,
}

impl Default for TextParams {
    fn default() -> Self {
        TextParams {
            n_documents: 91,
            min_tokens: 200,
            max_tokens: 600,
            vocabulary: 4200,
            zipf_exponent: 1.05,
            n_topics: 6,
            topic_boost: 20.0,
            df_threshold: 0.10,
            seed: 0x7e47,
        }
    }
}

/// Planted pair collocations `(word_a, word_b, active_fraction)`, named
/// after Table 4's findings. In an *active* document both words appear;
/// elsewhere they appear only at background rates.
pub const PLANTED_PAIRS: [(&str, &str, f64); 5] = [
    ("mandela", "nelson", 0.45),
    ("liberia", "west", 0.35),
    ("area", "province", 0.40),
    ("deputy", "director", 0.30),
    ("members", "minority", 0.30),
];

/// The parity-planted triple: pairwise independent, 3-way dependent.
pub const PARITY_TRIPLE: [&str; 3] = ["burundi", "commission", "plan"];

/// Convenience: the planted pair names without the fractions.
pub fn planted_pairs() -> Vec<(&'static str, &'static str)> {
    PLANTED_PAIRS.iter().map(|&(a, b, _)| (a, b)).collect()
}

/// Generates the corpus as a word-basket database (each basket = the set
/// of distinct words of one document), then applies the paper's
/// document-frequency pruning. Returns the pruned database; the catalog
/// names planted words by their Table 4 names and fillers `w0000`, `w0001`,
/// ….
pub fn generate(params: &TextParams) -> BasketDatabase {
    assert!(params.n_documents > 0, "need at least one document");
    assert!(
        params.min_tokens <= params.max_tokens,
        "token bounds inverted"
    );
    assert!(params.n_topics > 0, "need at least one topic");
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Vocabulary: planted names first, fillers after.
    let mut names: Vec<String> = Vec::with_capacity(params.vocabulary + 16);
    for &(a, b, _) in &PLANTED_PAIRS {
        names.push(a.to_string());
        names.push(b.to_string());
    }
    for w in PARITY_TRIPLE {
        names.push(w.to_string());
    }
    let n_planted = names.len();
    for i in 0..params.vocabulary {
        names.push(format!("w{i:04}"));
    }
    let n_words = names.len();

    // Topic-specific samplers over the filler portion of the vocabulary.
    // Base weights are Zipf; each topic boosts its own contiguous slice.
    let base: Vec<f64> = (0..params.vocabulary)
        .map(|r| 1.0 / ((r + 1) as f64).powf(params.zipf_exponent))
        .collect();
    let slice_len = params.vocabulary / params.n_topics;
    let topic_samplers: Vec<AliasTable> = (0..params.n_topics)
        .map(|t| {
            let lo = t * slice_len;
            let hi = lo + slice_len;
            let weights: Vec<f64> = base
                .iter()
                .enumerate()
                .map(|(r, &w)| {
                    if r >= lo && r < hi {
                        w * params.topic_boost
                    } else {
                        w
                    }
                })
                .collect();
            AliasTable::new(&weights)
        })
        .collect();

    // Deterministic activation sets: exactly round(fraction·n) documents
    // activate each planted pair, chosen by a seeded shuffle.
    let n = params.n_documents;
    let mut activations: Vec<Vec<bool>> = Vec::new();
    for &(_, _, fraction) in &PLANTED_PAIRS {
        let k = ((fraction * n as f64).round() as usize).min(n);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut active = vec![false; n];
        for &doc in order.iter().take(k) {
            active[doc] = true;
        }
        activations.push(active);
    }
    // Parity triple: per document, (x, y) cycles through the four
    // combinations (shuffled order), and the third word appears iff x == y.
    // Every pair of the three indicators is exactly balanced — independent —
    // while the triple is functionally determined.
    let mut parity_combo: Vec<usize> = (0..n).map(|d| d % 4).collect();
    parity_combo.shuffle(&mut rng);

    let mut db = BasketDatabase::new(n_words);
    for doc in 0..n {
        let mut words: Vec<ItemId> = Vec::new();
        // Planted pairs.
        for (pair_idx, &(_, _, _)) in PLANTED_PAIRS.iter().enumerate() {
            if activations[pair_idx][doc] {
                words.push(ItemId((pair_idx * 2) as u32));
                words.push(ItemId((pair_idx * 2 + 1) as u32));
            }
        }
        // Parity triple occupies ids n_planted-3 .. n_planted.
        let combo = parity_combo[doc];
        let (x, y) = (combo & 1 == 1, combo & 2 == 2);
        let base_id = (n_planted - 3) as u32;
        if x {
            words.push(ItemId(base_id));
        }
        if y {
            words.push(ItemId(base_id + 1));
        }
        if x == y {
            words.push(ItemId(base_id + 2));
        }
        // Filler text from this document's topic.
        let topic = rng.gen_range(0..params.n_topics);
        let tokens = rng.gen_range(params.min_tokens..=params.max_tokens);
        for _ in 0..tokens {
            let filler_rank = topic_samplers[topic].sample(&mut rng);
            words.push(ItemId((n_planted + filler_rank) as u32));
        }
        db.push_basket(words);
    }
    db.set_catalog(bmb_basket::ItemCatalog::from_names(names));

    // The paper's document-frequency pruning.
    let min_df = (params.df_threshold * n as f64).ceil() as u64;
    let (pruned, _) = db.filter_items(|_, count| count >= min_df);
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::{ContingencyTable, Itemset};
    use bmb_stats::Chi2Test;

    fn corpus() -> BasketDatabase {
        generate(&TextParams::default())
    }

    fn item(db: &BasketDatabase, word: &str) -> ItemId {
        db.catalog()
            .unwrap()
            .get(word)
            .unwrap_or_else(|| panic!("word {word} pruned from corpus"))
    }

    #[test]
    fn corpus_shape_mirrors_the_paper() {
        let db = corpus();
        assert_eq!(db.len(), 91);
        // "This left us with 416 distinct words" — we land in the same
        // regime (a few hundred post-prune words).
        assert!(
            db.n_items() >= 150 && db.n_items() <= 900,
            "post-prune vocabulary {} outside the paper's regime",
            db.n_items()
        );
    }

    #[test]
    fn df_pruning_holds() {
        let db = corpus();
        for i in 0..db.n_items() {
            let count = db.item_count(ItemId(i as u32));
            assert!(
                count * 10 >= 91,
                "item {i} survived pruning with df {count}/91"
            );
        }
    }

    #[test]
    fn planted_pairs_are_strongly_correlated() {
        let db = corpus();
        let test = Chi2Test::default();
        for (a, b) in planted_pairs() {
            let set = Itemset::from_items([item(&db, a), item(&db, b)]);
            let table = ContingencyTable::from_database(&db, &set);
            let outcome = test.test_dense(&table);
            assert!(
                outcome.significant && outcome.statistic > 20.0,
                "{a}/{b}: χ² = {}",
                outcome.statistic
            );
        }
    }

    #[test]
    fn parity_triple_is_minimal_three_way_correlation() {
        let db = corpus();
        let test = Chi2Test::default();
        let ids = [
            item(&db, PARITY_TRIPLE[0]),
            item(&db, PARITY_TRIPLE[1]),
            item(&db, PARITY_TRIPLE[2]),
        ];
        // Every pair: independent (statistic near zero by construction).
        for (x, y) in [(0, 1), (0, 2), (1, 2)] {
            let set = Itemset::from_items([ids[x], ids[y]]);
            let table = ContingencyTable::from_database(&db, &set);
            let outcome = test.test_dense(&table);
            assert!(
                !outcome.significant,
                "pair {x},{y} unexpectedly significant: χ² = {}",
                outcome.statistic
            );
        }
        // The triple: overwhelmingly significant.
        let set = Itemset::from_items(ids);
        let table = ContingencyTable::from_database(&db, &set);
        let outcome = test.test_dense(&table);
        assert!(
            outcome.significant && outcome.statistic > 50.0,
            "triple χ² = {}",
            outcome.statistic
        );
    }

    #[test]
    fn topic_structure_correlates_a_notable_share_of_pairs() {
        // The paper: "10% of all word pairs are correlated". Exact fractions
        // depend on the corpus; we assert a non-trivial share without
        // scanning all ~100k pairs — sample the first 40 items.
        let db = corpus();
        let test = Chi2Test::default();
        let mut total = 0usize;
        let mut correlated = 0usize;
        for a in 0..40u32.min(db.n_items() as u32) {
            for b in a + 1..40u32.min(db.n_items() as u32) {
                let set = Itemset::from_ids([a, b]);
                let table = ContingencyTable::from_database(&db, &set);
                if test.test_dense(&table).significant {
                    correlated += 1;
                }
                total += 1;
            }
        }
        let share = correlated as f64 / total as f64;
        assert!(
            share > 0.04 && share < 0.8,
            "correlated share {share} out of the plausible regime"
        );
    }

    #[test]
    fn documents_meet_length_floor() {
        let db = generate(&TextParams {
            df_threshold: 0.0,
            ..TextParams::default()
        });
        // Without pruning, each document's distinct-word basket reflects at
        // least a substantial portion of its >= 200 tokens.
        for basket in db.baskets() {
            assert!(
                basket.len() >= 50,
                "suspiciously short document: {}",
                basket.len()
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = corpus();
        let b = corpus();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.n_items(), b.n_items());
        for i in 0..a.len() {
            assert_eq!(a.basket(i), b.basket(i));
        }
    }

    #[test]
    fn different_seed_changes_corpus() {
        let a = corpus();
        let b = generate(&TextParams {
            seed: 999,
            ..TextParams::default()
        });
        let identical =
            a.n_items() == b.n_items() && (0..a.len()).all(|i| a.basket(i) == b.basket(i));
        assert!(!identical);
    }
}

//! Synthetic newsgroup corpus (substitute for clari.world.africa, Sept 1996).
//!
//! Section 5.2 of the paper mines 91 news articles of ≥ 200 words,
//! pruned to the 416 words occurring in at least 10% of documents. We do
//! not have the articles, so this module generates a corpus with the same
//! statistical anatomy:
//!
//! * a Zipfian vocabulary with topic structure, so that — as in the paper —
//!   on the order of 10% of word pairs end up correlated;
//! * *planted collocations* named after Table 4's strongest findings
//!   (nelson-mandela, liberia-west, area-province, deputy-director,
//!   members-minority), with activation counts fixed per corpus so the
//!   reproduction is deterministic;
//! * a *parity-planted triple* (burundi, commission, plan) that is 3-way
//!   correlated while every pair is independent — the "minimal correlated
//!   triple" phenomenon Table 4 reports (commission and plan alone are
//!   not correlated).

/// Corpus generation: topics, Zipfian filler, planted structure.
pub mod corpus;
/// Ordered token streams — the corpus with word order preserved.
pub mod sequences;

pub use corpus::{generate, planted_pairs, TextParams, PARITY_TRIPLE, PLANTED_PAIRS};
pub use sequences::{generate_sequences, SequenceCorpus};

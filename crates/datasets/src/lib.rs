//! # bmb-datasets — workload simulators
//!
//! The paper evaluates on three datasets we cannot redistribute: a 1990
//! census extract, 91 clari.world.africa news articles, and IBM Quest
//! synthetic data (the last lives in `bmb-quest`). This crate builds
//! statistically faithful substitutes:
//!
//! * [`census`] — a 2^10 joint distribution fitted by iterative
//!   proportional fitting to the paper's own published pairwise supports
//!   (Table 3), materialized as exactly 30,370 baskets; every pairwise χ²
//!   of Table 2 reproduces within rounding, with the identical 95%
//!   significance verdicts;
//! * [`text`] — a 91-document corpus with Zipfian topical vocabulary,
//!   planted Table 4 collocations, and a parity-planted minimal 3-way
//!   correlation;
//! * [`synth`] — the worked examples (tea/coffee, doughnuts) and generic
//!   null/planted generators for tests and benches.

#![warn(missing_docs)]

/// The census microdata simulator (the paper's Section 5.1 dataset).
pub mod census;
/// Small synthetic datasets: worked examples and generic generators.
pub mod synth;
/// Synthetic newsgroup corpus (the paper's Section 5.2 dataset).
pub mod text;

pub use census::expanded::expanded_census;
pub use census::{calibrate, census_catalog, generate as generate_census, paper_sample};
pub use synth::{doughnuts, independent, negative_pair, parity_triple, planted_pair, tea_coffee};
pub use text::{generate as generate_text, TextParams};

//! The census schema of the paper's Table 1: ten binarized attributes.

/// One binarized census attribute: the value when the item is *present*
/// and the value when it is *absent*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CensusAttribute {
    /// Short identifier, `i0` through `i9`.
    pub id: &'static str,
    /// The attribute when present (e.g. "drives alone").
    pub present: &'static str,
    /// The complementary values when absent (e.g. "does not drive, carpools").
    pub absent: &'static str,
}

/// The ten attributes exactly as printed in Table 1.
pub const CENSUS_ATTRIBUTES: [CensusAttribute; 10] = [
    CensusAttribute {
        id: "i0",
        present: "drives alone",
        absent: "does not drive, carpools",
    },
    CensusAttribute {
        id: "i1",
        present: "male or less than 3 children",
        absent: "3 or more children",
    },
    CensusAttribute {
        id: "i2",
        present: "never served in the military",
        absent: "veteran",
    },
    CensusAttribute {
        id: "i3",
        present: "native speaker of English",
        absent: "not a native speaker",
    },
    CensusAttribute {
        id: "i4",
        present: "not a U.S. citizen",
        absent: "U.S. citizen",
    },
    CensusAttribute {
        id: "i5",
        present: "born in the U.S.",
        absent: "born abroad",
    },
    CensusAttribute {
        id: "i6",
        present: "married",
        absent: "single, divorced, widowed",
    },
    CensusAttribute {
        id: "i7",
        present: "no more than 40 years old",
        absent: "more than 40 years old",
    },
    CensusAttribute {
        id: "i8",
        present: "male",
        absent: "female",
    },
    CensusAttribute {
        id: "i9",
        present: "householder",
        absent: "dependent, boarder, renter",
    },
];

/// Number of census items.
pub const N_CENSUS_ITEMS: usize = CENSUS_ATTRIBUTES.len();

/// The database size of the paper's experiments.
pub const CENSUS_N: usize = 30_370;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_attributes_with_stable_ids() {
        assert_eq!(N_CENSUS_ITEMS, 10);
        for (i, attr) in CENSUS_ATTRIBUTES.iter().enumerate() {
            assert_eq!(attr.id, format!("i{i}"));
            assert!(!attr.present.is_empty());
            assert!(!attr.absent.is_empty());
        }
    }

    #[test]
    fn paper_examples_reference_real_attributes() {
        // Example 4 mines military service (i2) against age (i7).
        assert_eq!(CENSUS_ATTRIBUTES[2].absent, "veteran");
        assert_eq!(CENSUS_ATTRIBUTES[7].present, "no more than 40 years old");
    }
}

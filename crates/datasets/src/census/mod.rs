//! The census microdata simulator (substitute for the paper's 1990 census
//! extract).
//!
//! Pipeline: the published pairwise supports ([`targets`]) feed an IPF fit
//! ([`ipf`]) of the full 2^10 joint distribution; [`generate`] materializes
//! it as exactly n = 30,370 baskets by largest-remainder rounding. All 45
//! pairwise contingency tables of the result match the paper's within
//! rounding, so Tables 2 and 3 and Examples 4–5 reproduce faithfully.

/// The *non-collapsed* census: multi-valued attributes.
pub mod expanded;
/// Iterative proportional fitting over a `2^k` joint distribution.
pub mod ipf;
/// The census schema of the paper's Table 1.
pub mod schema;
/// Calibration targets: the paper's published pairwise supports.
pub mod targets;

use bmb_basket::{BasketDatabase, ItemCatalog};

use ipf::{fit, IpfFit, PairConstraint};
use schema::{CENSUS_ATTRIBUTES, CENSUS_N, N_CENSUS_ITEMS};
use targets::PAIR_TARGETS;

/// Iterations used for the calibration fit (converges in well under this).
const IPF_ITERATIONS: usize = 150;

/// Runs the IPF calibration against the paper's 45 pair targets.
pub fn calibrate() -> IpfFit {
    let constraints: Vec<PairConstraint> = PAIR_TARGETS
        .iter()
        .map(|t| PairConstraint {
            a: t.a,
            b: t.b,
            cells: [
                t.percents[0] / 100.0,
                t.percents[1] / 100.0,
                t.percents[2] / 100.0,
                t.percents[3] / 100.0,
            ],
        })
        .collect();
    fit(N_CENSUS_ITEMS, &constraints, IPF_ITERATIONS, 1e-9)
}

/// Materializes a joint distribution as an integer-count database of
/// exactly `n` baskets using largest-remainder rounding, deterministically.
pub fn materialize(fit: &IpfFit, n: usize) -> BasketDatabase {
    let n_cells = fit.probabilities.len();
    let exact: Vec<f64> = fit.probabilities.iter().map(|&p| p * n as f64).collect();
    let mut counts: Vec<usize> = exact.iter().map(|&x| x.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    debug_assert!(assigned <= n);
    // Hand the leftover baskets to the cells with the largest remainders.
    let mut by_remainder: Vec<usize> = (0..n_cells).collect();
    by_remainder.sort_by(|&x, &y| {
        let rx = exact[x] - counts[x] as f64;
        let ry = exact[y] - counts[y] as f64;
        // Remainders are finite, but `total_cmp` stays a total order
        // (and panic-free) even if one were not.
        ry.total_cmp(&rx).then(x.cmp(&y))
    });
    for &cell in by_remainder.iter().take(n - assigned) {
        counts[cell] += 1;
    }
    let mut db = BasketDatabase::new(fit.k);
    for (cell, &count) in counts.iter().enumerate() {
        let items: Vec<u32> = (0..fit.k as u32).filter(|&i| cell >> i & 1 == 1).collect();
        for _ in 0..count {
            db.push_basket(items.iter().map(|&i| bmb_basket::ItemId(i)));
        }
    }
    db.set_catalog(census_catalog());
    db
}

/// The item catalog naming `i0..i9` by their Table 1 present-values.
pub fn census_catalog() -> ItemCatalog {
    ItemCatalog::from_names(CENSUS_ATTRIBUTES.iter().map(|a| a.present))
}

/// Generates the full simulated census database: 30,370 baskets over the
/// ten Table 1 items, calibrated to the paper's published statistics.
///
/// Deterministic: the same database every call.
pub fn generate() -> BasketDatabase {
    materialize(&calibrate(), CENSUS_N)
}

/// The 9-person sample of Table 1 (reconstructed).
///
/// The OCR of Table 1's basket listing is unreadable, so the sample is
/// reconstructed from every constraint the text states: persons 1 and 5
/// share the attribute pattern spelled out in the caption
/// (`{i1, i2, i3, i5, i7, i9}` — not driving alone, male-or-few-children,
/// never served, native speaker, citizen, born in the U.S., unmarried, at
/// most 40, female, householder), and the (i8, i9) contingency table of
/// Example 3 holds exactly: O(i8) = 5, O(i9) = 3, one basket with both,
/// two with i9 only, four with i8 only, two with neither.
pub fn paper_sample() -> BasketDatabase {
    let baskets: Vec<Vec<u32>> = vec![
        vec![1, 2, 3, 5, 7, 9],    // person 1 (i9, no i8)
        vec![0, 1, 2, 3, 5, 8, 9], // person 2 (both i8 and i9)
        vec![1, 2, 3, 5, 6, 7, 8], // person 3 (i8 only)
        vec![0, 1, 2, 3, 5, 8],    // person 4 (i8 only)
        vec![1, 2, 3, 5, 7, 9],    // person 5 = person 1
        vec![1, 2, 3, 4, 7, 8],    // person 6 (i8 only)
        vec![0, 1, 3, 5, 6, 8],    // person 7 (i8 only)
        vec![1, 2, 3, 5, 6, 7],    // person 8 (neither)
        vec![0, 1, 2, 5, 7],       // person 9 (neither)
    ];
    let mut db = BasketDatabase::from_id_baskets(N_CENSUS_ITEMS, baskets);
    db.set_catalog(census_catalog());
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::{ContingencyTable, ItemId, Itemset};
    use bmb_stats::Chi2Test;

    #[test]
    fn calibration_converges_to_rounding_floor() {
        let fit = calibrate();
        // The published targets are rounded to 0.1%, so the residual cannot
        // reach zero — but it must reach the rounding floor.
        assert!(
            fit.max_residual < 2.5e-3,
            "IPF residual {} too large",
            fit.max_residual
        );
        let total: f64 = fit.probabilities.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn generated_database_shape() {
        let db = generate();
        assert_eq!(db.len(), CENSUS_N);
        assert_eq!(db.n_items(), 10);
        assert_eq!(db.catalog().unwrap().len(), 10);
    }

    #[test]
    fn all_45_pairs_match_paper_significance() {
        let db = generate();
        let test = Chi2Test::default();
        for t in &PAIR_TARGETS {
            let set = Itemset::from_ids([t.a as u32, t.b as u32]);
            let table = ContingencyTable::from_database(&db, &set);
            let outcome = test.test_dense(&table);
            assert_eq!(
                outcome.significant,
                t.paper_significant(),
                "pair (i{}, i{}): χ² {:.2} vs paper {:.2}",
                t.a,
                t.b,
                outcome.statistic,
                t.paper_chi2
            );
            // Statistic within 12% + small absolute slack of the paper's.
            let tolerance = 0.12 * t.paper_chi2 + 6.0;
            assert!(
                (outcome.statistic - t.paper_chi2).abs() < tolerance,
                "pair (i{}, i{}): χ² {:.2} vs paper {:.2}",
                t.a,
                t.b,
                outcome.statistic,
                t.paper_chi2
            );
        }
    }

    #[test]
    fn example_4_military_age_reproduces() {
        // χ² for (i2, i7) is 2006.34 in the paper; the dominant dependence
        // is veteran-and-over-40 (both items absent).
        let db = generate();
        let set = Itemset::from_ids([2, 7]);
        let table = ContingencyTable::from_database(&db, &set);
        let outcome = Chi2Test::default().test_dense(&table);
        assert!(
            (outcome.statistic - 2006.34).abs() < 80.0,
            "χ² = {}",
            outcome.statistic
        );
        let report = bmb_stats::InterestReport::analyze(&table);
        assert_eq!(
            report.major_dependence().cell,
            0b00,
            "veteran ∧ over-40 must dominate"
        );
    }

    #[test]
    fn example_5_interest_values_reproduce() {
        // Paper's printed interests for (i2, i7): the veteran/over-40 cell
        // is strongly positive, 40-or-younger/veteran strongly negative
        // (0.44).
        let db = generate();
        let table = ContingencyTable::from_database(&db, &Itemset::from_ids([2, 7]));
        let report = bmb_stats::InterestReport::analyze(&table);
        // Cell (ī2, i7): veteran and young — bit0 = i2 absent, bit1 = i7 present.
        let negative = report.interest(0b10);
        assert!(
            (negative - 0.44).abs() < 0.06,
            "interest(veteran ∧ ≤40) = {negative}, paper says 0.44"
        );
        // Cell (ī2, ī7): veteran and over 40 — strongly positive.
        assert!(report.interest(0b00) > 1.5);
    }

    #[test]
    fn marginals_match_implied_targets() {
        let db = generate();
        for i in 0..10 {
            let implied = targets::implied_marginal(i);
            let got = db.item_frequency(ItemId(i as u32));
            assert!(
                (got - implied).abs() < 0.004,
                "item i{i}: marginal {got} vs implied {implied}"
            );
        }
    }

    #[test]
    fn paper_sample_satisfies_example_3() {
        let db = paper_sample();
        assert_eq!(db.len(), 9);
        assert_eq!(db.item_count(ItemId(8)), 5);
        assert_eq!(db.item_count(ItemId(9)), 3);
        let table = ContingencyTable::from_database(&db, &Itemset::from_ids([8, 9]));
        assert_eq!(table.observed(0b11), 1);
        assert_eq!(table.observed(0b10), 2); // i9 only
        assert_eq!(table.observed(0b01), 4); // i8 only
        assert_eq!(table.observed(0b00), 2);
        let outcome = Chi2Test::default().test_dense(&table);
        assert!((outcome.statistic - 0.900).abs() < 5e-4);
        assert!(!outcome.significant);
    }

    #[test]
    fn paper_sample_duplicate_persons() {
        // Persons 1 and 5 share their attributes, giving the count-2 cell
        // the Table 1 caption mentions.
        let db = paper_sample();
        assert_eq!(db.basket(0), db.basket(4));
    }

    #[test]
    fn materialize_small_n_is_exact() {
        let fit = calibrate();
        let db = materialize(&fit, 1000);
        assert_eq!(db.len(), 1000);
    }
}

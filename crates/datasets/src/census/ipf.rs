//! Iterative proportional fitting over a `2^k` joint distribution.
//!
//! Given pairwise cell-probability targets, IPF alternately rescales the
//! joint so each pair's four marginal cells match its targets. For
//! consistent targets it converges to the maximum-entropy joint with those
//! margins; for targets made slightly inconsistent by rounding (our case:
//! the paper's one-decimal percentages) it settles into a compromise whose
//! residual error we report.

/// One pairwise constraint: positions `(a, b)` among the `k` variables and
/// cell probabilities keyed `(a_present, b_present)` in the fixed order
/// `[(1,1), (0,1), (1,0), (0,0)]`.
#[derive(Clone, Copy, Debug)]
pub struct PairConstraint {
    /// First variable position.
    pub a: usize,
    /// Second variable position.
    pub b: usize,
    /// Cell probabilities `[p(ab), p(āb), p(ab̄), p(āb̄)]`.
    pub cells: [f64; 4],
}

impl PairConstraint {
    fn cell_index(a_present: bool, b_present: bool) -> usize {
        match (a_present, b_present) {
            (true, true) => 0,
            (false, true) => 1,
            (true, false) => 2,
            (false, false) => 3,
        }
    }
}

/// The fitted joint distribution.
#[derive(Clone, Debug)]
pub struct IpfFit {
    /// Number of binary variables.
    pub k: usize,
    /// `2^k` cell probabilities; cell index bit `i` = variable `i` present.
    pub probabilities: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Largest remaining |fitted − target| over all constraint cells.
    pub max_residual: f64,
}

impl IpfFit {
    /// The fitted marginal of one variable.
    pub fn marginal(&self, var: usize) -> f64 {
        self.probabilities
            .iter()
            .enumerate()
            .filter(|(cell, _)| cell >> var & 1 == 1)
            .map(|(_, &p)| p)
            .sum()
    }

    /// The fitted four-cell distribution of a pair, ordered
    /// `[p(ab), p(āb), p(ab̄), p(āb̄)]`.
    pub fn pair_cells(&self, a: usize, b: usize) -> [f64; 4] {
        let mut cells = [0.0f64; 4];
        for (cell, &p) in self.probabilities.iter().enumerate() {
            let idx = PairConstraint::cell_index(cell >> a & 1 == 1, cell >> b & 1 == 1);
            cells[idx] += p;
        }
        cells
    }
}

/// Runs IPF.
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds 24, if a constraint references a variable
/// out of range, or if any constraint cell is negative.
pub fn fit(
    k: usize,
    constraints: &[PairConstraint],
    max_iterations: usize,
    tolerance: f64,
) -> IpfFit {
    assert!(k > 0 && k <= 24, "k must be in 1..=24, got {k}");
    for c in constraints {
        assert!(
            c.a < k && c.b < k && c.a != c.b,
            "bad constraint positions ({}, {})",
            c.a,
            c.b
        );
        assert!(
            c.cells.iter().all(|&p| p >= 0.0),
            "negative target probability"
        );
    }
    let n_cells = 1usize << k;
    let mut f = vec![1.0 / n_cells as f64; n_cells];
    let mut iterations = 0;
    let mut max_residual = f64::INFINITY;
    while iterations < max_iterations && max_residual > tolerance {
        max_residual = 0.0;
        for c in constraints {
            // Current pair marginals.
            let mut current = [0.0f64; 4];
            for (cell, &p) in f.iter().enumerate() {
                current[PairConstraint::cell_index(cell >> c.a & 1 == 1, cell >> c.b & 1 == 1)] +=
                    p;
            }
            let mut scale = [0.0f64; 4];
            for i in 0..4 {
                max_residual = max_residual.max((current[i] - c.cells[i]).abs());
                scale[i] = if current[i] > 0.0 {
                    c.cells[i] / current[i]
                } else {
                    0.0
                };
            }
            for (cell, p) in f.iter_mut().enumerate() {
                *p *= scale[PairConstraint::cell_index(cell >> c.a & 1 == 1, cell >> c.b & 1 == 1)];
            }
        }
        iterations += 1;
    }
    // Renormalize the numerical dust so probabilities sum to exactly 1.
    let total: f64 = f.iter().sum();
    let renormalized = total > 0.0;
    if renormalized {
        for p in f.iter_mut() {
            *p /= total;
        }
    }
    let result = IpfFit {
        k,
        probabilities: f,
        iterations,
        max_residual,
    };
    if cfg!(debug_assertions) && renormalized {
        // Contracts: the joint is a probability distribution, and when
        // the loop exited by convergence every constraint's fitted cells
        // sit within the reported residual (plus renormalization dust).
        bmb_stats::contracts::assert_distribution("IPF joint", &result.probabilities, 1e-9);
        if max_residual <= tolerance {
            for c in constraints {
                let fitted = result.pair_cells(c.a, c.b);
                for (cell, (&got, &want)) in fitted.iter().zip(&c.cells).enumerate() {
                    bmb_stats::contracts::assert_close(
                        &format!("IPF pair ({}, {}) cell {cell}", c.a, c.b),
                        got,
                        want,
                        tolerance * 100.0 + 1e-9,
                    );
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Consistent 2-variable problem: IPF must hit it exactly.
    #[test]
    fn exact_fit_for_single_pair() {
        let constraint = PairConstraint {
            a: 0,
            b: 1,
            cells: [0.2, 0.7, 0.05, 0.05],
        };
        let fit = fit(2, &[constraint], 100, 1e-12);
        assert!(fit.max_residual < 1e-12);
        let cells = fit.pair_cells(0, 1);
        for (got, want) in cells.iter().zip(constraint.cells) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    /// Independence targets produce a product distribution.
    #[test]
    fn independent_targets_give_product_form() {
        // Three variables, all pairs independent with p = 0.3, 0.5, 0.8.
        let p = [0.3, 0.5, 0.8];
        let mut constraints = Vec::new();
        for a in 0..3 {
            for b in a + 1..3 {
                constraints.push(PairConstraint {
                    a,
                    b,
                    cells: [
                        p[a] * p[b],
                        (1.0 - p[a]) * p[b],
                        p[a] * (1.0 - p[b]),
                        (1.0 - p[a]) * (1.0 - p[b]),
                    ],
                });
            }
        }
        let fit = fit(3, &constraints, 200, 1e-12);
        for (cell, &prob) in fit.probabilities.iter().enumerate() {
            let mut expected = 1.0;
            for (v, &pv) in p.iter().enumerate() {
                expected *= if cell >> v & 1 == 1 { pv } else { 1.0 - pv };
            }
            assert!(
                (prob - expected).abs() < 1e-9,
                "cell {cell}: {prob} vs product {expected}"
            );
        }
    }

    #[test]
    fn marginals_match_constraints() {
        let constraint = PairConstraint {
            a: 0,
            b: 2,
            cells: [0.1, 0.3, 0.2, 0.4],
        };
        let fit = fit(3, &[constraint], 100, 1e-12);
        assert!((fit.marginal(0) - 0.3).abs() < 1e-9); // 0.1 + 0.2
        assert!((fit.marginal(2) - 0.4).abs() < 1e-9); // 0.1 + 0.3
        let total: f64 = fit.probabilities.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cells_stay_zero() {
        let constraint = PairConstraint {
            a: 0,
            b: 1,
            cells: [0.0, 0.6, 0.2, 0.2],
        };
        let fit = fit(2, &[constraint], 100, 1e-12);
        let cells = fit.pair_cells(0, 1);
        assert_eq!(cells[0], 0.0);
    }

    #[test]
    fn inconsistent_targets_reach_a_compromise() {
        // Two constraints disagree about variable 0's marginal (0.3 vs 0.4);
        // IPF oscillates but stays bounded, and the residual reports it.
        let c1 = PairConstraint {
            a: 0,
            b: 1,
            cells: [0.15, 0.35, 0.15, 0.35],
        };
        let c2 = PairConstraint {
            a: 0,
            b: 2,
            cells: [0.2, 0.3, 0.2, 0.3],
        };
        let fit = fit(3, &[c1, c2], 500, 1e-12);
        assert!(
            fit.max_residual > 1e-6,
            "inconsistency must show in the residual"
        );
        assert!(
            fit.max_residual < 0.12,
            "residual should stay near the disagreement"
        );
        let m0 = fit.marginal(0);
        assert!(
            m0 > 0.28 && m0 < 0.42,
            "marginal {m0} should sit between the claims"
        );
    }

    #[test]
    #[should_panic(expected = "bad constraint positions")]
    fn out_of_range_constraint_panics() {
        fit(
            2,
            &[PairConstraint {
                a: 0,
                b: 5,
                cells: [0.25; 4],
            }],
            10,
            1e-6,
        );
    }
}

//! The *non-collapsed* census: multi-valued attributes.
//!
//! Section 5.1 closes with an open question the binary collapse cannot
//! answer: "Does this imply that non-married people tend to carpool more
//! often than married folk? Or is the data skewed because children cannot
//! drive and also tend not to be married? Because we have collapsed the
//! answers 'does not drive' and 'carpools,' we cannot answer this
//! question. A non-collapsed chi-squared table, with more than two rows
//! and columns, could find finer-grained dependency."
//!
//! This module builds that non-collapsed table: it refines the simulated
//! binary census into categorical attributes — commute in three values,
//! age in three bands — *planting* the paper's hypothesized confounder
//! (minors do not drive and are not married) so the multinomial analysis
//! can be seen resolving the question the binary analysis could not.

use bmb_basket::categorical::{Attribute, CategoricalData};
use bmb_basket::ItemId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Value indexes of the `commute` attribute.
pub mod commute {
    /// Drives alone (the binary item i0).
    pub const DRIVES_ALONE: u16 = 0;
    /// Carpools.
    pub const CARPOOLS: u16 = 1;
    /// Does not drive.
    pub const DOES_NOT_DRIVE: u16 = 2;
}

/// Value indexes of the `age` attribute.
pub mod age {
    /// Under 18 (a minor).
    pub const UNDER_18: u16 = 0;
    /// 18 to 40 — with UNDER_18 this partitions the binary i7.
    pub const ADULT_TO_40: u16 = 1;
    /// Over 40 (the binary ī7).
    pub const OVER_40: u16 = 2;
}

/// Positions of the four attributes in the expanded schema.
pub mod attr {
    /// commute: drives alone / carpools / does not drive.
    pub const COMMUTE: usize = 0;
    /// marital: married / single.
    pub const MARITAL: usize = 1;
    /// age: under 18 / 18–40 / over 40.
    pub const AGE: usize = 2;
    /// military: never served / veteran.
    pub const MILITARY: usize = 3;
}

/// The expanded schema.
pub fn expanded_schema() -> Vec<Attribute> {
    vec![
        Attribute::new("commute", ["drives alone", "carpools", "does not drive"]),
        Attribute::new("marital", ["married", "single/div/widowed"]),
        Attribute::new("age", ["under 18", "18-40", "over 40"]),
        Attribute::new("military", ["never served", "veteran"]),
    ]
}

/// Builds the expanded categorical census from the binary simulation.
///
/// Refinement rules (seeded, deterministic):
///
/// * a non-driving (ī0), unmarried, ≤40 record is a *minor* with
///   probability 0.45 — minors never drive and are never married, the
///   planted confounder;
/// * other ≤40 records are minors with probability 0.04;
/// * non-driving adults split carpools/does-not-drive 70/30, independent
///   of marital status — so in this simulated world the answer to the
///   paper's question is "it was the children": among *adults*, commuting
///   mode carries (almost) no extra marital signal.
pub fn expanded_census(seed: u64) -> CategoricalData {
    let db = super::generate();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = CategoricalData::new(expanded_schema());
    for index in 0..db.len() {
        let basket = db.basket(index);
        let has = |i: u32| basket.binary_search(&ItemId(i)).is_ok();
        let drives_alone = has(0);
        let married = has(6);
        let at_most_40 = has(7);
        let never_served = has(2);

        // Age refinement with the planted confounder.
        let minor = at_most_40 && !married && !drives_alone && rng.gen_bool(0.45)
            || (at_most_40 && rng.gen_bool(0.04));
        let age_value = if !at_most_40 {
            age::OVER_40
        } else if minor {
            age::UNDER_18
        } else {
            age::ADULT_TO_40
        };

        // Commute refinement: minors never drive; non-driving adults split
        // 70/30 carpool/no-drive independent of marriage.
        let commute_value = if drives_alone && age_value != age::UNDER_18 {
            commute::DRIVES_ALONE
        } else if age_value == age::UNDER_18 {
            commute::DOES_NOT_DRIVE
        } else if rng.gen_bool(0.7) {
            commute::CARPOOLS
        } else {
            commute::DOES_NOT_DRIVE
        };

        let marital_value = if married && age_value != age::UNDER_18 {
            0u16
        } else {
            1u16
        };
        let military_value = u16::from(!never_served);
        data.push_record(&[commute_value, marital_value, age_value, military_value]);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_stats::{cramers_v_categorical, Chi2Test};

    fn data() -> CategoricalData {
        expanded_census(1997)
    }

    #[test]
    fn shape_matches_binary_census() {
        let d = data();
        assert_eq!(d.len(), 30_370);
        assert_eq!(d.attributes().len(), 4);
        assert_eq!(d.attributes()[attr::COMMUTE].cardinality(), 3);
        assert_eq!(d.attributes()[attr::AGE].cardinality(), 3);
    }

    #[test]
    fn minors_never_drive_or_marry() {
        let d = data();
        for i in 0..d.len() {
            let record = d.record(i);
            if record[attr::AGE] == age::UNDER_18 {
                assert_eq!(record[attr::COMMUTE], commute::DOES_NOT_DRIVE);
                assert_eq!(record[attr::MARITAL], 1, "minor marked married");
            }
        }
    }

    #[test]
    fn non_collapsed_table_localizes_the_dependence() {
        // The paper's question: is commute×marital dependence about
        // carpooling or about children? In the expanded table the
        // under-18 × does-not-drive cell dominates commute×age, and
        // the commute×marital association weakens once age is the finer
        // lens — measured by Cramér's V.
        let d = data();
        let test = Chi2Test::default();
        let commute_marital = d.contingency(&[attr::COMMUTE, attr::MARITAL]);
        let commute_age = d.contingency(&[attr::COMMUTE, attr::AGE]);
        let out_cm = test.test_categorical(&commute_marital);
        let out_ca = test.test_categorical(&commute_age);
        assert!(out_cm.significant && out_ca.significant);
        let v_cm = cramers_v_categorical(&commute_marital);
        let v_ca = cramers_v_categorical(&commute_age);
        assert!(
            v_ca > v_cm,
            "age should carry the stronger commute association: V(age) = {v_ca}, V(marital) = {v_cm}"
        );
    }

    #[test]
    fn degrees_of_freedom_follow_appendix_a() {
        let d = data();
        let t = d.contingency(&[attr::COMMUTE, attr::AGE]);
        assert_eq!(t.degrees_of_freedom(), 4); // (3−1)(3−1)
        let out = Chi2Test::default().test_categorical(&t);
        assert_eq!(out.df, 4.0);
        assert!((out.cutoff - 9.488).abs() < 5e-3);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = expanded_census(7);
        let b = expanded_census(7);
        for i in 0..50 {
            assert_eq!(a.record(i), b.record(i));
        }
        let c = expanded_census(8);
        let differs = (0..a.len()).any(|i| a.record(i) != c.record(i));
        assert!(differs);
    }
}

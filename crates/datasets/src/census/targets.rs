//! Calibration targets: the paper's published pairwise cell supports.
//!
//! Table 3 of the paper prints, for all 45 census item pairs, the supports
//! of the four contingency cells as percentages of n = 30,370. Those
//! numbers pin down every pairwise joint distribution of the original 1990
//! census extract, which we do not have; fitting a 2^10 joint to them by
//! iterative proportional fitting recovers a dataset statistically
//! indistinguishable from the paper's at the pair level (and
//! maximum-entropy beyond it).
//!
//! One refinement: the published values are rounded to a single decimal,
//! and for the borderline pair (i0, i4) that rounding flips the 95%
//! significance verdict (χ² 2.6 vs the paper's 4.57, cutoff 3.84). For
//! that pair we use values inside the rounding interval chosen to
//! reproduce the published χ² — (1.07, 5.55, 16.86, 76.52) gives 4.568.

/// Pairwise target: items `(a, b)` with cell percentages in the paper's
/// column order `[s(ab), s(āb), s(ab̄), s(āb̄)]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairTarget {
    /// First item index.
    pub a: usize,
    /// Second item index.
    pub b: usize,
    /// Cell percentages `[ab, āb, ab̄, āb̄]`, summing to ≈100.
    pub percents: [f64; 4],
    /// The χ² value Table 2 prints for this pair.
    pub paper_chi2: f64,
}

impl PairTarget {
    /// Cell probabilities keyed by `(a_present, b_present)`.
    pub fn probability(&self, a_present: bool, b_present: bool) -> f64 {
        let idx = match (a_present, b_present) {
            (true, true) => 0,
            (false, true) => 1,
            (true, false) => 2,
            (false, false) => 3,
        };
        self.percents[idx] / 100.0
    }

    /// Whether Table 2 bolds this pair (χ² >= 3.84 at 95%).
    pub fn paper_significant(&self) -> bool {
        self.paper_chi2 >= 3.84
    }
}

/// All 45 pair targets in Table 2/3 row order.
pub const PAIR_TARGETS: [PairTarget; 45] = [
    PairTarget {
        a: 0,
        b: 1,
        percents: [16.6, 73.6, 1.4, 8.5],
        paper_chi2: 37.15,
    },
    PairTarget {
        a: 0,
        b: 2,
        percents: [15.0, 74.3, 3.0, 7.7],
        paper_chi2: 244.47,
    },
    PairTarget {
        a: 0,
        b: 3,
        percents: [16.0, 72.9, 1.9, 9.2],
        paper_chi2: 0.94,
    },
    // Refined within the rounding interval; see module docs.
    PairTarget {
        a: 0,
        b: 4,
        percents: [1.07, 5.55, 16.86, 76.52],
        paper_chi2: 4.57,
    },
    PairTarget {
        a: 0,
        b: 5,
        percents: [16.1, 73.5, 1.9, 8.5],
        paper_chi2: 0.05,
    },
    PairTarget {
        a: 0,
        b: 6,
        percents: [7.1, 18.1, 10.8, 64.0],
        paper_chi2: 737.18,
    },
    PairTarget {
        a: 0,
        b: 7,
        percents: [9.7, 51.9, 8.2, 30.2],
        paper_chi2: 153.11,
    },
    PairTarget {
        a: 0,
        b: 8,
        percents: [9.6, 36.7, 8.3, 45.3],
        paper_chi2: 138.13,
    },
    PairTarget {
        a: 0,
        b: 9,
        percents: [10.3, 30.5, 7.7, 51.6],
        paper_chi2: 746.20,
    },
    PairTarget {
        a: 1,
        b: 2,
        percents: [79.6, 9.7, 10.6, 0.1],
        paper_chi2: 296.55,
    },
    PairTarget {
        a: 1,
        b: 3,
        percents: [79.9, 9.0, 10.3, 0.8],
        paper_chi2: 24.00,
    },
    PairTarget {
        a: 1,
        b: 4,
        percents: [6.0, 0.6, 84.2, 9.2],
        paper_chi2: 1.60,
    },
    PairTarget {
        a: 1,
        b: 5,
        percents: [80.7, 8.9, 9.5, 1.0],
        paper_chi2: 1.70,
    },
    PairTarget {
        a: 1,
        b: 6,
        percents: [21.3, 3.9, 68.9, 6.0],
        paper_chi2: 352.31,
    },
    PairTarget {
        a: 1,
        b: 7,
        percents: [59.3, 2.3, 30.9, 7.5],
        paper_chi2: 2010.07,
    },
    PairTarget {
        a: 1,
        b: 8,
        percents: [46.3, 0.0, 43.8, 9.8],
        paper_chi2: 2855.73,
    },
    PairTarget {
        a: 1,
        b: 9,
        percents: [35.5, 5.3, 54.7, 4.6],
        paper_chi2: 229.07,
    },
    PairTarget {
        a: 2,
        b: 3,
        percents: [78.9, 10.0, 10.4, 0.7],
        paper_chi2: 82.02,
    },
    PairTarget {
        a: 2,
        b: 4,
        percents: [6.5, 0.1, 82.8, 10.6],
        paper_chi2: 190.71,
    },
    PairTarget {
        a: 2,
        b: 5,
        percents: [79.3, 10.3, 10.0, 0.4],
        paper_chi2: 176.05,
    },
    PairTarget {
        a: 2,
        b: 6,
        percents: [20.1, 5.1, 69.2, 5.6],
        paper_chi2: 993.31,
    },
    PairTarget {
        a: 2,
        b: 7,
        percents: [58.9, 2.7, 30.4, 8.0],
        paper_chi2: 2006.34,
    },
    PairTarget {
        a: 2,
        b: 8,
        percents: [36.5, 9.9, 52.9, 0.8],
        paper_chi2: 3099.38,
    },
    PairTarget {
        a: 2,
        b: 9,
        percents: [33.9, 6.9, 55.4, 3.8],
        paper_chi2: 819.90,
    },
    PairTarget {
        a: 3,
        b: 4,
        percents: [1.6, 5.0, 87.3, 6.1],
        paper_chi2: 9130.58,
    },
    PairTarget {
        a: 3,
        b: 5,
        percents: [85.4, 4.2, 3.4, 7.0],
        paper_chi2: 11119.28,
    },
    PairTarget {
        a: 3,
        b: 6,
        percents: [21.6, 3.6, 67.3, 7.5],
        paper_chi2: 110.31,
    },
    PairTarget {
        a: 3,
        b: 7,
        percents: [54.1, 7.6, 34.8, 3.6],
        paper_chi2: 62.22,
    },
    PairTarget {
        a: 3,
        b: 8,
        percents: [40.8, 5.6, 48.1, 5.6],
        paper_chi2: 21.41,
    },
    PairTarget {
        a: 3,
        b: 9,
        percents: [36.2, 4.5, 52.6, 6.6],
        paper_chi2: 0.10,
    },
    PairTarget {
        a: 4,
        b: 5,
        percents: [0.0, 89.6, 6.6, 3.8],
        paper_chi2: 18504.81,
    },
    PairTarget {
        a: 4,
        b: 6,
        percents: [2.5, 22.7, 4.1, 70.7],
        paper_chi2: 189.66,
    },
    PairTarget {
        a: 4,
        b: 7,
        percents: [4.7, 57.0, 1.9, 36.4],
        paper_chi2: 76.04,
    },
    PairTarget {
        a: 4,
        b: 8,
        percents: [3.3, 43.0, 3.3, 50.4],
        paper_chi2: 14.48,
    },
    PairTarget {
        a: 4,
        b: 9,
        percents: [2.6, 38.2, 4.0, 55.2],
        paper_chi2: 3.27,
    },
    PairTarget {
        a: 5,
        b: 6,
        percents: [21.2, 4.0, 68.4, 6.4],
        paper_chi2: 312.15,
    },
    PairTarget {
        a: 5,
        b: 7,
        percents: [54.9, 6.7, 34.6, 3.7],
        paper_chi2: 10.62,
    },
    PairTarget {
        a: 5,
        b: 8,
        percents: [41.2, 5.1, 48.4, 5.3],
        paper_chi2: 12.95,
    },
    PairTarget {
        a: 5,
        b: 9,
        percents: [36.4, 4.4, 53.2, 6.0],
        paper_chi2: 2.50,
    },
    PairTarget {
        a: 6,
        b: 7,
        percents: [9.0, 52.7, 16.2, 22.2],
        paper_chi2: 2913.05,
    },
    PairTarget {
        a: 6,
        b: 8,
        percents: [12.7, 33.6, 12.5, 41.2],
        paper_chi2: 66.49,
    },
    PairTarget {
        a: 6,
        b: 9,
        percents: [11.9, 28.8, 13.3, 46.0],
        paper_chi2: 186.28,
    },
    PairTarget {
        a: 7,
        b: 8,
        percents: [29.9, 16.4, 31.7, 22.0],
        paper_chi2: 98.63,
    },
    PairTarget {
        a: 7,
        b: 9,
        percents: [16.1, 24.6, 45.5, 13.8],
        paper_chi2: 4285.29,
    },
    PairTarget {
        a: 8,
        b: 9,
        percents: [19.4, 21.4, 27.0, 32.3],
        paper_chi2: 12.40,
    },
];

/// Looks up the target for an unordered item pair.
pub fn target_for(a: usize, b: usize) -> Option<&'static PairTarget> {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    PAIR_TARGETS.iter().find(|t| t.a == lo && t.b == hi)
}

/// The marginal probability of item `i` implied by its targets (averaged
/// over the nine rows mentioning it, smoothing the rounding noise).
pub fn implied_marginal(i: usize) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for t in &PAIR_TARGETS {
        if t.a == i {
            total += t.probability(true, true) + t.probability(true, false);
            count += 1;
        } else if t.b == i {
            total += t.probability(true, true) + t.probability(false, true);
            count += 1;
        }
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_45_pairs_present_exactly_once() {
        assert_eq!(PAIR_TARGETS.len(), 45);
        for a in 0..10 {
            for b in a + 1..10 {
                let hits = PAIR_TARGETS.iter().filter(|t| t.a == a && t.b == b).count();
                assert_eq!(hits, 1, "pair ({a},{b})");
            }
        }
    }

    #[test]
    fn rows_sum_to_one_hundred() {
        for t in &PAIR_TARGETS {
            let sum: f64 = t.percents.iter().sum();
            assert!(
                (sum - 100.0).abs() < 0.35,
                "pair ({},{}) sums to {sum}",
                t.a,
                t.b
            );
        }
    }

    #[test]
    fn targets_reproduce_paper_chi2() {
        // Direct χ² from the printed percentages at n = 30,370 must sit
        // close to Table 2 — within rounding noise, and never flipping the
        // 95% verdict.
        let n = 30_370.0;
        for t in &PAIR_TARGETS {
            let pa = t.probability(true, true) + t.probability(true, false);
            let pb = t.probability(true, true) + t.probability(false, true);
            let mut chi2 = 0.0;
            for (a_p, b_p) in [(true, true), (false, true), (true, false), (false, false)] {
                let o = t.probability(a_p, b_p);
                let e = (if a_p { pa } else { 1.0 - pa }) * (if b_p { pb } else { 1.0 - pb });
                if e > 0.0 {
                    chi2 += n * (o - e) * (o - e) / e;
                }
            }
            assert_eq!(
                chi2 >= 3.84,
                t.paper_significant(),
                "significance flip for ({},{}): computed {chi2:.2}, paper {}",
                t.a,
                t.b,
                t.paper_chi2
            );
            let tolerance = 0.12 * t.paper_chi2 + 5.0;
            assert!(
                (chi2 - t.paper_chi2).abs() < tolerance,
                "pair ({},{}): computed {chi2:.2} vs paper {:.2}",
                t.a,
                t.b,
                t.paper_chi2
            );
        }
    }

    #[test]
    fn marginals_are_consistent_across_rows() {
        // Each item appears in 9 rows; the implied marginals must agree to
        // within the rounding budget.
        for i in 0..10 {
            let avg = implied_marginal(i);
            for t in &PAIR_TARGETS {
                let from_row = if t.a == i {
                    t.probability(true, true) + t.probability(true, false)
                } else if t.b == i {
                    t.probability(true, true) + t.probability(false, true)
                } else {
                    continue;
                };
                assert!(
                    (from_row - avg).abs() < 0.004,
                    "item {i}: row ({},{}) gives {from_row}, average {avg}",
                    t.a,
                    t.b
                );
            }
        }
    }

    #[test]
    fn impossible_cells_are_zero() {
        // (i1̄ ∧ i8): 3+ children and male; (i4 ∧ i5): non-citizen born in
        // the U.S. — the paper calls these out as interest-0 cells.
        assert_eq!(target_for(1, 8).unwrap().probability(false, true), 0.0);
        assert_eq!(target_for(4, 5).unwrap().probability(true, true), 0.0);
    }

    #[test]
    fn lookup_is_order_insensitive() {
        assert_eq!(target_for(7, 2), target_for(2, 7));
        assert!(target_for(3, 3).is_none());
    }
}

//! Small synthetic datasets: the paper's worked examples plus generic
//! generators for tests and benches.

use bmb_basket::{BasketDatabase, ItemId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Example 1's grocery data: 100 baskets over {tea = 0, coffee = 1} with
/// cells t∧c = 20, t∧c̄ = 5, t̄∧c = 70, t̄∧c̄ = 5 (in percent = counts).
///
/// The rule `tea ⇒ coffee` has support 20% and confidence 80%, yet tea and
/// coffee are *negatively* correlated (dependence 0.89).
pub fn tea_coffee() -> BasketDatabase {
    let mut baskets = Vec::with_capacity(100);
    for _ in 0..20 {
        baskets.push(vec!["tea", "coffee"]);
    }
    for _ in 0..5 {
        baskets.push(vec!["tea"]);
    }
    for _ in 0..70 {
        baskets.push(vec!["coffee"]);
    }
    for _ in 0..5 {
        baskets.push(vec![]);
    }
    BasketDatabase::from_named_baskets(baskets)
}

/// Example 2's data: coffee, tea, doughnuts with `P[c] = 93`, `P[c∧d] = 48`,
/// `P[t∧c] = 18`, `P[t∧c∧d] = 8` — the confidence non-closure example
/// (`c ⇒ d` confident, `c,t ⇒ d` not).
pub fn doughnuts() -> BasketDatabase {
    let cells: [(&[&str], usize); 7] = [
        (&["coffee", "tea", "doughnut"], 8),
        (&["tea", "doughnut"], 2),
        (&["coffee", "doughnut"], 40),
        (&["doughnut"], 10),
        (&["coffee", "tea"], 10),
        (&["tea"], 5),
        (&["coffee"], 35),
    ];
    let mut baskets: Vec<Vec<&str>> = Vec::new();
    for (items, count) in cells {
        for _ in 0..count {
            baskets.push(items.to_vec());
        }
    }
    BasketDatabase::from_named_baskets(baskets)
}

/// Fully independent items: each of `k` items appears in each of `n`
/// baskets with probability `p`, independently. The null model — a
/// correctly calibrated miner should flag ≈ α of itemsets as correlated.
pub fn independent(n: usize, k: usize, p: f64, seed: u64) -> BasketDatabase {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = BasketDatabase::new(k);
    for _ in 0..n {
        db.push_basket((0..k as u32).filter(|_| rng.gen_bool(p)).map(ItemId));
    }
    db
}

/// Items 0 and 1 planted to co-occur: item 0 appears with probability `p`,
/// item 1 copies item 0 with probability `copy` (else independent at `p`).
/// Remaining items are independent noise at `p`.
pub fn planted_pair(n: usize, k: usize, p: f64, copy: f64, seed: u64) -> BasketDatabase {
    assert!(k >= 2, "need at least the two planted items");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = BasketDatabase::new(k);
    for _ in 0..n {
        let mut basket: Vec<ItemId> = Vec::new();
        let zero = rng.gen_bool(p);
        if zero {
            basket.push(ItemId(0));
        }
        let one = if rng.gen_bool(copy) {
            zero
        } else {
            rng.gen_bool(p)
        };
        if one {
            basket.push(ItemId(1));
        }
        for i in 2..k as u32 {
            if rng.gen_bool(p) {
                basket.push(ItemId(i));
            }
        }
        db.push_basket(basket);
    }
    db
}

/// The parity construction over items {0, 1, 2}: items 0 and 1 take each
/// of the four presence combinations in strict rotation; item 2 appears iff
/// they agree. Every pair is exactly independent; the triple is maximally
/// 3-way dependent. Items `3..k` are empty noise columns.
///
/// This is the canonical "minimal correlated itemset at level 3" — the
/// miner must *not* report any pair, and must report `{0,1,2}`.
pub fn parity_triple(n: usize, k: usize) -> BasketDatabase {
    assert!(k >= 3, "need at least the three parity items");
    let mut db = BasketDatabase::new(k);
    for row in 0..n {
        let combo = row % 4;
        let (x, y) = (combo & 1 == 1, combo & 2 == 2);
        let mut basket: Vec<ItemId> = Vec::new();
        if x {
            basket.push(ItemId(0));
        }
        if y {
            basket.push(ItemId(1));
        }
        if x == y {
            basket.push(ItemId(2));
        }
        db.push_basket(basket);
    }
    db
}

/// An anti-correlated pair: items 0 and 1 (almost) never co-occur though
/// both are common — the "batteries and cat food" negative-implication
/// example from the paper's introduction.
pub fn negative_pair(n: usize, p: f64, seed: u64) -> BasketDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = BasketDatabase::new(2);
    for _ in 0..n {
        // Choose one of the two with probability p each, never both.
        let roll: f64 = rng.gen_range(0.0..1.0);
        if roll < p {
            db.push_basket([ItemId(0)]);
        } else if roll < 2.0 * p {
            db.push_basket([ItemId(1)]);
        } else {
            db.push_basket([]);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::{ContingencyTable, Itemset};
    use bmb_stats::{dependence_ratio, Chi2Test};

    #[test]
    fn tea_coffee_matches_example_1() {
        let db = tea_coffee();
        assert_eq!(db.len(), 100);
        let tea = db.catalog().unwrap().get("tea").unwrap();
        let coffee = db.catalog().unwrap().get("coffee").unwrap();
        assert_eq!(db.item_count(tea), 25);
        assert_eq!(db.item_count(coffee), 90);
        let counter = bmb_basket::ScanCounter::new(&db);
        use bmb_basket::SupportCounter;
        let both = counter.support_count(&[tea, coffee]);
        assert_eq!(both, 20);
        let dep = dependence_ratio(100, 25, 90, 20).unwrap();
        assert!((dep - 0.888_888).abs() < 1e-5);
    }

    #[test]
    fn doughnuts_matches_example_2() {
        let db = doughnuts();
        let c = db.catalog().unwrap().get("coffee").unwrap();
        let d = db.catalog().unwrap().get("doughnut").unwrap();
        let t = db.catalog().unwrap().get("tea").unwrap();
        use bmb_basket::SupportCounter;
        let counter = bmb_basket::ScanCounter::new(&db);
        assert_eq!(counter.support_count(&[c]), 93);
        assert_eq!(counter.support_count(&[c, d]), 48);
        assert_eq!(counter.support_count(&[t, c]), 18);
        assert_eq!(counter.support_count(&[t, c, d]), 8);
    }

    #[test]
    fn independent_data_rarely_correlates() {
        let db = independent(5000, 8, 0.3, 42);
        let test = Chi2Test::default();
        let mut significant = 0usize;
        let mut total = 0usize;
        for a in 0..8u32 {
            for b in a + 1..8 {
                let table = ContingencyTable::from_database(&db, &Itemset::from_ids([a, b]));
                if test.test_dense(&table).significant {
                    significant += 1;
                }
                total += 1;
            }
        }
        // 28 pairs at α = 0.95: expect ≈ 1.4 false positives; allow a few.
        assert!(
            significant <= 5,
            "{significant}/{total} pairs significant on independent data"
        );
    }

    #[test]
    fn planted_pair_is_detected() {
        let db = planted_pair(2000, 5, 0.3, 0.8, 7);
        let test = Chi2Test::default();
        let planted = ContingencyTable::from_database(&db, &Itemset::from_ids([0, 1]));
        assert!(test.test_dense(&planted).statistic > 100.0);
        let noise = ContingencyTable::from_database(&db, &Itemset::from_ids([2, 3]));
        assert!(!test.test_dense(&noise).significant);
    }

    #[test]
    fn parity_triple_structure() {
        let db = parity_triple(400, 4);
        let test = Chi2Test::default();
        for (a, b) in [(0u32, 1u32), (0, 2), (1, 2)] {
            let table = ContingencyTable::from_database(&db, &Itemset::from_ids([a, b]));
            let stat = test.test_dense(&table).statistic;
            assert!(stat < 1e-9, "pair ({a},{b}) has χ² = {stat}, expected 0");
        }
        let triple = ContingencyTable::from_database(&db, &Itemset::from_ids([0, 1, 2]));
        let outcome = test.test_dense(&triple);
        assert!(
            (outcome.statistic - 400.0).abs() < 1e-6,
            "χ² = {}",
            outcome.statistic
        );
        assert!(outcome.significant);
    }

    #[test]
    fn negative_pair_never_co_occurs() {
        let db = negative_pair(1000, 0.4, 3);
        use bmb_basket::SupportCounter;
        let counter = bmb_basket::ScanCounter::new(&db);
        assert_eq!(counter.support_count(&[ItemId(0), ItemId(1)]), 0);
        let table = ContingencyTable::from_database(&db, &Itemset::from_ids([0, 1]));
        let outcome = Chi2Test::default().test_dense(&table);
        assert!(
            outcome.significant,
            "strong negative correlation must be flagged"
        );
        let report = bmb_stats::InterestReport::analyze(&table);
        assert_eq!(
            report.interest(0b11),
            0.0,
            "co-occurrence cell is impossible"
        );
    }
}

//! The PCY (Park–Chen–Yu) hash-bucket refinement for pair counting.
//!
//! The paper compares its hash-table construction to "the hash-based
//! algorithm of Park, Chen, and Yu" and notes the key difference: PCY's
//! buckets *allow collisions* — several pairs share a counter, so a bucket
//! below threshold proves all of its pairs infrequent, while a bucket above
//! threshold proves nothing. Collisions "reduce the effectiveness of
//! pruning \[but\] do not affect the final result". This module implements
//! the classic two-pass pair miner: pass 1 counts items and hashes every
//! pair of every basket into a bucket array; pass 2 counts only candidate
//! pairs whose items are frequent *and* whose bucket is frequent.

use std::collections::HashMap;

use bmb_basket::{BasketDatabase, ItemId, Itemset};

use crate::apriori::{FrequentItemset, MinSupport};

/// Result of a PCY run, with pruning diagnostics.
#[derive(Clone, Debug)]
pub struct PcyResult {
    /// Frequent pairs with exact counts, sorted.
    pub frequent_pairs: Vec<FrequentItemset>,
    /// Number of pairs of frequent items (Apriori's level-2 candidates).
    pub apriori_candidates: usize,
    /// Number of those that also landed in a frequent bucket — PCY's
    /// candidate set, counted exactly in pass 2.
    pub pcy_candidates: usize,
    /// Buckets whose accumulated count met the threshold.
    pub frequent_buckets: usize,
    /// Total buckets.
    pub n_buckets: usize,
}

/// Pair hash: mixes the two item ids into a bucket index with a
/// splitmix64-style finalizer so every output bit depends on both ids.
#[inline]
fn bucket_of(a: ItemId, b: ItemId, n_buckets: usize) -> usize {
    let mut x = (u64::from(a.0) << 32) | u64::from(b.0);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % n_buckets as u64) as usize
}

/// Runs the two-pass PCY pair miner.
///
/// # Panics
///
/// Panics if `n_buckets` is zero.
pub fn pcy_pairs(db: &BasketDatabase, min_support: MinSupport, n_buckets: usize) -> PcyResult {
    assert!(n_buckets > 0, "need at least one bucket");
    let n = db.len() as u64;
    let threshold = min_support.to_count(n).max(1);

    // Pass 1: item counts are already maintained by the database; hash every
    // pair of every basket into the bucket array.
    let mut buckets = vec![0u64; n_buckets];
    for basket in db.baskets() {
        for i in 0..basket.len() {
            for j in i + 1..basket.len() {
                buckets[bucket_of(basket[i], basket[j], n_buckets)] += 1;
            }
        }
    }
    let frequent_buckets = buckets.iter().filter(|&&c| c >= threshold).count();

    // Between passes: compress the bucket counts to a bitmap of "frequent"
    // buckets (the PCY paper's summary structure).
    let bucket_frequent: Vec<bool> = buckets.iter().map(|&c| c >= threshold).collect();

    // Candidate pairs: both items frequent, bucket frequent.
    let frequent_items: Vec<ItemId> = (0..db.n_items())
        .map(|i| ItemId(i as u32))
        .filter(|&i| db.item_count(i) >= threshold)
        .collect();
    let mut apriori_candidates = 0usize;
    let mut candidates: Vec<(ItemId, ItemId)> = Vec::new();
    for (i, &a) in frequent_items.iter().enumerate() {
        for &b in &frequent_items[i + 1..] {
            apriori_candidates += 1;
            if bucket_frequent[bucket_of(a, b, n_buckets)] {
                candidates.push((a, b));
            }
        }
    }
    let pcy_candidates = candidates.len();

    // Pass 2: exact counts for the surviving candidates.
    let candidate_index: HashMap<(ItemId, ItemId), usize> = candidates
        .iter()
        .enumerate()
        .map(|(idx, &pair)| (pair, idx))
        .collect();
    let mut counts = vec![0u64; candidates.len()];
    for basket in db.baskets() {
        for i in 0..basket.len() {
            for j in i + 1..basket.len() {
                if let Some(&idx) = candidate_index.get(&(basket[i], basket[j])) {
                    counts[idx] += 1;
                }
            }
        }
    }

    let mut frequent_pairs: Vec<FrequentItemset> = candidates
        .into_iter()
        .zip(counts)
        .filter(|&(_, c)| c >= threshold)
        .map(|((a, b), count)| FrequentItemset {
            itemset: Itemset::from_items([a, b]),
            count,
        })
        .collect();
    frequent_pairs.sort_unstable_by(|x, y| x.itemset.cmp(&y.itemset));

    PcyResult {
        frequent_pairs,
        apriori_candidates,
        pcy_candidates,
        frequent_buckets,
        n_buckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, MinSupport};

    fn db() -> BasketDatabase {
        BasketDatabase::from_id_baskets(
            6,
            vec![
                vec![0, 1, 4],
                vec![1, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![0, 2],
                vec![1, 2],
                vec![0, 2],
                vec![0, 1, 2, 4],
                vec![0, 1, 2],
                vec![5],
            ],
        )
    }

    #[test]
    fn pcy_finds_the_same_frequent_pairs_as_apriori() {
        let threshold = MinSupport::Count(2);
        let reference = apriori(&db(), threshold, 2);
        let expected: Vec<&FrequentItemset> = reference
            .frequent
            .iter()
            .filter(|f| f.itemset.len() == 2)
            .collect();
        for n_buckets in [1usize, 2, 7, 64, 4096] {
            let pcy = pcy_pairs(&db(), threshold, n_buckets);
            assert_eq!(
                pcy.frequent_pairs.len(),
                expected.len(),
                "bucket count {n_buckets}"
            );
            for (got, want) in pcy.frequent_pairs.iter().zip(&expected) {
                assert_eq!(&got.itemset, &want.itemset);
                assert_eq!(got.count, want.count);
            }
        }
    }

    #[test]
    fn more_buckets_never_weakens_pruning_guarantee() {
        // PCY candidates are always a subset of Apriori candidates.
        for n_buckets in [1usize, 3, 16, 1024] {
            let pcy = pcy_pairs(&db(), MinSupport::Count(2), n_buckets);
            assert!(pcy.pcy_candidates <= pcy.apriori_candidates);
        }
    }

    #[test]
    fn single_bucket_degenerates_to_apriori() {
        // One bucket swallows every pair, so no pruning happens (the bucket
        // is trivially frequent in any non-degenerate database).
        let pcy = pcy_pairs(&db(), MinSupport::Count(2), 1);
        assert_eq!(pcy.pcy_candidates, pcy.apriori_candidates);
    }

    #[test]
    fn many_buckets_prune_infrequent_pairs() {
        // With enough buckets, collisions vanish and only pairs that are
        // genuinely frequent (or collide with one) survive.
        let pcy = pcy_pairs(&db(), MinSupport::Count(2), 1 << 16);
        assert!(pcy.pcy_candidates < pcy.apriori_candidates);
        assert_eq!(pcy.frequent_pairs.len(), 6);
    }

    #[test]
    fn bucket_accounting() {
        let pcy = pcy_pairs(&db(), MinSupport::Count(2), 128);
        assert_eq!(pcy.n_buckets, 128);
        assert!(pcy.frequent_buckets <= 128);
        assert!(pcy.frequent_buckets > 0);
    }

    #[test]
    fn empty_database_yields_nothing() {
        let empty = BasketDatabase::new(4);
        let pcy = pcy_pairs(&empty, MinSupport::Count(1), 8);
        assert!(pcy.frequent_pairs.is_empty());
        assert_eq!(pcy.apriori_candidates, 0);
    }
}

//! The Apriori frequent-itemset miner (Agrawal & Srikant, VLDB '94).
//!
//! The support half of the support–confidence framework the paper
//! generalizes away from: level-wise search using the *downward closure* of
//! support — "if any subset of an (i+1)-itemset does not have support, then
//! neither can the (i+1)-itemset".

use std::collections::HashMap;

use bmb_basket::{BasketDatabase, ItemId, Itemset};
use bmb_lattice::{generate_candidates, ItemsetTable};

/// Minimum support expressed either as an absolute basket count or as a
/// fraction of the database.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MinSupport {
    /// At least this many baskets.
    Count(u64),
    /// At least this fraction of all baskets (the paper's `s%`).
    Fraction(f64),
}

impl MinSupport {
    /// Resolves to an absolute count over a database of `n` baskets.
    ///
    /// Fractions round *up*: support `s%` means `>= ceil(s·n)` baskets.
    pub fn to_count(self, n: u64) -> u64 {
        match self {
            MinSupport::Count(c) => c,
            MinSupport::Fraction(f) => {
                assert!(
                    (0.0..=1.0).contains(&f),
                    "support fraction out of range: {f}"
                );
                (f * n as f64).ceil() as u64
            }
        }
    }
}

/// One frequent itemset with its support count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The itemset.
    pub itemset: Itemset,
    /// Number of baskets containing it.
    pub count: u64,
}

impl FrequentItemset {
    /// Support as a fraction of `n` baskets.
    pub fn fraction(&self, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.count as f64 / n as f64
        }
    }
}

/// Per-level accounting, mirroring the correlation miner's statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AprioriLevelStats {
    /// Level (itemset size).
    pub level: usize,
    /// Candidates counted at this level.
    pub candidates: usize,
    /// Candidates that met the support threshold.
    pub frequent: usize,
}

/// Result of a full Apriori run.
#[derive(Clone, Debug, Default)]
pub struct AprioriResult {
    /// All frequent itemsets of size >= 1, in ascending (size, lexicographic)
    /// order.
    pub frequent: Vec<FrequentItemset>,
    /// Per-level candidate/survivor counts.
    pub levels: Vec<AprioriLevelStats>,
}

impl AprioriResult {
    /// Looks up the support count of an exact itemset, if frequent.
    pub fn support_of(&self, set: &Itemset) -> Option<u64> {
        self.frequent
            .iter()
            .find(|f| &f.itemset == set)
            .map(|f| f.count)
    }

    /// All frequent itemsets of one size.
    pub fn at_level(&self, level: usize) -> impl Iterator<Item = &FrequentItemset> {
        self.frequent
            .iter()
            .filter(move |f| f.itemset.len() == level)
    }
}

/// Runs Apriori over `db` with the given minimum support.
///
/// `max_level` caps the itemset size explored (use `usize::MAX` for no cap).
pub fn apriori(db: &BasketDatabase, min_support: MinSupport, max_level: usize) -> AprioriResult {
    let n = db.len() as u64;
    let threshold = min_support.to_count(n).max(1);
    let mut result = AprioriResult::default();

    // Level 1: direct item counts.
    let mut survivors = ItemsetTable::new();
    let mut level1: Vec<FrequentItemset> = (0..db.n_items())
        .map(|i| ItemId(i as u32))
        .filter(|&i| db.item_count(i) >= threshold)
        .map(|i| FrequentItemset {
            itemset: Itemset::singleton(i),
            count: db.item_count(i),
        })
        .collect();
    level1.sort_unstable_by(|a, b| a.itemset.cmp(&b.itemset));
    result.levels.push(AprioriLevelStats {
        level: 1,
        candidates: db.n_items(),
        frequent: level1.len(),
    });
    for f in &level1 {
        survivors.insert(f.itemset.clone());
    }
    result.frequent.extend(level1);

    let mut level = 1usize;
    while level < max_level && !survivors.is_empty() {
        level += 1;
        let candidates = generate_candidates(&survivors);
        if candidates.is_empty() {
            break;
        }
        let counts = count_candidates(db, &candidates, level);
        let mut next_survivors = ItemsetTable::with_capacity(candidates.len());
        let mut frequent_here = 0usize;
        for candidate in &candidates {
            let count = counts.get(candidate).copied().unwrap_or(0);
            if count >= threshold {
                frequent_here += 1;
                next_survivors.insert(candidate.clone());
                result.frequent.push(FrequentItemset {
                    itemset: candidate.clone(),
                    count,
                });
            }
        }
        result.levels.push(AprioriLevelStats {
            level,
            candidates: candidates.len(),
            frequent: frequent_here,
        });
        survivors = next_survivors;
    }
    result
}

/// Counts all candidates of one size in a single database pass, testing
/// each size-`level` subset of every basket against the candidate table.
fn count_candidates(
    db: &BasketDatabase,
    candidates: &[Itemset],
    level: usize,
) -> HashMap<Itemset, u64> {
    let lookup: ItemsetTable = candidates.iter().cloned().collect();
    let mut counts: HashMap<Itemset, u64> = HashMap::with_capacity(candidates.len());
    for basket in db.baskets() {
        if basket.len() < level {
            continue;
        }
        // For small baskets enumerate basket subsets; for large baskets it
        // would be cheaper to test candidates directly, but market baskets
        // are short in all of the paper's workloads.
        // Baskets are stored sorted+deduplicated, so skip the re-sort.
        let basket_set = Itemset::from_sorted_slice(basket);
        if binom(basket.len(), level) <= candidates.len() as u64 {
            for subset in basket_set.subsets_of_size(level) {
                if lookup.contains(&subset) {
                    *counts.entry(subset).or_insert(0) += 1;
                }
            }
        } else {
            for candidate in candidates {
                if candidate.is_subset_of(&basket_set) {
                    *counts.entry(candidate.clone()).or_insert(0) += 1;
                }
            }
        }
    }
    counts
}

/// Small binomial coefficient with saturation, for the strategy switch.
fn binom(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u64) / (i as u64 + 1);
        if acc > 1 << 40 {
            return u64::MAX;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic 5-transaction example used in many Apriori expositions.
    fn db() -> BasketDatabase {
        BasketDatabase::from_id_baskets(
            5,
            vec![
                vec![0, 1, 4],
                vec![1, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![0, 2],
                vec![1, 2],
                vec![0, 2],
                vec![0, 1, 2, 4],
                vec![0, 1, 2],
            ],
        )
    }

    #[test]
    fn frequent_itemsets_with_count_threshold() {
        let result = apriori(&db(), MinSupport::Count(2), usize::MAX);
        // Hand-checked frequents at count >= 2.
        let expect = [
            (vec![0u32], 6),
            (vec![1], 7),
            (vec![2], 6),
            (vec![3], 2),
            (vec![4], 2),
            (vec![0, 1], 4),
            (vec![0, 2], 4),
            (vec![0, 4], 2),
            (vec![1, 2], 4),
            (vec![1, 3], 2),
            (vec![1, 4], 2),
            (vec![0, 1, 2], 2),
            (vec![0, 1, 4], 2),
        ];
        for (ids, count) in &expect {
            let set = Itemset::from_ids(ids.iter().copied());
            assert_eq!(result.support_of(&set), Some(*count), "for {set}");
        }
        assert_eq!(result.frequent.len(), expect.len());
    }

    #[test]
    fn fraction_threshold_rounds_up() {
        assert_eq!(MinSupport::Fraction(0.01).to_count(30370), 304);
        assert_eq!(MinSupport::Fraction(0.5).to_count(9), 5);
        assert_eq!(MinSupport::Count(7).to_count(100), 7);
    }

    #[test]
    fn downward_closure_holds_on_output() {
        let result = apriori(&db(), MinSupport::Count(2), usize::MAX);
        for f in &result.frequent {
            for facet in f.itemset.facets() {
                if !facet.is_empty() {
                    assert!(
                        result.support_of(&facet).is_some(),
                        "facet {facet} of {} missing",
                        f.itemset
                    );
                }
            }
        }
    }

    #[test]
    fn supports_are_monotone_in_subsets() {
        let result = apriori(&db(), MinSupport::Count(1), usize::MAX);
        for f in &result.frequent {
            for facet in f.itemset.facets() {
                if facet.is_empty() {
                    continue;
                }
                let facet_count = result.support_of(&facet).unwrap();
                assert!(facet_count >= f.count);
            }
        }
    }

    #[test]
    fn max_level_truncates() {
        let result = apriori(&db(), MinSupport::Count(2), 1);
        assert!(result.frequent.iter().all(|f| f.itemset.len() == 1));
        assert_eq!(result.levels.len(), 1);
    }

    #[test]
    fn level_stats_track_candidates() {
        let result = apriori(&db(), MinSupport::Count(2), usize::MAX);
        assert_eq!(result.levels[0].level, 1);
        assert_eq!(result.levels[0].candidates, 5);
        assert_eq!(result.levels[0].frequent, 5);
        // Level 2 candidates: all C(5,2) = 10 pairs of frequent singletons.
        assert_eq!(result.levels[1].candidates, 10);
        assert_eq!(result.levels[1].frequent, 6);
    }

    #[test]
    fn empty_database() {
        let empty = BasketDatabase::new(3);
        let result = apriori(&empty, MinSupport::Count(1), usize::MAX);
        assert!(result.frequent.is_empty());
    }

    #[test]
    fn high_threshold_yields_nothing() {
        let result = apriori(&db(), MinSupport::Count(100), usize::MAX);
        assert!(result.frequent.is_empty());
    }
}

//! # bmb-apriori — the support–confidence baseline
//!
//! The framework the paper generalizes away from, implemented as the
//! comparison baseline:
//!
//! * [`apriori`](mod@crate::apriori) — level-wise frequent-itemset mining
//!   exploiting downward closure of support (Agrawal–Srikant);
//! * [`pcy`] — the Park–Chen–Yu hash-bucket pair pruning the paper
//!   contrasts its exact hash tables against;
//! * [`rules`] — association-rule generation with confidence and the
//!   dependence ratio (lift), including the paper's Example 2 machinery;
//! * [`pair_report`] — the full 4-support / 8-confidence per-pair summary
//!   behind Table 3.

#![warn(missing_docs)]

/// The Apriori frequent-itemset miner (Agrawal & Srikant, VLDB '94).
pub mod apriori;
/// The full support–confidence report for item pairs (Table 3).
pub mod pair_report;
/// The PCY hash-bucket refinement for pair counting.
pub mod pcy;
/// Association-rule generation: the confidence half of the framework.
pub mod rules;

pub use apriori::{apriori, AprioriLevelStats, AprioriResult, FrequentItemset, MinSupport};
pub use pair_report::{all_pair_reports, PairReport, PairRule, ALL_PAIR_RULES};
pub use pcy::{pcy_pairs, PcyResult};
pub use rules::{evaluate_rule, generate_rules, Rule};

//! The full support–confidence report for item pairs (the paper's Table 3).
//!
//! For every pair `(a, b)` the paper tabulates the supports of all four
//! contingency cells and the confidences of all eight directional rules
//! (`a ⇒ b`, `ā ⇒ b`, `a ⇒ b̄`, `ā ⇒ b̄`, and the four with `b` on the
//! left). A support value is *significant* when it meets the support
//! cutoff; a confidence value counts only when it meets the confidence
//! cutoff **and** its cell's support is significant.

use bmb_basket::{BasketDatabase, ContingencyTable, ItemId, Itemset};

/// The eight directional pair rules of Table 3, in column order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairRule {
    /// `a ⇒ b`
    AToB,
    /// `ā ⇒ b`
    NotAToB,
    /// `a ⇒ b̄`
    AToNotB,
    /// `ā ⇒ b̄`
    NotAToNotB,
    /// `b ⇒ a`
    BToA,
    /// `b ⇒ ā`
    BToNotA,
    /// `b̄ ⇒ a`
    NotBToA,
    /// `b̄ ⇒ ā`
    NotBToNotA,
}

/// All eight rules in the paper's column order.
pub const ALL_PAIR_RULES: [PairRule; 8] = [
    PairRule::AToB,
    PairRule::NotAToB,
    PairRule::AToNotB,
    PairRule::NotAToNotB,
    PairRule::BToA,
    PairRule::BToNotA,
    PairRule::NotBToA,
    PairRule::NotBToNotA,
];

impl PairRule {
    /// Human-readable arrow form, e.g. `"!a => b"`.
    pub fn label(self) -> &'static str {
        match self {
            PairRule::AToB => "a => b",
            PairRule::NotAToB => "!a => b",
            PairRule::AToNotB => "a => !b",
            PairRule::NotAToNotB => "!a => !b",
            PairRule::BToA => "b => a",
            PairRule::BToNotA => "b => !a",
            PairRule::NotBToA => "!b => a",
            PairRule::NotBToNotA => "!b => !a",
        }
    }

    /// The contingency cell this rule's support lives in
    /// (bit0 = `a` present, bit1 = `b` present).
    pub fn cell(self) -> u32 {
        match self {
            PairRule::AToB | PairRule::BToA => 0b11,
            PairRule::NotAToB | PairRule::BToNotA => 0b10,
            PairRule::AToNotB | PairRule::NotBToA => 0b01,
            PairRule::NotAToNotB | PairRule::NotBToNotA => 0b00,
        }
    }
}

/// The support/confidence summary of one item pair.
#[derive(Clone, Debug)]
pub struct PairReport {
    /// First item (`a`).
    pub a: ItemId,
    /// Second item (`b`).
    pub b: ItemId,
    /// Total baskets.
    pub n: u64,
    /// Cell counts indexed by mask (bit0 = `a`, bit1 = `b`).
    pub cells: [u64; 4],
}

impl PairReport {
    /// Builds the report for `(a, b)` with one scan.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn from_database(db: &BasketDatabase, a: ItemId, b: ItemId) -> Self {
        assert_ne!(a, b, "a pair needs two distinct items");
        let set = Itemset::from_items([a, b]);
        let table = ContingencyTable::from_database(db, &set);
        Self::from_table(&table, a)
    }

    /// Builds the report from an existing 2-item contingency table; `a`
    /// names which of the two items plays the row role.
    pub fn from_table(table: &ContingencyTable, a: ItemId) -> Self {
        assert_eq!(table.dims(), 2, "pair report needs a 2-item table");
        let items = table.itemset().items();
        let (a_id, b_id, a_is_first) = if items[0] == a {
            (items[0], items[1], true)
        } else {
            assert_eq!(items[1], a, "item {a} is not in the table");
            (items[1], items[0], false)
        };
        let mut cells = [0u64; 4];
        for (mask, count) in table.cells() {
            // Table masks are in sorted-item order; remap so bit0 = a.
            let a_bit = if a_is_first {
                mask & 1
            } else {
                (mask >> 1) & 1
            };
            let b_bit = if a_is_first {
                (mask >> 1) & 1
            } else {
                mask & 1
            };
            cells[(a_bit | (b_bit << 1)) as usize] += count;
        }
        PairReport {
            a: a_id,
            b: b_id,
            n: table.n(),
            cells,
        }
    }

    /// Support count of a cell (mask: bit0 = `a` present, bit1 = `b`).
    pub fn cell_count(&self, mask: u32) -> u64 {
        self.cells[mask as usize]
    }

    /// Support fraction of a cell.
    pub fn cell_support(&self, mask: u32) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.cells[mask as usize] as f64 / self.n as f64
        }
    }

    /// The four cell supports in the paper's column order:
    /// `s(ab), s(āb), s(ab̄), s(āb̄)`.
    pub fn supports_in_table_order(&self) -> [f64; 4] {
        [
            self.cell_support(0b11),
            self.cell_support(0b10),
            self.cell_support(0b01),
            self.cell_support(0b00),
        ]
    }

    /// Confidence of one of the eight directional rules; `None` when the
    /// antecedent never occurs.
    pub fn confidence(&self, rule: PairRule) -> Option<f64> {
        let numerator = self.cells[rule.cell() as usize] as f64;
        let denominator = match rule {
            PairRule::AToB | PairRule::AToNotB => self.cells[0b01] + self.cells[0b11],
            PairRule::NotAToB | PairRule::NotAToNotB => self.cells[0b00] + self.cells[0b10],
            PairRule::BToA | PairRule::BToNotA => self.cells[0b10] + self.cells[0b11],
            PairRule::NotBToA | PairRule::NotBToNotA => self.cells[0b00] + self.cells[0b01],
        } as f64;
        if denominator == 0.0 {
            None
        } else {
            Some(numerator / denominator)
        }
    }

    /// All eight confidences in the paper's column order.
    pub fn confidences_in_table_order(&self) -> [Option<f64>; 8] {
        ALL_PAIR_RULES.map(|r| self.confidence(r))
    }

    /// Whether a rule *passes* the support–confidence test: its cell's
    /// support meets `support_cutoff` (a fraction) and its confidence meets
    /// `confidence_cutoff`.
    pub fn rule_passes(&self, rule: PairRule, support_cutoff: f64, confidence_cutoff: f64) -> bool {
        self.cell_support(rule.cell()) + 1e-12 >= support_cutoff
            && self
                .confidence(rule)
                .is_some_and(|c| c + 1e-12 >= confidence_cutoff)
    }

    /// The rules passing both cutoffs, in table order.
    pub fn passing_rules(&self, support_cutoff: f64, confidence_cutoff: f64) -> Vec<PairRule> {
        ALL_PAIR_RULES
            .into_iter()
            .filter(|&r| self.rule_passes(r, support_cutoff, confidence_cutoff))
            .collect()
    }
}

/// Builds reports for every unordered item pair of the database, in
/// `(a, b)` lexicographic order — the row order of Tables 2 and 3.
pub fn all_pair_reports(db: &BasketDatabase) -> Vec<PairReport> {
    let k = db.n_items() as u32;
    let mut out = Vec::with_capacity((k as usize * (k as usize - 1)) / 2);
    for a in 0..k {
        for b in a + 1..k {
            out.push(PairReport::from_database(db, ItemId(a), ItemId(b)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pair with the paper's Example 4 shape: a = i2 (never served),
    /// b = i7 (40 or younger), using Table 3's percentages of n = 1000.
    /// s(ab) = 58.9%, s(āb) = 2.7%, s(ab̄) = 30.4%, s(āb̄) = 8.0%.
    fn military_age() -> PairReport {
        PairReport {
            a: ItemId(2),
            b: ItemId(7),
            n: 1000,
            cells: [80, 304, 27, 589], // masks 00, 01(a only), 10(b only), 11
        }
    }

    #[test]
    fn confidences_match_paper_row() {
        let r = military_age();
        // Paper row i2 i7: 0.66 0.26 0.34 0.74 | 0.96 0.04 0.79 0.21
        let expect = [0.66, 0.26, 0.34, 0.74, 0.96, 0.04, 0.79, 0.21];
        for (rule, want) in ALL_PAIR_RULES.iter().zip(expect) {
            let got = r.confidence(*rule).unwrap();
            // The paper's table was computed before rounding the supports
            // to one decimal, so allow ~0.01 of slack.
            assert!(
                (got - want).abs() < 1.2e-2,
                "{}: got {got:.3}, paper says {want}",
                rule.label()
            );
        }
    }

    #[test]
    fn paper_example_4_passing_rules() {
        // "All possible rules pass the support test, but only half pass the
        // confidence test. These are ā ⇒ b̄ (i.e. !i2 ⇒ !i7... in the
        // paper's orientation i2̄ ⇒ i7̄), a ⇒ b, b̄ ⇒ a, and b ⇒ a."
        let r = military_age();
        let passing = r.passing_rules(0.01, 0.5);
        assert_eq!(
            passing,
            vec![
                PairRule::AToB,
                PairRule::NotAToNotB,
                PairRule::BToA,
                PairRule::NotBToA,
            ]
        );
    }

    #[test]
    fn supports_in_table_order() {
        let r = military_age();
        let s = r.supports_in_table_order();
        assert!((s[0] - 0.589).abs() < 1e-12);
        assert!((s[1] - 0.027).abs() < 1e-12);
        assert!((s[2] - 0.304).abs() < 1e-12);
        assert!((s[3] - 0.080).abs() < 1e-12);
    }

    #[test]
    fn from_database_round_trip() {
        let db = BasketDatabase::from_id_baskets(
            2,
            vec![vec![0, 1], vec![0, 1], vec![0], vec![1], vec![], vec![1]],
        );
        let r = PairReport::from_database(&db, ItemId(0), ItemId(1));
        assert_eq!(r.cell_count(0b11), 2);
        assert_eq!(r.cell_count(0b01), 1);
        assert_eq!(r.cell_count(0b10), 2);
        assert_eq!(r.cell_count(0b00), 1);
        // And with the roles swapped, a-cells mirror.
        let r = PairReport::from_database(&db, ItemId(1), ItemId(0));
        assert_eq!(r.cell_count(0b01), 2); // b(=item0) absent, a(=item1) present
    }

    #[test]
    fn degenerate_antecedent_is_none() {
        let db = BasketDatabase::from_id_baskets(2, vec![vec![0], vec![0]]);
        let r = PairReport::from_database(&db, ItemId(0), ItemId(1));
        assert_eq!(r.confidence(PairRule::BToA), None);
        assert_eq!(r.confidence(PairRule::NotAToB), None);
        assert_eq!(r.confidence(PairRule::AToB), Some(0.0));
    }

    #[test]
    fn all_pairs_enumeration() {
        let db = BasketDatabase::from_id_baskets(4, vec![vec![0, 1, 2, 3]]);
        let reports = all_pair_reports(&db);
        assert_eq!(reports.len(), 6);
        assert_eq!((reports[0].a, reports[0].b), (ItemId(0), ItemId(1)));
        assert_eq!((reports[5].a, reports[5].b), (ItemId(2), ItemId(3)));
    }

    #[test]
    fn contradictory_rules_can_both_pass() {
        // The paper: "If you are married you are likely to be male" and
        // "If you are male you are likely not to be married" coexist.
        // a = married, b = male with cells chosen to that effect.
        let r = PairReport {
            a: ItemId(6),
            b: ItemId(8),
            n: 1000,
            cells: [413, 57, 409, 121],
        };
        // a ⇒ b: 121/178 ≈ 0.68 passes; b ⇒ ā: 409/530 ≈ 0.77 passes.
        assert!(r.rule_passes(PairRule::AToB, 0.01, 0.5));
        assert!(r.rule_passes(PairRule::BToNotA, 0.01, 0.5));
    }
}

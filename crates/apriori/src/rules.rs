//! Association-rule generation: the confidence half of support–confidence.
//!
//! A rule `A ⇒ B` (disjoint itemsets) holds at support `s` and confidence
//! `c` when `O(A ∪ B)/n >= s` and `O(A ∪ B)/O(A) >= c` (Section 1.1 of the
//! paper). Confidence is *not* upward closed — the paper's Example 2
//! exhibits `c ⇒ d` with confidence 0.52 whose superset rule `c,t ⇒ d` has
//! only 0.44 — so rule discovery is a post-processing step over the
//! frequent itemsets, exactly as the paper describes.

use bmb_basket::{Itemset, SupportCounter};

use crate::apriori::AprioriResult;

/// An association rule `antecedent ⇒ consequent` with its statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Left-hand side `A`.
    pub antecedent: Itemset,
    /// Right-hand side `B`, disjoint from `A`.
    pub consequent: Itemset,
    /// `O(A ∪ B)/n`.
    pub support: f64,
    /// `O(A ∪ B)/O(A)` — the estimated conditional probability `P[B|A]`.
    pub confidence: f64,
    /// `P[A ∧ B]/(P[A]·P[B])` — the dependence ratio of the paper's
    /// Example 1 (known elsewhere as lift). 1 means independent.
    pub lift: f64,
}

/// Generates all rules meeting `min_confidence` from the frequent itemsets
/// of an Apriori run.
///
/// Every frequent itemset of size >= 2 is split into every non-trivial
/// (antecedent, consequent) partition. Rule support equals the itemset's
/// support and so already meets the mining threshold.
pub fn generate_rules(result: &AprioriResult, n: u64, min_confidence: f64) -> Vec<Rule> {
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "confidence out of range"
    );
    let mut rules = Vec::new();
    for f in &result.frequent {
        if f.itemset.len() < 2 {
            continue;
        }
        let whole_count = f.count;
        // Every proper non-empty subset is a potential antecedent.
        let items = f.itemset.clone();
        for size in 1..items.len() {
            for antecedent in items.subsets_of_size(size) {
                let Some(antecedent_count) = result.support_of(&antecedent) else {
                    // Downward closure guarantees presence; defensive skip.
                    continue;
                };
                let consequent = Itemset::from_items(
                    items
                        .items()
                        .iter()
                        .copied()
                        .filter(|i| !antecedent.contains(*i)),
                );
                let confidence = whole_count as f64 / antecedent_count as f64;
                if confidence + 1e-12 < min_confidence {
                    continue;
                }
                let consequent_count = result.support_of(&consequent).unwrap_or(0);
                let lift = if consequent_count == 0 || n == 0 {
                    f64::NAN
                } else {
                    (whole_count as f64 * n as f64)
                        / (antecedent_count as f64 * consequent_count as f64)
                };
                rules.push(Rule {
                    antecedent,
                    consequent,
                    support: whole_count as f64 / n as f64,
                    confidence,
                    lift,
                });
            }
        }
    }
    rules.sort_unstable_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.antecedent.cmp(&b.antecedent))
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    rules
}

/// Evaluates a single candidate rule directly against a counter, without a
/// prior mining run — used by examples and tests that probe specific rules
/// (like the paper's Example 2).
pub fn evaluate_rule<C: SupportCounter>(
    counter: &C,
    antecedent: &Itemset,
    consequent: &Itemset,
) -> Option<Rule> {
    if antecedent.is_empty() || consequent.is_empty() {
        return None;
    }
    if !antecedent.intersection(consequent).is_empty() {
        return None;
    }
    let n = counter.n_baskets();
    let whole = antecedent.union(consequent);
    let whole_count = counter.itemset_support(&whole);
    let antecedent_count = counter.itemset_support(antecedent);
    let consequent_count = counter.itemset_support(consequent);
    if n == 0 || antecedent_count == 0 {
        return None;
    }
    let lift = if consequent_count == 0 {
        f64::NAN
    } else {
        (whole_count as f64 * n as f64) / (antecedent_count as f64 * consequent_count as f64)
    };
    Some(Rule {
        antecedent: antecedent.clone(),
        consequent: consequent.clone(),
        support: whole_count as f64 / n as f64,
        confidence: whole_count as f64 / antecedent_count as f64,
        lift,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, MinSupport};
    use bmb_basket::{BasketDatabase, ScanCounter};

    /// The paper's Example 2 database: coffee, tea, doughnuts arranged so
    /// the published marginals hold exactly — P[c∧d] = 48, P[c] = 93,
    /// P[t∧c] = 18, P[t∧c∧d] = 8 (in percent-of-100 units; the cells below
    /// realize them as absolute counts).
    fn example2_db() -> BasketDatabase {
        // items: 0 = coffee, 1 = tea, 2 = doughnut
        let mut baskets = Vec::new();
        let mut push = |items: &[u32], count: usize| {
            for _ in 0..count {
                baskets.push(items.to_vec());
            }
        };
        push(&[0, 1, 2], 8);
        push(&[1, 2], 2);
        push(&[0, 2], 40);
        push(&[2], 10);
        push(&[0, 1], 10);
        push(&[1], 5);
        push(&[0], 35);
        push(&[], 0);
        BasketDatabase::from_id_baskets(3, baskets)
    }

    #[test]
    fn paper_example_2_confidence_is_not_upward_closed() {
        let db = example2_db();
        let counter = ScanCounter::new(&db);
        let coffee = Itemset::from_ids([0]);
        let tea_coffee = Itemset::from_ids([0, 1]);
        let doughnut = Itemset::from_ids([2]);
        let c_to_d = evaluate_rule(&counter, &coffee, &doughnut).unwrap();
        let ct_to_d = evaluate_rule(&counter, &tea_coffee, &doughnut).unwrap();
        // P[c∧d] = 48, P[c] = 93 ⇒ conf 0.516; P[t∧c∧d] = 8, P[t∧c] = 18 ⇒ 0.444.
        assert!((c_to_d.confidence - 48.0 / 93.0).abs() < 1e-12);
        assert!((ct_to_d.confidence - 8.0 / 18.0).abs() < 1e-12);
        // The headline: c ⇒ d clears a 0.50 cutoff, its superset rule fails it.
        assert!(c_to_d.confidence >= 0.5);
        assert!(ct_to_d.confidence < 0.5);
    }

    fn toy_db() -> BasketDatabase {
        BasketDatabase::from_id_baskets(
            3,
            vec![
                vec![0, 1],
                vec![0, 1],
                vec![0, 1],
                vec![0],
                vec![1],
                vec![2],
                vec![0, 2],
            ],
        )
    }

    #[test]
    fn generated_rules_meet_cutoff_and_match_direct_evaluation() {
        let db = toy_db();
        let result = apriori(&db, MinSupport::Count(2), usize::MAX);
        let rules = generate_rules(&result, db.len() as u64, 0.5);
        assert!(!rules.is_empty());
        let counter = ScanCounter::new(&db);
        for rule in &rules {
            assert!(rule.confidence >= 0.5 - 1e-12);
            let direct = evaluate_rule(&counter, &rule.antecedent, &rule.consequent).unwrap();
            assert!((direct.confidence - rule.confidence).abs() < 1e-12);
            assert!((direct.support - rule.support).abs() < 1e-12);
            assert!((direct.lift - rule.lift).abs() < 1e-12);
        }
    }

    #[test]
    fn rules_are_sorted_by_confidence() {
        let db = toy_db();
        let result = apriori(&db, MinSupport::Count(1), usize::MAX);
        let rules = generate_rules(&result, db.len() as u64, 0.0);
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence - 1e-12);
        }
    }

    #[test]
    fn lift_reads_dependence_direction() {
        // 0 and 1 co-occur 3/7 ≈ 0.43 vs independence (4/7)(4/7) ≈ 0.33 — lift > 1.
        let db = toy_db();
        let counter = ScanCounter::new(&db);
        let rule =
            evaluate_rule(&counter, &Itemset::from_ids([0]), &Itemset::from_ids([1])).unwrap();
        assert!(rule.lift > 1.0);
        // 1 and 2 never co-occur — lift 0.
        let rule =
            evaluate_rule(&counter, &Itemset::from_ids([1]), &Itemset::from_ids([2])).unwrap();
        assert_eq!(rule.lift, 0.0);
    }

    #[test]
    fn overlapping_sides_are_rejected() {
        let db = toy_db();
        let counter = ScanCounter::new(&db);
        assert!(evaluate_rule(
            &counter,
            &Itemset::from_ids([0, 1]),
            &Itemset::from_ids([1]),
        )
        .is_none());
        assert!(evaluate_rule(&counter, &Itemset::empty(), &Itemset::from_ids([1])).is_none());
    }
}

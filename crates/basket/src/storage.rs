//! Pluggable byte-log storage for the write-ahead log.
//!
//! The WAL ([`crate::wal`]) is written against the [`Storage`] trait — an
//! append-only byte log with an explicit durability barrier — so the same
//! record format and recovery code runs over three backends:
//!
//! * [`FileStorage`] — a real file (`bmb serve --wal PATH`);
//! * [`MemStorage`] — an in-memory buffer behind a shared handle, so a
//!   test can "crash" a store (drop it) and re-open the surviving bytes;
//! * [`FaultStorage`] — a [`MemStorage`] wrapped in a deterministic
//!   [`FaultPlan`]: fail after N appended bytes (with the failing append
//!   landing as a short, torn write, either permanent like dead media or
//!   transient like an ENOSPC that clears), fail reads, and flip a byte
//!   at a chosen offset. Every crash point a disk can produce is
//!   enumerable, which is what the crash-recovery torture test iterates
//!   over.
//!
//! Fault semantics mirror real disks: a failed append may have persisted
//! a *prefix* of the data (torn write), a failed sync leaves the tail in
//! an unknown state, and corruption flips bits without changing length.
//! Recovery must treat all of these as a damaged tail, never as damage to
//! records whose sync was acknowledged.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// An append-only byte log with an explicit durability barrier.
///
/// Implementations must guarantee that once [`Storage::sync`] returns
/// `Ok`, every previously appended byte survives a crash; bytes appended
/// since the last successful sync may survive wholly, partially (a torn
/// tail), or not at all.
pub trait Storage: Send {
    /// Appends `data` at the end of the log.
    ///
    /// # Errors
    ///
    /// On failure a *prefix* of `data` may have been persisted (a torn
    /// write); callers must assume the tail is damaged.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;

    /// Durability barrier: all previously appended bytes survive a crash
    /// once this returns `Ok`.
    ///
    /// # Errors
    ///
    /// Propagates media failures; the unsynced tail state is unknown.
    fn sync(&mut self) -> io::Result<()>;

    /// Current log length in bytes.
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    fn len(&mut self) -> io::Result<u64>;

    /// Whether the log holds no bytes at all.
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    fn is_empty(&mut self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Reads the entire log (recovery replay).
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;

    /// Truncates the log to `len` bytes (recovery repair of a torn tail).
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// A [`Storage`] over a real file.
#[derive(Debug)]
pub struct FileStorage {
    file: File,
}

impl FileStorage {
    /// Opens (creating if absent) the log file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates open failures.
    pub fn open(path: &Path) -> io::Result<FileStorage> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        // A freshly created file's directory entry is not durable until
        // the parent directory itself is synced; without this, a crash
        // shortly after creation can lose the file — and every synced
        // append in it — on some filesystems.
        #[cfg(unix)]
        {
            let parent = match path.parent() {
                Some(p) if !p.as_os_str().is_empty() => p,
                _ => Path::new("."),
            };
            File::open(parent)?.sync_all()?;
        }
        Ok(FileStorage { file })
    }
}

impl Storage for FileStorage {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

/// A shared in-memory byte buffer, so the bytes outlive the [`Storage`]
/// handle that wrote them (simulating media that survives a crash).
pub type SharedBytes = Arc<Mutex<Vec<u8>>>;

/// An infallible in-memory [`Storage`] over a [`SharedBytes`] buffer.
#[derive(Debug, Default)]
pub struct MemStorage {
    buf: SharedBytes,
}

impl MemStorage {
    /// A fresh empty buffer.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// A storage view over an existing buffer (e.g. bytes surviving a
    /// simulated crash).
    pub fn with_bytes(buf: SharedBytes) -> MemStorage {
        MemStorage { buf }
    }

    /// The shared buffer handle; clone it before dropping the storage to
    /// keep the "media" alive across a simulated crash.
    pub fn bytes(&self) -> SharedBytes {
        Arc::clone(&self.buf)
    }
}

impl Storage for MemStorage {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        lock(&self.buf).extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(lock(&self.buf).len() as u64)
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        Ok(lock(&self.buf).clone())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut buf = lock(&self.buf);
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len < buf.len() {
            buf.truncate(len);
        }
        Ok(())
    }
}

/// A deterministic fault schedule for [`FaultStorage`].
///
/// All fields default to "no fault"; a torture test constructs one plan
/// per enumerated crash point.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// After this many appended bytes, appends fail. The failing append
    /// persists only the bytes that fit under the budget (a torn write).
    pub fail_after_bytes: Option<u64>,
    /// When set, [`Storage::sync`] fails once the write budget is
    /// exhausted (otherwise only appends fail).
    pub fail_sync: bool,
    /// Fail every [`Storage::read_all`] / [`Storage::len`] call.
    pub fail_reads: bool,
    /// After the write fault trips, XOR the byte at this offset with
    /// 0xFF (a bit-flipped torn tail). Out-of-range offsets are ignored.
    pub corrupt_at: Option<u64>,
    /// When true the write fault is transient (an ENOSPC/EIO that
    /// clears): the failing append still lands as a torn write, but the
    /// fault un-trips afterwards and later writes succeed. Otherwise
    /// the fault is permanent — once tripped, every later write
    /// (append, sync when planned, truncate) fails, like dead media.
    pub transient: bool,
}

/// A [`MemStorage`] that injects the faults of a [`FaultPlan`].
///
/// Faults are deterministic: the same plan over the same append sequence
/// always damages the same byte of the same record.
#[derive(Debug)]
pub struct FaultStorage {
    inner: MemStorage,
    plan: FaultPlan,
    written: u64,
    /// Set once the write budget is exhausted; all later writes fail.
    tripped: bool,
}

impl FaultStorage {
    /// A faulty storage over a fresh buffer.
    pub fn new(plan: FaultPlan) -> FaultStorage {
        FaultStorage {
            inner: MemStorage::new(),
            plan,
            written: 0,
            tripped: false,
        }
    }

    /// A faulty storage over existing bytes (fault injection on top of a
    /// previous crash's survivors).
    pub fn with_bytes(buf: SharedBytes, plan: FaultPlan) -> FaultStorage {
        FaultStorage {
            inner: MemStorage::with_bytes(buf),
            plan,
            written: 0,
            tripped: false,
        }
    }

    /// The shared buffer handle (the surviving "media").
    pub fn bytes(&self) -> SharedBytes {
        self.inner.bytes()
    }

    /// Whether the write fault has tripped.
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    fn fault(&self, what: &str) -> io::Error {
        io::Error::other(format!("injected fault: {what}"))
    }

    /// Applies the post-trip corruption, if planned.
    fn corrupt(&mut self) {
        if let Some(offset) = self.plan.corrupt_at {
            let buf = self.inner.bytes();
            let mut buf = lock(&buf);
            if let Ok(idx) = usize::try_from(offset) {
                if let Some(byte) = buf.get_mut(idx) {
                    *byte ^= 0xFF;
                }
            }
        }
    }
}

impl Storage for FaultStorage {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        if self.tripped {
            return Err(self.fault("append after write fault"));
        }
        let budget = match self.plan.fail_after_bytes {
            Some(limit) => limit.saturating_sub(self.written),
            None => u64::MAX,
        };
        if (data.len() as u64) <= budget {
            self.written += data.len() as u64;
            return self.inner.append(data);
        }
        // Torn write: the prefix that fits under the budget lands, the
        // rest is lost, and the fault trips (permanently, unless the
        // plan marks it transient).
        let keep = usize::try_from(budget)
            .unwrap_or(usize::MAX)
            .min(data.len());
        let _ = self.inner.append(&data[..keep]);
        self.written += keep as u64;
        if self.plan.transient {
            self.plan.fail_after_bytes = None;
        } else {
            self.tripped = true;
        }
        self.corrupt();
        Err(self.fault("write budget exhausted"))
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.tripped && self.plan.fail_sync {
            return Err(self.fault("sync after write fault"));
        }
        self.inner.sync()
    }

    fn len(&mut self) -> io::Result<u64> {
        if self.plan.fail_reads {
            return Err(self.fault("len"));
        }
        self.inner.len()
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        if self.plan.fail_reads {
            return Err(self.fault("read_all"));
        }
        self.inner.read_all()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if self.tripped {
            return Err(self.fault("truncate after write fault"));
        }
        self.inner.truncate(len)
    }
}

/// Acquires a mutex, recovering from poisoning (the buffer is plain
/// bytes; any state is valid).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trips() {
        let mut s = MemStorage::new();
        s.append(b"hello ").unwrap();
        s.append(b"world").unwrap();
        s.sync().unwrap();
        assert_eq!(s.len().unwrap(), 11);
        assert_eq!(s.read_all().unwrap(), b"hello world");
        s.truncate(5).unwrap();
        assert_eq!(s.read_all().unwrap(), b"hello");
        // Truncating beyond the end is a no-op.
        s.truncate(100).unwrap();
        assert_eq!(s.len().unwrap(), 5);
    }

    #[test]
    fn shared_bytes_survive_the_handle() {
        let s = MemStorage::new();
        let bytes = s.bytes();
        {
            let mut s = s;
            s.append(b"durable").unwrap();
        } // "crash": the storage handle is gone
        let mut reopened = MemStorage::with_bytes(bytes);
        assert_eq!(reopened.read_all().unwrap(), b"durable");
    }

    #[test]
    fn file_storage_round_trips() {
        let path = std::env::temp_dir().join(format!("bmb-storage-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut s = FileStorage::open(&path).unwrap();
            s.append(b"abc").unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = FileStorage::open(&path).unwrap();
            assert_eq!(s.read_all().unwrap(), b"abc");
            s.append(b"def").unwrap();
            s.truncate(4).unwrap();
            assert_eq!(s.read_all().unwrap(), b"abcd");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_storage_tears_the_failing_write() {
        let mut s = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(4),
            ..FaultPlan::default()
        });
        s.append(b"ab").unwrap();
        let err = s.append(b"cdef").unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        // Only the budgeted prefix landed.
        assert_eq!(s.read_all().unwrap(), b"abcd");
        assert!(s.is_tripped());
        assert!(s.append(b"x").is_err());
        assert!(s.truncate(0).is_err(), "dead media fails truncate too");
    }

    #[test]
    fn transient_fault_tears_once_then_heals() {
        let mut s = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(4),
            transient: true,
            ..FaultPlan::default()
        });
        s.append(b"ab").unwrap();
        assert!(s.append(b"cdef").is_err());
        assert_eq!(s.read_all().unwrap(), b"abcd", "the failing write tears");
        assert!(!s.is_tripped());
        // The fault has cleared: repairs and later writes succeed.
        s.truncate(2).unwrap();
        s.append(b"xy").unwrap();
        assert_eq!(s.read_all().unwrap(), b"abxy");
    }

    #[test]
    fn fault_storage_corrupts_after_trip() {
        let mut s = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(3),
            corrupt_at: Some(1),
            ..FaultPlan::default()
        });
        assert!(s.append(b"abcdef").is_err());
        assert_eq!(s.read_all().unwrap(), [b'a', b'b' ^ 0xFF, b'c']);
    }

    #[test]
    fn fault_storage_read_and_sync_faults() {
        let mut s = FaultStorage::new(FaultPlan {
            fail_reads: true,
            ..FaultPlan::default()
        });
        assert!(s.read_all().is_err());
        assert!(s.len().is_err());

        let mut s = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(0),
            fail_sync: true,
            ..FaultPlan::default()
        });
        assert!(s.append(b"a").is_err());
        assert!(s.sync().is_err());
    }
}

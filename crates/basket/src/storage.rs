//! Pluggable byte-log storage for the write-ahead log.
//!
//! The WAL ([`crate::wal`]) is written against the [`Storage`] trait — an
//! append-only byte log with an explicit durability barrier — so the same
//! record format and recovery code runs over three backends:
//!
//! * [`FileStorage`] — a real file (`bmb serve --wal PATH`);
//! * [`MemStorage`] — an in-memory buffer behind a shared handle, so a
//!   test can "crash" a store (drop it) and re-open the surviving bytes;
//! * [`FaultStorage`] — a [`MemStorage`] wrapped in a deterministic
//!   [`FaultPlan`]: fail after N appended bytes (with the failing append
//!   landing as a short, torn write, either permanent like dead media or
//!   transient like an ENOSPC that clears), fail reads, and flip a byte
//!   at a chosen offset. Every crash point a disk can produce is
//!   enumerable, which is what the crash-recovery torture test iterates
//!   over.
//!
//! Fault semantics mirror real disks: a failed append may have persisted
//! a *prefix* of the data (torn write), a failed sync leaves the tail in
//! an unknown state, and corruption flips bits without changing length.
//! Recovery must treat all of these as a damaged tail, never as damage to
//! records whose sync was acknowledged.
//!
//! Checkpointed durability needs more than one log: WAL segments, snapshot
//! files, and a manifest live in one *directory* and are created, renamed,
//! and deleted as a group. The [`Dir`] trait models that directory with
//! the same three-backend scheme — [`FsDir`] over a real directory,
//! [`MemDir`] with a live-vs-durable entry model (names mutated since the
//! last [`Dir::sync`] revert at a simulated crash, which is what catches a
//! missing fsync-parent-dir), and [`FaultDir`] injecting a [`DirFaultPlan`]
//! (a shared torn-write byte budget plus planned create/rename/delete/
//! dir-sync failures).

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// An append-only byte log with an explicit durability barrier.
///
/// Implementations must guarantee that once [`Storage::sync`] returns
/// `Ok`, every previously appended byte survives a crash; bytes appended
/// since the last successful sync may survive wholly, partially (a torn
/// tail), or not at all.
pub trait Storage: Send {
    /// Appends `data` at the end of the log.
    ///
    /// # Errors
    ///
    /// On failure a *prefix* of `data` may have been persisted (a torn
    /// write); callers must assume the tail is damaged.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;

    /// Durability barrier: all previously appended bytes survive a crash
    /// once this returns `Ok`.
    ///
    /// # Errors
    ///
    /// Propagates media failures; the unsynced tail state is unknown.
    fn sync(&mut self) -> io::Result<()>;

    /// Current log length in bytes.
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    fn len(&mut self) -> io::Result<u64>;

    /// Whether the log holds no bytes at all.
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    fn is_empty(&mut self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Reads the entire log (recovery replay).
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;

    /// Truncates the log to `len` bytes (recovery repair of a torn tail).
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// A [`Storage`] over a real file.
#[derive(Debug)]
pub struct FileStorage {
    file: File,
}

impl FileStorage {
    /// Opens (creating if absent) the log file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates open failures.
    pub fn open(path: &Path) -> io::Result<FileStorage> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        // A freshly created file's directory entry is not durable until
        // the parent directory itself is synced; without this, a crash
        // shortly after creation can lose the file — and every synced
        // append in it — on some filesystems.
        #[cfg(unix)]
        {
            let parent = match path.parent() {
                Some(p) if !p.as_os_str().is_empty() => p,
                _ => Path::new("."),
            };
            File::open(parent)?.sync_all()?;
        }
        Ok(FileStorage { file })
    }
}

impl Storage for FileStorage {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

/// A shared in-memory byte buffer, so the bytes outlive the [`Storage`]
/// handle that wrote them (simulating media that survives a crash).
pub type SharedBytes = Arc<Mutex<Vec<u8>>>;

/// An infallible in-memory [`Storage`] over a [`SharedBytes`] buffer.
///
/// The lock-discipline pass identifies locks by their declared name,
/// crate-wide — this one is `bytes`, distinct from the directory-level
/// `entries`/`faults` locks and the WAL's `state`/`wal`/`dir`.
#[derive(Debug, Default)]
pub struct MemStorage {
    bytes: SharedBytes,
}

impl MemStorage {
    /// A fresh empty buffer.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// A storage view over an existing buffer (e.g. bytes surviving a
    /// simulated crash).
    pub fn with_bytes(bytes: SharedBytes) -> MemStorage {
        MemStorage { bytes }
    }

    /// The shared buffer handle; clone it before dropping the storage to
    /// keep the "media" alive across a simulated crash.
    pub fn bytes(&self) -> SharedBytes {
        Arc::clone(&self.bytes)
    }
}

impl Storage for MemStorage {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        lock(&self.bytes).extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(lock(&self.bytes).len() as u64)
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        Ok(lock(&self.bytes).clone())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        // In-memory Vec ops, not real I/O. // lock:allow(io)
        let mut bytes = lock(&self.bytes);
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len < bytes.len() {
            bytes.truncate(len);
        }
        Ok(())
    }
}

/// A deterministic fault schedule for [`FaultStorage`].
///
/// All fields default to "no fault"; a torture test constructs one plan
/// per enumerated crash point.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// After this many appended bytes, appends fail. The failing append
    /// persists only the bytes that fit under the budget (a torn write).
    pub fail_after_bytes: Option<u64>,
    /// When set, [`Storage::sync`] fails once the write budget is
    /// exhausted (otherwise only appends fail).
    pub fail_sync: bool,
    /// Fail every [`Storage::read_all`] / [`Storage::len`] call.
    pub fail_reads: bool,
    /// After the write fault trips, XOR the byte at this offset with
    /// 0xFF (a bit-flipped torn tail). Out-of-range offsets are ignored.
    pub corrupt_at: Option<u64>,
    /// When true the write fault is transient (an ENOSPC/EIO that
    /// clears): the failing append still lands as a torn write, but the
    /// fault un-trips afterwards and later writes succeed. Otherwise
    /// the fault is permanent — once tripped, every later write
    /// (append, sync when planned, truncate) fails, like dead media.
    pub transient: bool,
    /// Fail every [`Storage::truncate`] call (independently of the
    /// write-budget trip). Exercises the WAL's repair-failure path: a
    /// torn tail that cannot be cut away must degrade the log rather
    /// than let a later append land behind the damage.
    pub fail_truncate: bool,
    /// At-rest corruption: on the *next* [`Storage::read_all`], XOR the
    /// media byte at this offset with 0xFF — persistently, so every
    /// later read sees the same rot. Unlike [`FaultPlan::corrupt_at`]
    /// this fires without any write fault, modelling bit rot in bytes
    /// whose sync was long since acknowledged (the scrub case).
    /// Out-of-range offsets are ignored. Fires once.
    pub corrupt_at_rest: Option<u64>,
}

/// A [`MemStorage`] that injects the faults of a [`FaultPlan`].
///
/// Faults are deterministic: the same plan over the same append sequence
/// always damages the same byte of the same record.
#[derive(Debug)]
pub struct FaultStorage {
    inner: MemStorage,
    plan: FaultPlan,
    written: u64,
    /// Set once the write budget is exhausted; all later writes fail.
    tripped: bool,
}

impl FaultStorage {
    /// A faulty storage over a fresh buffer.
    pub fn new(plan: FaultPlan) -> FaultStorage {
        FaultStorage {
            inner: MemStorage::new(),
            plan,
            written: 0,
            tripped: false,
        }
    }

    /// A faulty storage over existing bytes (fault injection on top of a
    /// previous crash's survivors).
    pub fn with_bytes(bytes: SharedBytes, plan: FaultPlan) -> FaultStorage {
        FaultStorage {
            inner: MemStorage::with_bytes(bytes),
            plan,
            written: 0,
            tripped: false,
        }
    }

    /// The shared buffer handle (the surviving "media").
    pub fn bytes(&self) -> SharedBytes {
        self.inner.bytes()
    }

    /// Whether the write fault has tripped.
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    fn fault(&self, what: &str) -> io::Error {
        io::Error::other(format!("injected fault: {what}"))
    }

    /// Applies the post-trip corruption, if planned.
    fn corrupt(&mut self) {
        if let Some(offset) = self.plan.corrupt_at {
            let bytes = self.inner.bytes();
            let mut bytes = lock(&bytes);
            if let Ok(idx) = usize::try_from(offset) {
                if let Some(byte) = bytes.get_mut(idx) {
                    *byte ^= 0xFF;
                }
            }
        }
    }
}

impl Storage for FaultStorage {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        if self.tripped {
            return Err(self.fault("append after write fault"));
        }
        let budget = match self.plan.fail_after_bytes {
            Some(limit) => limit.saturating_sub(self.written),
            None => u64::MAX,
        };
        if (data.len() as u64) <= budget {
            self.written += data.len() as u64;
            return self.inner.append(data);
        }
        // Torn write: the prefix that fits under the budget lands, the
        // rest is lost, and the fault trips (permanently, unless the
        // plan marks it transient).
        let keep = usize::try_from(budget)
            .unwrap_or(usize::MAX)
            .min(data.len());
        let _ = self.inner.append(&data[..keep]);
        self.written += keep as u64;
        if self.plan.transient {
            self.plan.fail_after_bytes = None;
        } else {
            self.tripped = true;
        }
        self.corrupt();
        Err(self.fault("write budget exhausted"))
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.tripped && self.plan.fail_sync {
            return Err(self.fault("sync after write fault"));
        }
        self.inner.sync()
    }

    fn len(&mut self) -> io::Result<u64> {
        if self.plan.fail_reads {
            return Err(self.fault("len"));
        }
        self.inner.len()
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        if self.plan.fail_reads {
            return Err(self.fault("read_all"));
        }
        if let Some(offset) = self.plan.corrupt_at_rest.take() {
            // Bit rot lands in the shared media itself, so the damage
            // outlives this handle exactly like rot on a real disk.
            let bytes = self.inner.bytes();
            let mut bytes = lock(&bytes);
            if let Ok(idx) = usize::try_from(offset) {
                if let Some(byte) = bytes.get_mut(idx) {
                    *byte ^= 0xFF;
                }
            }
        }
        self.inner.read_all()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if self.plan.fail_truncate {
            return Err(self.fault("truncate"));
        }
        if self.tripped {
            return Err(self.fault("truncate after write fault"));
        }
        self.inner.truncate(len)
    }
}

/// A flat directory of byte logs: the substrate for checkpointed
/// durability (WAL segments + snapshot files + a manifest live side by
/// side and are created, atomically renamed, and deleted as a group).
///
/// The durability contract mirrors POSIX directories: a created or
/// renamed *name* survives a crash only after [`Dir::sync`] returns
/// `Ok`; file *contents* survive per the file's own [`Storage::sync`].
/// A deleted name may likewise resurrect after a crash until the
/// directory is synced.
pub trait Dir: Send {
    /// The names currently present, in unspecified order.
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    fn list(&mut self) -> io::Result<Vec<String>>;

    /// Opens an existing file for append/read.
    ///
    /// # Errors
    ///
    /// `NotFound` when absent; otherwise propagates media failures.
    fn open(&mut self, name: &str) -> io::Result<Box<dyn Storage>>;

    /// Creates `name` empty (truncating any existing file of that name).
    /// The name is not durable until [`Dir::sync`].
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    fn create(&mut self, name: &str) -> io::Result<Box<dyn Storage>>;

    /// Atomically renames `from` to `to` (replacing `to` if present).
    /// The new name is not durable until [`Dir::sync`].
    ///
    /// # Errors
    ///
    /// Propagates media failures; on failure neither name has changed.
    fn rename(&mut self, from: &str, to: &str) -> io::Result<()>;

    /// Deletes `name`. The deletion is not durable until [`Dir::sync`].
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    fn delete(&mut self, name: &str) -> io::Result<()>;

    /// Current length of `name` in bytes (without opening it for write).
    ///
    /// # Errors
    ///
    /// `NotFound` when absent; otherwise propagates media failures.
    fn file_len(&mut self, name: &str) -> io::Result<u64>;

    /// Durability barrier for the directory *entries* (names): every
    /// earlier create/rename/delete survives a crash once this returns
    /// `Ok`.
    ///
    /// # Errors
    ///
    /// Propagates media failures; entry durability is then unknown.
    fn sync(&mut self) -> io::Result<()>;
}

/// A [`Dir`] over a real filesystem directory.
#[derive(Debug)]
pub struct FsDir {
    path: std::path::PathBuf,
}

impl FsDir {
    /// Opens (creating if absent) the directory at `path`.
    ///
    /// # Errors
    ///
    /// Propagates creation/open failures.
    pub fn open(path: &Path) -> io::Result<FsDir> {
        std::fs::create_dir_all(path)?;
        Ok(FsDir {
            path: path.to_path_buf(),
        })
    }

    fn file_path(&self, name: &str) -> std::path::PathBuf {
        self.path.join(name)
    }
}

impl Dir for FsDir {
    fn list(&mut self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.path)? {
            let entry = entry?;
            if let Ok(name) = entry.file_name().into_string() {
                names.push(name);
            }
        }
        Ok(names)
    }

    fn open(&mut self, name: &str) -> io::Result<Box<dyn Storage>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.file_path(name))?;
        Ok(Box::new(FileStorage { file }))
    }

    fn create(&mut self, name: &str) -> io::Result<Box<dyn Storage>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.file_path(name))?;
        Ok(Box::new(FileStorage { file }))
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(self.file_path(from), self.file_path(to))
    }

    fn delete(&mut self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.file_path(name))
    }

    fn file_len(&mut self, name: &str) -> io::Result<u64> {
        Ok(std::fs::metadata(self.file_path(name))?.len())
    }

    fn sync(&mut self) -> io::Result<()> {
        #[cfg(unix)]
        {
            File::open(&self.path)?.sync_all()?;
        }
        Ok(())
    }
}

/// The shared state behind a [`MemDir`]: the live view of names plus the
/// *durable* view — what a crash would leave behind. Entry mutations
/// (create/rename/delete) touch only the live view; [`Dir::sync`]
/// promotes it wholesale. File contents are [`SharedBytes`] handles
/// shared between both views, so content durability is governed by each
/// file's own [`Storage`] semantics, exactly like a real filesystem.
#[derive(Debug, Default)]
pub struct MemDirState {
    live: std::collections::BTreeMap<String, SharedBytes>,
    durable: std::collections::BTreeMap<String, SharedBytes>,
}

/// A shared handle to a [`MemDirState`]; clone it before dropping the
/// [`MemDir`] to keep the simulated media alive across a crash.
pub type SharedDirState = Arc<Mutex<MemDirState>>;

/// An in-memory [`Dir`] with a crash model for directory entries: names
/// created, renamed, or deleted since the last [`Dir::sync`] revert to
/// their pre-mutation state at a simulated crash ([`MemDir::crashed`]).
/// This is what catches a missing fsync-parent-dir after a rotation or
/// an atomic checkpoint rename.
#[derive(Debug, Default)]
pub struct MemDir {
    entries: SharedDirState,
}

impl MemDir {
    /// A fresh empty directory.
    pub fn new() -> MemDir {
        MemDir::default()
    }

    /// The shared state handle (the surviving "media").
    pub fn state(&self) -> SharedDirState {
        Arc::clone(&self.entries)
    }

    /// A directory view over existing state, *without* simulating a
    /// crash (reopen after clean shutdown).
    pub fn with_state(entries: SharedDirState) -> MemDir {
        MemDir { entries }
    }

    /// Simulates a crash over `state`: the returned directory holds only
    /// the entries that were durable (dir-synced); unsynced creates are
    /// gone, unsynced renames show the old name, unsynced deletes have
    /// resurrected.
    pub fn crashed(entries: &SharedDirState) -> MemDir {
        let durable = lock_state(entries).durable.clone();
        MemDir {
            entries: Arc::new(Mutex::new(MemDirState {
                live: durable.clone(),
                durable,
            })),
        }
    }
}

/// Acquires the dir-state mutex, recovering from poisoning (entry maps
/// are only mutated through panic-free code).
fn lock_state(entries: &SharedDirState) -> MutexGuard<'_, MemDirState> {
    entries.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Dir for MemDir {
    fn list(&mut self) -> io::Result<Vec<String>> {
        Ok(lock_state(&self.entries).live.keys().cloned().collect())
    }

    fn open(&mut self, name: &str) -> io::Result<Box<dyn Storage>> {
        match lock_state(&self.entries).live.get(name) {
            Some(bytes) => Ok(Box::new(MemStorage::with_bytes(Arc::clone(bytes)))),
            None => Err(io::Error::new(io::ErrorKind::NotFound, name.to_string())),
        }
    }

    fn create(&mut self, name: &str) -> io::Result<Box<dyn Storage>> {
        let bytes: SharedBytes = Arc::new(Mutex::new(Vec::new()));
        lock_state(&self.entries)
            .live
            .insert(name.to_string(), Arc::clone(&bytes));
        Ok(Box::new(MemStorage::with_bytes(bytes)))
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        let mut entries = lock_state(&self.entries);
        match entries.live.remove(from) {
            Some(bytes) => {
                entries.live.insert(to.to_string(), bytes);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, from.to_string())),
        }
    }

    fn delete(&mut self, name: &str) -> io::Result<()> {
        match lock_state(&self.entries).live.remove(name) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, name.to_string())),
        }
    }

    // Reading a file's length peeks at its bytes while the directory
    // map is held. // lock:order(entries < bytes)
    fn file_len(&mut self, name: &str) -> io::Result<u64> {
        match lock_state(&self.entries).live.get(name) {
            Some(bytes) => {
                let len = bytes.lock().unwrap_or_else(PoisonError::into_inner).len();
                Ok(len as u64)
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, name.to_string())),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut entries = lock_state(&self.entries);
        entries.durable = entries.live.clone();
        Ok(())
    }
}

/// A deterministic fault schedule for [`FaultDir`].
///
/// Byte faults share one budget across every file written through the
/// directory (the failing write tears, like [`FaultPlan`]); entry
/// faults fire on the Nth call of their kind, 0-based, leaving the
/// directory unchanged (an atomic rename either happens or doesn't).
#[derive(Clone, Copy, Debug, Default)]
pub struct DirFaultPlan {
    /// After this many bytes appended across all files, appends fail;
    /// the failing append lands as a torn write.
    pub fail_after_bytes: Option<u64>,
    /// When true the byte fault clears after tearing (ENOSPC that
    /// resolves); otherwise it trips permanently like dead media.
    pub transient: bool,
    /// Fail the Nth [`Dir::create`] call.
    pub fail_create_at: Option<u64>,
    /// Fail the Nth [`Dir::rename`] call.
    pub fail_rename_at: Option<u64>,
    /// Fail the Nth [`Dir::delete`] call.
    pub fail_delete_at: Option<u64>,
    /// Fail the Nth [`Dir::sync`] call (entry durability then unknown —
    /// the live view keeps the change but a crash reverts it).
    pub fail_dir_sync_at: Option<u64>,
}

/// Shared fault bookkeeping between a [`FaultDir`] and the files it
/// hands out.
#[derive(Debug)]
struct DirFaultState {
    plan: DirFaultPlan,
    written: u64,
    tripped: bool,
    creates: u64,
    renames: u64,
    deletes: u64,
    dir_syncs: u64,
    /// Planned at-rest flips: `(name, offset)` pairs applied (and
    /// consumed) when `name` is next opened for read/scan.
    at_rest: Vec<(String, u64)>,
}

impl DirFaultState {
    fn fault(what: &str) -> io::Error {
        io::Error::other(format!("injected dir fault: {what}"))
    }
}

/// A [`MemDir`] that injects the faults of a [`DirFaultPlan`].
///
/// Deterministic like [`FaultStorage`]: the same plan over the same
/// operation sequence always fails the same call and tears the same
/// byte. Combine with [`MemDir::crashed`] on the underlying state to
/// enumerate crash points through rotation, checkpoint, and retention.
#[derive(Debug)]
pub struct FaultDir {
    inner: MemDir,
    faults: Arc<Mutex<DirFaultState>>,
}

impl FaultDir {
    /// A faulty directory over fresh state.
    pub fn new(plan: DirFaultPlan) -> FaultDir {
        FaultDir::with_dir(MemDir::new(), plan)
    }

    /// Fault injection on top of existing directory state (e.g. the
    /// survivors of a previous crash).
    pub fn with_dir(inner: MemDir, plan: DirFaultPlan) -> FaultDir {
        FaultDir {
            inner,
            faults: Arc::new(Mutex::new(DirFaultState {
                plan,
                written: 0,
                tripped: false,
                creates: 0,
                renames: 0,
                deletes: 0,
                dir_syncs: 0,
                at_rest: Vec::new(),
            })),
        }
    }

    /// The underlying directory state (the surviving "media").
    pub fn dir_state(&self) -> SharedDirState {
        self.inner.state()
    }

    /// Whether the shared write-byte fault has tripped.
    pub fn is_tripped(&self) -> bool {
        lock_fault(&self.faults).tripped
    }

    /// Plans an at-rest byte flip: the next time `name` is opened, the
    /// media byte at `offset` is XORed with 0xFF — persistently, like
    /// bit rot in a file whose sync was acknowledged long ago. The
    /// write path is untouched; this is how scrub tests corrupt a
    /// sealed segment or checkpoint *after* it became durable without
    /// depending on in-flight write timing. Out-of-range offsets and
    /// absent names are ignored. Each planned flip fires once.
    pub fn plan_at_rest_corruption(&self, name: &str, offset: u64) {
        lock_fault(&self.faults)
            .at_rest
            .push((name.to_string(), offset));
    }

    /// Applies (and consumes) every at-rest flip planned for `name`.
    fn apply_at_rest(&mut self, name: &str) {
        let offsets: Vec<u64> = {
            let mut st = lock_fault(&self.faults);
            if st.at_rest.iter().all(|(n, _)| n != name) {
                return;
            }
            let (hit, keep): (Vec<_>, Vec<_>) = st.at_rest.drain(..).partition(|(n, _)| n == name);
            st.at_rest = keep;
            hit.into_iter().map(|(_, offset)| offset).collect()
        };
        let state = self.inner.state();
        let entries = lock_state(&state);
        if let Some(bytes) = entries.live.get(name) {
            // Flips planned media bytes in memory.
            // lock:order(state < bytes) // lock:allow(io)
            let mut bytes = lock(bytes);
            for offset in offsets {
                if let Ok(idx) = usize::try_from(offset) {
                    if let Some(byte) = bytes.get_mut(idx) {
                        *byte ^= 0xFF;
                    }
                }
            }
        }
    }
}

/// Acquires the fault-state mutex, recovering from poisoning.
fn lock_fault(faults: &Arc<Mutex<DirFaultState>>) -> MutexGuard<'_, DirFaultState> {
    faults.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A file handle charged against its [`FaultDir`]'s shared byte budget.
struct FaultFile {
    inner: Box<dyn Storage>,
    faults: Arc<Mutex<DirFaultState>>,
}

impl Storage for FaultFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let keep = {
            let mut st = lock_fault(&self.faults);
            if st.tripped {
                return Err(DirFaultState::fault("append after write fault"));
            }
            let budget = match st.plan.fail_after_bytes {
                Some(limit) => limit.saturating_sub(st.written),
                None => u64::MAX,
            };
            if (data.len() as u64) <= budget {
                st.written += data.len() as u64;
                None
            } else {
                let keep = usize::try_from(budget)
                    .unwrap_or(usize::MAX)
                    .min(data.len());
                st.written += keep as u64;
                if st.plan.transient {
                    st.plan.fail_after_bytes = None;
                } else {
                    st.tripped = true;
                }
                Some(keep)
            }
        };
        match keep {
            None => self.inner.append(data),
            Some(keep) => {
                // Torn write: the prefix under the budget lands.
                let _ = self.inner.append(&data[..keep]);
                Err(DirFaultState::fault("write budget exhausted"))
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if lock_fault(&self.faults).tripped {
            return Err(DirFaultState::fault("sync after write fault"));
        }
        self.inner.sync()
    }

    fn len(&mut self) -> io::Result<u64> {
        self.inner.len()
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.inner.read_all()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if lock_fault(&self.faults).tripped {
            return Err(DirFaultState::fault("truncate after write fault"));
        }
        self.inner.truncate(len)
    }
}

impl Dir for FaultDir {
    fn list(&mut self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn open(&mut self, name: &str) -> io::Result<Box<dyn Storage>> {
        self.apply_at_rest(name);
        let inner = self.inner.open(name)?;
        Ok(Box::new(FaultFile {
            inner,
            faults: Arc::clone(&self.faults),
        }))
    }

    fn create(&mut self, name: &str) -> io::Result<Box<dyn Storage>> {
        {
            let mut st = lock_fault(&self.faults);
            let n = st.creates;
            st.creates += 1;
            if st.plan.fail_create_at == Some(n) {
                return Err(DirFaultState::fault("create"));
            }
        }
        let inner = self.inner.create(name)?;
        Ok(Box::new(FaultFile {
            inner,
            faults: Arc::clone(&self.faults),
        }))
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        {
            let mut st = lock_fault(&self.faults);
            let n = st.renames;
            st.renames += 1;
            if st.plan.fail_rename_at == Some(n) {
                return Err(DirFaultState::fault("rename"));
            }
        }
        self.inner.rename(from, to)
    }

    fn delete(&mut self, name: &str) -> io::Result<()> {
        {
            let mut st = lock_fault(&self.faults);
            let n = st.deletes;
            st.deletes += 1;
            if st.plan.fail_delete_at == Some(n) {
                return Err(DirFaultState::fault("delete"));
            }
        }
        self.inner.delete(name)
    }

    fn file_len(&mut self, name: &str) -> io::Result<u64> {
        self.inner.file_len(name)
    }

    fn sync(&mut self) -> io::Result<()> {
        {
            let mut st = lock_fault(&self.faults);
            let n = st.dir_syncs;
            st.dir_syncs += 1;
            if st.plan.fail_dir_sync_at == Some(n) {
                return Err(DirFaultState::fault("dir sync"));
            }
        }
        self.inner.sync()
    }
}

/// Acquires a mutex, recovering from poisoning (the buffer is plain
/// bytes; any state is valid).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trips() {
        let mut s = MemStorage::new();
        s.append(b"hello ").unwrap();
        s.append(b"world").unwrap();
        s.sync().unwrap();
        assert_eq!(s.len().unwrap(), 11);
        assert_eq!(s.read_all().unwrap(), b"hello world");
        s.truncate(5).unwrap();
        assert_eq!(s.read_all().unwrap(), b"hello");
        // Truncating beyond the end is a no-op.
        s.truncate(100).unwrap();
        assert_eq!(s.len().unwrap(), 5);
    }

    #[test]
    fn shared_bytes_survive_the_handle() {
        let s = MemStorage::new();
        let bytes = s.bytes();
        {
            let mut s = s;
            s.append(b"durable").unwrap();
        } // "crash": the storage handle is gone
        let mut reopened = MemStorage::with_bytes(bytes);
        assert_eq!(reopened.read_all().unwrap(), b"durable");
    }

    #[test]
    fn file_storage_round_trips() {
        let path = std::env::temp_dir().join(format!("bmb-storage-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut s = FileStorage::open(&path).unwrap();
            s.append(b"abc").unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = FileStorage::open(&path).unwrap();
            assert_eq!(s.read_all().unwrap(), b"abc");
            s.append(b"def").unwrap();
            s.truncate(4).unwrap();
            assert_eq!(s.read_all().unwrap(), b"abcd");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_storage_tears_the_failing_write() {
        let mut s = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(4),
            ..FaultPlan::default()
        });
        s.append(b"ab").unwrap();
        let err = s.append(b"cdef").unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        // Only the budgeted prefix landed.
        assert_eq!(s.read_all().unwrap(), b"abcd");
        assert!(s.is_tripped());
        assert!(s.append(b"x").is_err());
        assert!(s.truncate(0).is_err(), "dead media fails truncate too");
    }

    #[test]
    fn transient_fault_tears_once_then_heals() {
        let mut s = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(4),
            transient: true,
            ..FaultPlan::default()
        });
        s.append(b"ab").unwrap();
        assert!(s.append(b"cdef").is_err());
        assert_eq!(s.read_all().unwrap(), b"abcd", "the failing write tears");
        assert!(!s.is_tripped());
        // The fault has cleared: repairs and later writes succeed.
        s.truncate(2).unwrap();
        s.append(b"xy").unwrap();
        assert_eq!(s.read_all().unwrap(), b"abxy");
    }

    #[test]
    fn fault_storage_corrupts_after_trip() {
        let mut s = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(3),
            corrupt_at: Some(1),
            ..FaultPlan::default()
        });
        assert!(s.append(b"abcdef").is_err());
        assert_eq!(s.read_all().unwrap(), [b'a', b'b' ^ 0xFF, b'c']);
    }

    #[test]
    fn fault_storage_read_and_sync_faults() {
        let mut s = FaultStorage::new(FaultPlan {
            fail_reads: true,
            ..FaultPlan::default()
        });
        assert!(s.read_all().is_err());
        assert!(s.len().is_err());

        let mut s = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(0),
            fail_sync: true,
            ..FaultPlan::default()
        });
        assert!(s.append(b"a").is_err());
        assert!(s.sync().is_err());
    }

    #[test]
    fn planned_truncate_fault_fails_only_truncate() {
        let mut s = FaultStorage::new(FaultPlan {
            fail_truncate: true,
            ..FaultPlan::default()
        });
        s.append(b"abc").unwrap();
        assert!(s.truncate(1).is_err(), "planned truncate fault");
        // Appends and reads are unaffected.
        s.append(b"d").unwrap();
        assert_eq!(s.read_all().unwrap(), b"abcd");
    }

    #[test]
    fn at_rest_corruption_fires_on_next_read() {
        let mut s = FaultStorage::new(FaultPlan {
            corrupt_at_rest: Some(1),
            ..FaultPlan::default()
        });
        // The write path is untouched: appends and syncs succeed.
        s.append(b"abc").unwrap();
        s.sync().unwrap();
        assert_eq!(s.read_all().unwrap(), [b'a', b'b' ^ 0xFF, b'c']);
        // The rot is persistent media damage, not a transient read
        // error: a second read sees the same bytes (no double flip).
        assert_eq!(s.read_all().unwrap(), [b'a', b'b' ^ 0xFF, b'c']);
        // ...and it survives the handle, like a real disk.
        let bytes = s.bytes();
        drop(s);
        let mut reopened = MemStorage::with_bytes(bytes);
        assert_eq!(reopened.read_all().unwrap(), [b'a', b'b' ^ 0xFF, b'c']);

        // An out-of-range offset is ignored.
        let mut s = FaultStorage::new(FaultPlan {
            corrupt_at_rest: Some(100),
            ..FaultPlan::default()
        });
        s.append(b"xy").unwrap();
        assert_eq!(s.read_all().unwrap(), b"xy");
    }

    #[test]
    fn fault_dir_at_rest_corruption_flips_on_open() {
        let mut d = FaultDir::new(DirFaultPlan::default());
        let mut f = d.create("sealed").unwrap();
        f.append(b"synced-data").unwrap();
        f.sync().unwrap();
        d.sync().unwrap();
        drop(f);

        d.plan_at_rest_corruption("sealed", 0);
        d.plan_at_rest_corruption("sealed", 7);
        d.plan_at_rest_corruption("absent", 0); // harmless
        let mut expect = b"synced-data".to_vec();
        expect[0] ^= 0xFF;
        expect[7] ^= 0xFF;
        assert_eq!(d.open("sealed").unwrap().read_all().unwrap(), expect);
        // The flips fired once; a later open sees the same rot.
        assert_eq!(d.open("sealed").unwrap().read_all().unwrap(), expect);
        // A file the plan never names is untouched.
        let mut g = d.create("clean").unwrap();
        g.append(b"ok").unwrap();
        assert_eq!(d.open("clean").unwrap().read_all().unwrap(), b"ok");
    }

    #[test]
    fn mem_dir_round_trips_entries() {
        let mut d = MemDir::new();
        let mut f = d.create("a").unwrap();
        f.append(b"hello").unwrap();
        f.sync().unwrap();
        d.sync().unwrap();
        assert_eq!(d.list().unwrap(), vec!["a".to_string()]);
        assert_eq!(d.file_len("a").unwrap(), 5);
        d.rename("a", "b").unwrap();
        assert_eq!(d.list().unwrap(), vec!["b".to_string()]);
        assert_eq!(d.open("b").unwrap().read_all().unwrap(), b"hello");
        assert!(d.open("a").is_err(), "old name is gone after rename");
        d.delete("b").unwrap();
        assert!(d.list().unwrap().is_empty());
        assert!(d.delete("b").is_err(), "double delete is NotFound");
    }

    #[test]
    fn mem_dir_crash_reverts_unsynced_entry_mutations() {
        let mut d = MemDir::new();
        let state = d.state();
        d.create("kept").unwrap().append(b"k").unwrap();
        d.sync().unwrap();
        // Mutations after the last dir sync: all must revert at a crash.
        d.create("unsynced").unwrap().append(b"u").unwrap();
        d.rename("kept", "renamed").unwrap();

        let mut crashed = MemDir::crashed(&state);
        let mut names = crashed.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["kept".to_string()], "create + rename reverted");
        assert_eq!(crashed.open("kept").unwrap().read_all().unwrap(), b"k");

        // An unsynced delete resurrects.
        let mut d = MemDir::crashed(&state);
        let state = d.state();
        d.delete("kept").unwrap();
        let mut crashed = MemDir::crashed(&state);
        assert_eq!(crashed.list().unwrap(), vec!["kept".to_string()]);
        // ...and a synced delete sticks.
        let mut d = MemDir::crashed(&state);
        let state = d.state();
        d.delete("kept").unwrap();
        d.sync().unwrap();
        assert!(MemDir::crashed(&state).list().unwrap().is_empty());
    }

    #[test]
    fn fs_dir_round_trips_entries() {
        let root = std::env::temp_dir().join(format!("bmb-fsdir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        {
            let mut d = FsDir::open(&root).unwrap();
            assert!(d.list().unwrap().is_empty());
            let mut f = d.create("x.tmp").unwrap();
            f.append(b"data").unwrap();
            f.sync().unwrap();
            d.rename("x.tmp", "x").unwrap();
            d.sync().unwrap();
            assert_eq!(d.list().unwrap(), vec!["x".to_string()]);
            assert_eq!(d.file_len("x").unwrap(), 4);
            assert_eq!(d.open("x").unwrap().read_all().unwrap(), b"data");
            assert!(d.open("absent").is_err());
            d.delete("x").unwrap();
            assert!(d.list().unwrap().is_empty());
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn fault_dir_fails_planned_entry_ops_without_effect() {
        // Rename fault: the Nth rename fails and neither name changes.
        let mut d = FaultDir::new(DirFaultPlan {
            fail_rename_at: Some(1),
            ..DirFaultPlan::default()
        });
        d.create("a").unwrap();
        d.create("b").unwrap();
        d.rename("a", "a2").unwrap(); // rename #0 succeeds
        assert!(d.rename("b", "b2").is_err(), "rename #1 planned to fail");
        let mut names = d.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["a2".to_string(), "b".to_string()]);
        d.rename("b", "b2").unwrap(); // later renames succeed again

        // Delete fault: the file survives the failed call.
        let mut d = FaultDir::new(DirFaultPlan {
            fail_delete_at: Some(0),
            ..DirFaultPlan::default()
        });
        d.create("keep").unwrap();
        assert!(d.delete("keep").is_err());
        assert_eq!(d.list().unwrap(), vec!["keep".to_string()]);
        d.delete("keep").unwrap();

        // Create fault.
        let mut d = FaultDir::new(DirFaultPlan {
            fail_create_at: Some(0),
            ..DirFaultPlan::default()
        });
        assert!(d.create("nope").is_err());
        assert!(d.list().unwrap().is_empty());
    }

    #[test]
    fn fault_dir_sync_fault_leaves_entries_volatile() {
        let mut d = FaultDir::new(DirFaultPlan {
            fail_dir_sync_at: Some(0),
            ..DirFaultPlan::default()
        });
        let state = d.dir_state();
        d.create("f").unwrap();
        assert!(d.sync().is_err(), "dir sync planned to fail");
        // The entry was never made durable: a crash loses it.
        assert!(MemDir::crashed(&state).list().unwrap().is_empty());
        // A later sync succeeds and makes it durable.
        d.sync().unwrap();
        assert_eq!(
            MemDir::crashed(&state).list().unwrap(),
            vec!["f".to_string()]
        );
    }

    #[test]
    fn fault_dir_byte_budget_spans_files_and_tears() {
        let mut d = FaultDir::new(DirFaultPlan {
            fail_after_bytes: Some(6),
            ..DirFaultPlan::default()
        });
        let mut a = d.create("a").unwrap();
        let mut b = d.create("b").unwrap();
        a.append(b"1234").unwrap(); // 4 of 6 bytes used
        let err = b.append(b"5678").unwrap_err(); // tears at 2 bytes
        assert!(err.to_string().contains("injected dir fault"), "{err}");
        assert_eq!(b.read_all().unwrap(), b"56", "torn prefix landed");
        assert!(d.is_tripped());
        assert!(
            a.append(b"x").is_err(),
            "budget is shared: both handles trip"
        );
        assert!(b.sync().is_err());
        assert!(b.truncate(0).is_err());

        // Transient variant: the tear happens once, then writes heal.
        let mut d = FaultDir::new(DirFaultPlan {
            fail_after_bytes: Some(3),
            transient: true,
            ..DirFaultPlan::default()
        });
        let mut f = d.create("f").unwrap();
        assert!(f.append(b"abcde").is_err());
        assert_eq!(f.read_all().unwrap(), b"abc");
        assert!(!d.is_tripped());
        f.truncate(1).unwrap();
        f.append(b"z").unwrap();
        assert_eq!(f.read_all().unwrap(), b"az");
    }
}

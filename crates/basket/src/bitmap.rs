//! Fixed-width bitmaps and the per-item vertical index.
//!
//! Counting a contingency-table cell needs "how many baskets contain all of
//! P and none of A". With one bitmap per item over the baskets, that is a
//! word-wise AND/AND-NOT sweep plus popcount — the workhorse behind the
//! [`crate::counts::BitmapCounter`].

use crate::database::BasketDatabase;
use crate::item::ItemId;

/// A fixed-length bitmap over `len` positions, packed into `u64` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    len: usize,
    words: Box<[u64]>,
}

impl Bitmap {
    /// An all-zeros bitmap over `len` positions.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            len,
            words: vec![0u64; len.div_ceil(64)].into_boxed_slice(),
        }
    }

    /// An all-ones bitmap over `len` positions.
    pub fn ones(len: usize) -> Self {
        let mut bm = Self::zeros(len);
        for w in bm.words.iter_mut() {
            *w = u64::MAX;
        }
        bm.mask_tail();
        bm
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets position `i` to one.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of range for bitmap of {} bits",
            self.len
        );
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears position `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of range for bitmap of {} bits",
            self.len
        );
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit {i} out of range for bitmap of {} bits",
            self.len
        );
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// In-place AND with `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// In-place AND-NOT with `other` (`self &= !other`).
    pub fn and_not_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// In-place OR with `other`.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place complement (within `len`).
    pub fn not_assign(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// `popcount(self & other)` without materializing the intersection.
    pub fn and_count(&self, other: &Bitmap) -> u64 {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| u64::from((a & b).count_ones()))
            .sum()
    }

    /// Iterates the indexes of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rem = w;
            std::iter::from_fn(move || {
                if rem == 0 {
                    None
                } else {
                    let tz = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Zeroes any bits past `len` in the final word, restoring the invariant
    /// after whole-word operations like `not_assign`.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// A vertical index: one [`Bitmap`] per item, over the baskets of a database.
///
/// `index.item(i)` has bit `b` set iff basket `b` contains item `i`.
#[derive(Clone, Debug)]
pub struct BitmapIndex {
    n_baskets: usize,
    item_bitmaps: Vec<Bitmap>,
}

impl BitmapIndex {
    /// Builds the index with one pass over `db`.
    pub fn build(db: &BasketDatabase) -> Self {
        let n = db.len();
        let k = db.n_items();
        let mut item_bitmaps = vec![Bitmap::zeros(n); k];
        for (b, basket) in db.baskets().enumerate() {
            for &item in basket {
                item_bitmaps[item.index()].set(b);
            }
        }
        BitmapIndex {
            n_baskets: n,
            item_bitmaps,
        }
    }

    /// Number of baskets the index covers.
    pub fn n_baskets(&self) -> usize {
        self.n_baskets
    }

    /// Number of items the index covers.
    pub fn n_items(&self) -> usize {
        self.item_bitmaps.len()
    }

    /// The bitmap for one item.
    ///
    /// # Panics
    ///
    /// Panics if `item` is out of range.
    pub fn item(&self, item: ItemId) -> &Bitmap {
        &self.item_bitmaps[item.index()]
    }

    /// `O(S)`: the number of baskets containing every item of `items`.
    ///
    /// The empty set is contained in every basket. Allocation-free: the
    /// intersection is folded word by word without materializing it — this
    /// sits in the miner's hottest loop.
    pub fn support_count(&self, items: &[ItemId]) -> u64 {
        match items {
            [] => self.n_baskets as u64,
            [single] => self.item(*single).count_ones(),
            [first, rest @ ..] => {
                let first = &self.item_bitmaps[first.index()];
                let mut total = 0u64;
                for w in 0..first.words.len() {
                    let mut word = first.words[w];
                    for item in rest {
                        word &= self.item_bitmaps[item.index()].words[w];
                        if word == 0 {
                            break;
                        }
                    }
                    total += u64::from(word.count_ones());
                }
                total
            }
        }
    }

    /// Counts baskets containing all of `present` and none of `absent` —
    /// exactly one cell of a contingency table.
    pub fn cell_count(&self, present: &[ItemId], absent: &[ItemId]) -> u64 {
        let mut acc = match present {
            [] => Bitmap::ones(self.n_baskets),
            [first, rest @ ..] => {
                let mut acc = self.item(*first).clone();
                for item in rest {
                    acc.and_assign(self.item(*item));
                }
                acc
            }
        };
        for item in absent {
            acc.and_not_assign(self.item(*item));
        }
        acc.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::BasketDatabase;

    #[test]
    fn zeros_ones_and_len() {
        let z = Bitmap::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        let o = Bitmap::ones(130);
        assert_eq!(o.count_ones(), 130);
    }

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::zeros(70);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(69);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(69));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 4);
        b.clear(63);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Bitmap::zeros(10).get(10);
    }

    #[test]
    fn not_assign_masks_tail() {
        let mut b = Bitmap::zeros(65);
        b.not_assign();
        assert_eq!(b.count_ones(), 65);
        b.not_assign();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn boolean_ops() {
        let mut a = Bitmap::zeros(100);
        let mut b = Bitmap::zeros(100);
        for i in (0..100).step_by(2) {
            a.set(i);
        }
        for i in (0..100).step_by(3) {
            b.set(i);
        }
        assert_eq!(a.and_count(&b), 17); // multiples of 6 in [0,100)
        let mut c = a.clone();
        c.and_assign(&b);
        assert_eq!(c.count_ones(), 17);
        let mut d = a.clone();
        d.or_assign(&b);
        assert_eq!(d.count_ones(), 50 + 34 - 17);
        let mut e = a.clone();
        e.and_not_assign(&b);
        assert_eq!(e.count_ones(), 50 - 17);
    }

    #[test]
    fn iter_ones_round_trip() {
        let mut b = Bitmap::zeros(200);
        let positions = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &p in &positions {
            b.set(p);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, positions);
    }

    fn toy_db() -> BasketDatabase {
        // 4 baskets over 3 items:
        //   b0 = {0,1}, b1 = {1}, b2 = {0,2}, b3 = {}
        BasketDatabase::from_id_baskets(3, vec![vec![0, 1], vec![1], vec![0, 2], vec![]])
    }

    #[test]
    fn index_support_counts() {
        let idx = BitmapIndex::build(&toy_db());
        assert_eq!(idx.support_count(&[]), 4);
        assert_eq!(idx.support_count(&[ItemId(0)]), 2);
        assert_eq!(idx.support_count(&[ItemId(1)]), 2);
        assert_eq!(idx.support_count(&[ItemId(2)]), 1);
        assert_eq!(idx.support_count(&[ItemId(0), ItemId(1)]), 1);
        assert_eq!(idx.support_count(&[ItemId(0), ItemId(1), ItemId(2)]), 0);
    }

    #[test]
    fn index_cell_counts() {
        let idx = BitmapIndex::build(&toy_db());
        // Baskets with item 0 but not item 1: only b2.
        assert_eq!(idx.cell_count(&[ItemId(0)], &[ItemId(1)]), 1);
        // Baskets with neither item 0 nor item 1: only b3.
        assert_eq!(idx.cell_count(&[], &[ItemId(0), ItemId(1)]), 1);
        // All four cells of the (0,1) table sum to n.
        let total = idx.cell_count(&[ItemId(0), ItemId(1)], &[])
            + idx.cell_count(&[ItemId(0)], &[ItemId(1)])
            + idx.cell_count(&[ItemId(1)], &[ItemId(0)])
            + idx.cell_count(&[], &[ItemId(0), ItemId(1)]);
        assert_eq!(total, 4);
    }
}

//! Background integrity scrubbing: **verify → quarantine → repair**.
//!
//! The durability layer defends data *in flight* — sync-before-ack WAL
//! appends, CRC-trailed checkpoints, atomic renames — but bytes that
//! were acknowledged long ago can still rot on media. A flipped bit in
//! a sealed segment or checkpoint sits undetected until the next
//! restart, where the recovery ladder silently falls back and discards
//! epochs a healthy replica still has. Since query answers are exact
//! integer supports summed across sealed segments, at-rest damage is a
//! silent-wrong-answer risk, not just a crash risk.
//!
//! [`DurableStore::scrub_pass`] walks the durable artifacts of a
//! directory-mode store — the `GEN` fencing record, the `MANIFEST`,
//! every checkpoint the manifest tracks, and every *sealed* WAL
//! segment — re-verifying magic headers, CRCs, epoch fields, and
//! segment base-epoch chain consistency. The pass is read-only until it
//! finds damage and paces itself with a per-tick byte budget
//! ([`ScrubOptions::max_bytes`] plus the [`ScrubReport::resume_after`]
//! cursor), so a background scrubber never stalls ingest: it takes the
//! checkpoint-state lock (checkpoints and scrubs serialize; appends do
//! not take that lock) and the directory lock only per artifact.
//!
//! On a mismatch the damaged artifact is **quarantined** — evidence is
//! never deleted — and **repaired**:
//!
//! * `GEN` / `MANIFEST` / checkpoints are moved aside
//!   (sync-before-rename) and re-cut from the live store, which holds
//!   the full acknowledged history in memory.
//! * A sealed WAL segment is rebuilt from the epoch range it must
//!   cover: from a configured [`RepairPeer`] (the existing
//!   `replicate_pull` protocol, stamped with this node's generation so
//!   a fenced/stale node can never impose its view on a newer one) or
//!   from the local store. Because replacing a segment must never leave
//!   a window where the name is missing (recovery would refuse to open
//!   across the hole), segments are quarantined by durable *copy* and
//!   then atomically replaced in place.
//! * When neither source can rebuild the range, the pass falls back to
//!   cutting a fresh checkpoint *past the hole* — recovery then skips
//!   the damaged segment entirely — and only if that also fails does
//!   the store degrade loudly ([`DurableStore::is_healthy`] goes
//!   false, appends fail fast, and an `Error` ledger event fires).
//!
//! [`fsck_dir`] is the offline flavor: it validates a durability
//! directory structurally (no store required, geometry-free) and
//! powers `bmb fsck DIR`. [`segment_digests`] computes the logical
//! per-segment digests behind the cluster's `integrity` anti-entropy
//! command: they hash canonical basket *content*, not file bytes, so
//! primaries and followers with identical logical history agree even
//! though their WAL framing differs.

use std::io;
use std::time::Instant;

use bmb_obs::{Counter, Histogram, Registry, Severity};

use crate::checkpoint::{
    checkpoint_name, decode_manifest, encode_manifest, encode_snapshot, parse_checkpoint_name,
    write_atomic, CHECKPOINT_MAGIC, MANIFEST_NAME,
};
use crate::item::ItemId;
use crate::segment::{IncrementalStore, Snapshot, StoreConfig};
use crate::storage::Dir;
use crate::wal::{
    crc32, decode_generation, encode_batch, encode_fence, encode_generation, inspect_wal_bytes,
    lock, parse_segment_name, segment_name, CkptShared, CkptState, DurableStore, GEN_NAME,
    WAL2_MAGIC,
};

/// Name prefix of quarantined artifacts. Quarantine names are never
/// parsed as segments or checkpoints, so recovery ignores them and the
/// evidence survives restarts.
pub const QUARANTINE_PREFIX: &str = "quarantine.";

/// The quarantine name for damaged artifact `original`, disambiguated
/// by a per-directory sequence number so repeated damage to the same
/// artifact keeps every piece of evidence.
pub fn quarantine_name(seq: u64, original: &str) -> String {
    format!("{QUARANTINE_PREFIX}{seq:04}.{original}")
}

/// Why a [`RepairPeer`] fetch yielded no baskets.
#[derive(Debug)]
pub enum PeerError {
    /// The peer holds a newer generation than the one stamped on the
    /// fetch: this node is stale. A stale node must never "repair"
    /// state it may be diverging from; the caller falls back to local
    /// sources or degrades.
    Fenced {
        /// The newer generation the peer reported.
        peer_generation: u64,
    },
    /// The peer could not be reached or answered garbage.
    Unavailable(String),
}

impl std::fmt::Display for PeerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerError::Fenced { peer_generation } => {
                write!(
                    f,
                    "peer fenced the fetch (peer generation {peer_generation})"
                )
            }
            PeerError::Unavailable(e) => write!(f, "peer unavailable: {e}"),
        }
    }
}

/// A replica that can re-serve an epoch range for segment repair —
/// in production an adapter over the `replicate_pull` wire command.
pub trait RepairPeer {
    /// Fetches up to `max_baskets` baskets starting after `after_epoch`
    /// (the same contract as [`DurableStore::ship_after`]), stamping
    /// the request with this node's `generation` so a peer holding a
    /// newer generation refuses with [`PeerError::Fenced`].
    fn fetch_range(
        &mut self,
        after_epoch: u64,
        max_baskets: usize,
        generation: u64,
    ) -> Result<Vec<Vec<ItemId>>, PeerError>;
}

/// A logical content digest of one sealed in-memory segment, the unit
/// of cluster anti-entropy comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentDigest {
    /// The sealed segment's id (ingest order, zero-based).
    pub segment: u64,
    /// Store epoch after the segment's last basket.
    pub end_epoch: u64,
    /// CRC32 over the canonical basket encoding (`len:u32le` +
    /// `id:u32le`s per basket, ingest order).
    pub crc: u32,
}

/// Computes [`SegmentDigest`]s for every sealed segment of `snapshot`
/// ending after `from_epoch`. Digests hash canonical basket *content*
/// (sorted, deduplicated — the in-memory form), not WAL file bytes, so
/// two replicas with the same logical history produce identical
/// digests regardless of how replication framed their WAL records.
pub fn segment_digests(snapshot: &Snapshot, from_epoch: u64) -> Vec<SegmentDigest> {
    let mut out = Vec::new();
    let mut end = 0u64;
    for segment in snapshot.sealed_segments() {
        end += segment.len() as u64;
        if end <= from_epoch {
            continue;
        }
        let mut buf = Vec::new();
        for basket in segment.database().baskets() {
            buf.extend_from_slice(&(basket.len() as u32).to_le_bytes());
            for item in basket {
                buf.extend_from_slice(&item.0.to_le_bytes());
            }
        }
        out.push(SegmentDigest {
            segment: segment.id(),
            end_epoch: end,
            crc: crc32(&buf),
        });
    }
    out
}

/// Rebuilds the exact byte image of a sealed v2 WAL segment from the
/// baskets it covers: header (`BMBWAL2\n` + `base_epoch`), one
/// single-basket batch record per basket, and an epoch fence after
/// every basket whose epoch is a multiple of `segment_capacity` (the
/// seal boundary the writer fences at).
///
/// The image is byte-identical to the pristine segment when ingest
/// appended baskets one at a time in canonical form (sorted, unique
/// item ids) — which is what replication apply and the torture
/// fixtures do. For other ingest framings the image differs in record
/// grouping but replays to the identical store state.
pub fn rebuild_segment_bytes(
    base_epoch: u64,
    baskets: &[Vec<ItemId>],
    segment_capacity: usize,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + baskets.iter().map(|b| 21 + 4 * b.len()).sum::<usize>());
    out.extend_from_slice(WAL2_MAGIC);
    out.extend_from_slice(&base_epoch.to_le_bytes());
    let cap = segment_capacity as u64;
    let mut epoch = base_epoch;
    for basket in baskets {
        epoch += 1;
        frame_record(&mut out, &encode_batch(std::slice::from_ref(basket)));
        if cap > 0 && epoch.is_multiple_of(cap) {
            frame_record(&mut out, &encode_fence(epoch));
        }
    }
    out
}

/// Appends one framed record (`len:u32le crc:u32le payload`).
fn frame_record(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Structurally verifies `GEN` record bytes.
///
/// # Errors
///
/// A one-line damage description (length, magic, or CRC).
pub fn verify_generation_bytes(bytes: &[u8]) -> Result<(), String> {
    match decode_generation(bytes) {
        Some(_) => Ok(()),
        None => Err("damaged generation record (length, magic, or CRC)".to_string()),
    }
}

/// Structurally verifies `MANIFEST` bytes, returning the checkpoint
/// epochs it lists.
///
/// # Errors
///
/// A one-line damage description (length, magic, CRC, or epoch order).
pub fn verify_manifest_bytes(bytes: &[u8]) -> Result<Vec<u64>, String> {
    decode_manifest(bytes)
        .ok_or_else(|| "damaged manifest (length, magic, CRC, or epoch order)".to_string())
}

/// Structurally verifies checkpoint bytes against the epoch its file
/// name claims, and — when the store geometry is known — against the
/// expected item-space size and segment capacity. Walks the basket
/// table to the exact end of the body, so truncation and padding are
/// caught even when the CRC was forged along with the data.
///
/// # Errors
///
/// A one-line damage description.
pub fn verify_checkpoint_bytes(
    name_epoch: u64,
    bytes: &[u8],
    geometry: Option<(usize, usize)>,
) -> Result<(), String> {
    if bytes.len() < 36 {
        return Err(format!("truncated checkpoint ({} bytes)", bytes.len()));
    }
    if &bytes[..8] != CHECKPOINT_MAGIC {
        return Err("bad checkpoint magic".to_string());
    }
    let body_end = bytes.len() - 4;
    let stored = u32::from_le_bytes([
        bytes[body_end],
        bytes[body_end + 1],
        bytes[body_end + 2],
        bytes[body_end + 3],
    ]);
    let actual = crc32(&bytes[..body_end]);
    if stored != actual {
        return Err(format!(
            "checkpoint CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"
        ));
    }
    let read_u64 = |at: usize| {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&bytes[at..at + 8]);
        u64::from_le_bytes(raw)
    };
    let read_u32 = |at: usize| {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&bytes[at..at + 4]);
        u32::from_le_bytes(raw)
    };
    let epoch = read_u64(8);
    if epoch != name_epoch {
        return Err(format!(
            "epoch field {epoch} disagrees with file name epoch {name_epoch}"
        ));
    }
    let k = read_u32(16) as u64;
    let cap = read_u32(20);
    let n = read_u64(24);
    if n != epoch {
        return Err(format!("record count {n} disagrees with epoch {epoch}"));
    }
    if let Some((n_items, capacity)) = geometry {
        if k != n_items as u64 {
            return Err(format!(
                "item space {k} disagrees with store geometry {n_items}"
            ));
        }
        if cap as usize != capacity {
            return Err(format!(
                "segment capacity {cap} disagrees with store geometry {capacity}"
            ));
        }
    }
    let mut pos = 32usize;
    for index in 0..n {
        if pos + 4 > body_end {
            return Err(format!("basket table truncated at basket {index}"));
        }
        let m = read_u32(pos) as usize;
        pos += 4;
        if pos + 4 * m > body_end {
            return Err(format!("basket {index} items truncated"));
        }
        for slot in 0..m {
            if u64::from(read_u32(pos + 4 * slot)) >= k {
                return Err(format!("basket {index} names an out-of-range item"));
            }
        }
        pos += 4 * m;
    }
    if pos != body_end {
        return Err(format!(
            "{} trailing bytes after basket table",
            body_end - pos
        ));
    }
    Ok(())
}

/// Structurally verifies sealed-segment bytes: v2 magic, the expected
/// `base_epoch`, a clean record walk (every CRC intact, no torn tail),
/// and — when known — the exact end epoch the next segment's base
/// demands.
///
/// # Errors
///
/// A one-line damage description.
pub fn verify_segment_bytes(
    bytes: &[u8],
    base_epoch: u64,
    expected_end: Option<u64>,
) -> Result<(), String> {
    let inspection = inspect_wal_bytes(bytes).map_err(|e| e.to_string())?;
    if inspection.format != "v2" {
        return Err("not a v2 segment (v1 magic in a directory-mode store)".to_string());
    }
    match inspection.base_epoch {
        Some(base) if base == base_epoch => {}
        Some(base) => {
            return Err(format!(
                "base epoch {base} disagrees with expected {base_epoch}"
            ));
        }
        None => return Err("torn segment header".to_string()),
    }
    if inspection.diagnosis != "clean" {
        return Err(inspection.diagnosis);
    }
    if let Some(end) = expected_end {
        if inspection.end_epoch != end {
            return Err(format!(
                "segment ends at epoch {}, next segment expects {end}",
                inspection.end_epoch
            ));
        }
    }
    Ok(())
}

/// Pacing knobs for one [`DurableStore::scrub_pass`] tick.
#[derive(Clone, Debug, Default)]
pub struct ScrubOptions {
    /// Stop the tick (leaving [`ScrubReport::resume_after`] set) once
    /// this many bytes have been read. At least one artifact is always
    /// processed so a pass makes progress under any budget. `None`
    /// scans everything in one tick.
    pub max_bytes: Option<u64>,
    /// Resume cursor from a previous tick's report: skip artifacts up
    /// to and including this name. A stale cursor (the artifact was
    /// reclaimed) restarts from the beginning.
    pub resume_after: Option<String>,
}

/// What one [`DurableStore::scrub_pass`] tick did.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// Artifacts read and verified this tick.
    pub artifacts_scanned: u64,
    /// Bytes read off media this tick.
    pub bytes_scanned: u64,
    /// Artifacts that failed verification.
    pub corruptions: u64,
    /// Damaged artifacts successfully rebuilt (including the
    /// re-checkpoint-past-the-hole fallback).
    pub repairs: u64,
    /// Evidence files created under [`QUARANTINE_PREFIX`].
    pub quarantines: u64,
    /// Whether this pass degraded the store (damage that neither a
    /// peer, the local store, nor a fresh checkpoint could outrun).
    pub degraded: bool,
    /// Whether the tick reached the end of the artifact list.
    pub complete: bool,
    /// Cursor for the next tick when `complete` is false.
    pub resume_after: Option<String>,
    /// One line per corruption or repair obstacle, operator-oriented.
    pub findings: Vec<String>,
}

/// One problem [`fsck_dir`] found.
#[derive(Clone, Debug)]
pub struct FsckFinding {
    /// The artifact's file name.
    pub name: String,
    /// A one-line damage description.
    pub detail: String,
}

/// The result of [`fsck_dir`].
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Artifacts examined (GEN, MANIFEST, checkpoints, segments).
    pub artifacts: u64,
    /// Bytes read and verified.
    pub bytes: u64,
    /// Quarantined evidence files present (informational, not damage).
    pub quarantined: u64,
    /// Every verification failure, in directory walk order.
    pub findings: Vec<FsckFinding>,
}

impl FsckReport {
    /// Whether every artifact verified clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Offline, geometry-free structural verification of a durability
/// directory: `GEN` record, `MANIFEST` CRC and epoch order,
/// manifest↔file agreement, every checkpoint's magic/CRC/epoch/basket
/// table, every WAL segment's record walk, and the segment base-epoch
/// chain (gaps are only legal when a valid checkpoint covers them).
/// Read-only: never repairs, renames, or deletes. This is the engine
/// behind `bmb fsck DIR`.
///
/// Note that a torn tail in the *active* (last) segment is reported as
/// a finding: run fsck on a cleanly shut down or recovered directory.
///
/// # Errors
///
/// Only when the directory itself cannot be listed; per-artifact read
/// failures become findings.
pub fn fsck_dir(dir: &mut dyn Dir) -> io::Result<FsckReport> {
    let mut names = dir.list()?;
    names.sort();
    let mut report = FsckReport {
        quarantined: names
            .iter()
            .filter(|n| n.starts_with(QUARANTINE_PREFIX))
            .count() as u64,
        ..FsckReport::default()
    };
    let read = |dir: &mut dyn Dir, name: &str| -> Result<Vec<u8>, String> {
        dir.open(name)
            .and_then(|mut file| file.read_all())
            .map_err(|e| format!("unreadable: {e}"))
    };

    if names.iter().any(|n| n == GEN_NAME) {
        report.artifacts += 1;
        match read(dir, GEN_NAME) {
            Ok(bytes) => {
                report.bytes += bytes.len() as u64;
                if let Err(detail) = verify_generation_bytes(&bytes) {
                    report.findings.push(FsckFinding {
                        name: GEN_NAME.to_string(),
                        detail,
                    });
                }
            }
            Err(detail) => report.findings.push(FsckFinding {
                name: GEN_NAME.to_string(),
                detail,
            }),
        }
    }

    let mut manifest_epochs: Vec<u64> = Vec::new();
    if names.iter().any(|n| n == MANIFEST_NAME) {
        report.artifacts += 1;
        match read(dir, MANIFEST_NAME) {
            Ok(bytes) => {
                report.bytes += bytes.len() as u64;
                match verify_manifest_bytes(&bytes) {
                    Ok(epochs) => manifest_epochs = epochs,
                    Err(detail) => report.findings.push(FsckFinding {
                        name: MANIFEST_NAME.to_string(),
                        detail,
                    }),
                }
            }
            Err(detail) => report.findings.push(FsckFinding {
                name: MANIFEST_NAME.to_string(),
                detail,
            }),
        }
    }

    let mut valid_ckpts: Vec<u64> = Vec::new();
    for name in &names {
        let Some(epoch) = parse_checkpoint_name(name) else {
            continue;
        };
        report.artifacts += 1;
        match read(dir, name) {
            Ok(bytes) => {
                report.bytes += bytes.len() as u64;
                match verify_checkpoint_bytes(epoch, &bytes, None) {
                    Ok(()) => valid_ckpts.push(epoch),
                    Err(detail) => report.findings.push(FsckFinding {
                        name: name.clone(),
                        detail,
                    }),
                }
            }
            Err(detail) => report.findings.push(FsckFinding {
                name: name.clone(),
                detail,
            }),
        }
    }
    for epoch in &manifest_epochs {
        if !valid_ckpts.contains(epoch) {
            report.findings.push(FsckFinding {
                name: MANIFEST_NAME.to_string(),
                detail: format!("manifest names checkpoint epoch {epoch} with no valid file"),
            });
        }
    }

    let newest_ckpt = valid_ckpts.iter().copied().max().unwrap_or(0);
    let mut segments: Vec<(u64, &String)> = names
        .iter()
        .filter_map(|n| parse_segment_name(n).map(|index| (index, n)))
        .collect();
    segments.sort_by_key(|(index, _)| *index);
    // The epoch the chain has provably covered so far; `None` after a
    // damaged segment whose end cannot be trusted.
    let mut covered: Option<u64> = Some(0);
    for (_, name) in segments {
        report.artifacts += 1;
        let bytes = match read(dir, name) {
            Ok(bytes) => bytes,
            Err(detail) => {
                report.findings.push(FsckFinding {
                    name: name.clone(),
                    detail,
                });
                covered = None;
                continue;
            }
        };
        report.bytes += bytes.len() as u64;
        let inspection = match inspect_wal_bytes(&bytes) {
            Ok(inspection) => inspection,
            Err(e) => {
                report.findings.push(FsckFinding {
                    name: name.clone(),
                    detail: e.to_string(),
                });
                covered = None;
                continue;
            }
        };
        if inspection.format != "v2" {
            report.findings.push(FsckFinding {
                name: name.clone(),
                detail: "v1 WAL magic in a directory-mode store".to_string(),
            });
            covered = None;
            continue;
        }
        let Some(base) = inspection.base_epoch else {
            report.findings.push(FsckFinding {
                name: name.clone(),
                detail: "torn segment header".to_string(),
            });
            covered = None;
            continue;
        };
        if let Some(cum) = covered {
            if base < cum {
                report.findings.push(FsckFinding {
                    name: name.clone(),
                    detail: format!("base epoch {base} overlaps already-covered epoch {cum}"),
                });
            } else if base > cum && base > newest_ckpt {
                report.findings.push(FsckFinding {
                    name: name.clone(),
                    detail: format!(
                        "chain gap: base epoch {base} past covered epoch {cum} with no checkpoint bridging it"
                    ),
                });
            }
        }
        if inspection.diagnosis != "clean" {
            report.findings.push(FsckFinding {
                name: name.clone(),
                detail: inspection.diagnosis.clone(),
            });
            covered = None;
            continue;
        }
        covered = Some(inspection.end_epoch);
    }
    Ok(report)
}

/// Handle bundle for the scrub metrics (`bmb_basket_scrub_*`); cells
/// live in the store's registry, so repeated registration re-fetches.
struct ScrubMetrics {
    passes: Counter,
    bytes: Counter,
    corruptions: Counter,
    repairs: Counter,
    quarantines: Counter,
    duration_us: Histogram,
}

impl ScrubMetrics {
    fn register(registry: &Registry) -> ScrubMetrics {
        ScrubMetrics {
            passes: registry.counter(
                "bmb_basket_scrub_passes_total",
                "Completed scrub ticks (including clean ones).",
            ),
            bytes: registry.counter(
                "bmb_basket_scrub_bytes_total",
                "Artifact bytes read and re-verified by scrub.",
            ),
            corruptions: registry.counter(
                "bmb_basket_scrub_corruptions_total",
                "Artifacts that failed at-rest verification.",
            ),
            repairs: registry.counter(
                "bmb_basket_scrub_repairs_total",
                "Damaged artifacts successfully rebuilt.",
            ),
            quarantines: registry.counter(
                "bmb_basket_scrub_quarantines_total",
                "Evidence files created for damaged artifacts.",
            ),
            duration_us: registry.histogram(
                "bmb_basket_scrub_duration_us",
                "Wall time of one scrub tick in microseconds.",
            ),
        }
    }
}

/// One durable artifact the scrub pass verifies, in walk order.
enum Artifact {
    Generation,
    Manifest,
    Checkpoint(u64),
    Segment { index: u64, base: u64, end: u64 },
}

impl Artifact {
    fn name(&self) -> String {
        match self {
            Artifact::Generation => GEN_NAME.to_string(),
            Artifact::Manifest => MANIFEST_NAME.to_string(),
            Artifact::Checkpoint(epoch) => checkpoint_name(*epoch),
            Artifact::Segment { index, .. } => segment_name(*index),
        }
    }
}

/// Moves a damaged artifact to quarantine. The file's bytes are synced
/// first: the damaged content *is* the evidence, and it must be pinned
/// on media before the rename publishes the new name — otherwise a
/// crash could lose both the original and the quarantine copy.
fn quarantine_move(dir: &mut dyn Dir, name: &str, qname: &str) -> io::Result<()> {
    let mut file = dir.open(name)?;
    file.sync()?;
    dir.rename(name, qname)?;
    dir.sync()
}

/// Quarantines a damaged artifact by durable *copy*, leaving the
/// original name in place. Used for WAL segments, where a missing name
/// — even transiently — would make a concurrent crash unrecoverable
/// without the peer; the damaged original is atomically replaced by
/// the rebuilt image afterwards.
fn quarantine_copy(dir: &mut dyn Dir, qname: &str, damaged: &[u8]) -> io::Result<()> {
    write_atomic(dir, qname, damaged)
}

/// Fetches exactly `needed` baskets after `base` from a repair peer,
/// looping over its batch size. Returns `None` (with a finding) when
/// the peer fences, disappears, or runs out of history.
fn fetch_from_peer(
    peer: &mut dyn RepairPeer,
    base: u64,
    needed: usize,
    generation: u64,
    report: &mut ScrubReport,
) -> Option<Vec<Vec<ItemId>>> {
    let mut got: Vec<Vec<ItemId>> = Vec::with_capacity(needed);
    while got.len() < needed {
        let after = base + got.len() as u64;
        match peer.fetch_range(after, needed - got.len(), generation) {
            Ok(batch) if batch.is_empty() => {
                report
                    .findings
                    .push(format!("repair peer has no baskets after epoch {after}"));
                return None;
            }
            Ok(batch) => got.extend(batch),
            Err(e) => {
                if let PeerError::Fenced { peer_generation } = &e {
                    let gen = peer_generation.to_string();
                    bmb_obs::events().emit(
                        Severity::Warn,
                        "scrub: repair fetch fenced — this node is stale",
                        &[("peer_generation", gen.as_str())],
                    );
                }
                report.findings.push(format!("peer repair failed: {e}"));
                return None;
            }
        }
    }
    got.truncate(needed);
    Some(got)
}

impl DurableStore {
    /// Runs one scrub tick: verify every durable artifact (or as many
    /// as the byte budget allows), quarantine and repair what fails,
    /// and report what happened. See the [module docs](self) for the
    /// full decision tree. Single-file stores return an empty complete
    /// report — recovery re-verifies the whole file on every open.
    ///
    /// `peer` is the optional replica used to re-fetch damaged segment
    /// ranges; when it is absent or fenced the pass falls back to the
    /// local store and then to re-checkpointing past the hole.
    pub fn scrub_pass(
        &self,
        mut peer: Option<&mut dyn RepairPeer>,
        options: &ScrubOptions,
    ) -> ScrubReport {
        let metrics = ScrubMetrics::register(self.observability());
        let started = Instant::now();
        let mut report = ScrubReport {
            complete: true,
            ..ScrubReport::default()
        };
        let Some(ckpt) = self.ckpt.as_ref() else {
            metrics.passes.inc();
            return report;
        };
        // Re-checkpoint target when a segment could not be rebuilt:
        // a fresh checkpoint at or past this epoch makes recovery skip
        // the damaged segment entirely.
        let mut recheckpoint_past: Option<u64> = None;
        {
            // Holding the checkpoint state for the whole tick
            // serializes scrub against checkpoint(): the manifest/file
            // set is stable and retention cannot delete a segment
            // mid-verification. Appends never take this lock, so
            // ingest is unaffected. // lock:allow(io)
            let state = lock(&ckpt.state);
            let listing = {
                let mut dir = lock(&ckpt.dir); // lock:allow(io)
                dir.list()
            };
            let names = match listing {
                Ok(names) => names,
                Err(e) => {
                    report.findings.push(format!("directory unlistable: {e}"));
                    report.complete = false;
                    metrics.passes.inc();
                    metrics.duration_us.record_duration(started.elapsed());
                    return report;
                }
            };
            let mut quarantine_seq = names
                .iter()
                .filter(|n| n.starts_with(QUARANTINE_PREFIX))
                .count() as u64;
            let mut worklist: Vec<Artifact> = Vec::new();
            if names.iter().any(|n| n == GEN_NAME) {
                worklist.push(Artifact::Generation);
            }
            if names.iter().any(|n| n == MANIFEST_NAME) || !state.manifest.is_empty() {
                worklist.push(Artifact::Manifest);
            }
            for &epoch in &state.files {
                worklist.push(Artifact::Checkpoint(epoch));
            }
            for (meta, end) in self.sealed_segment_ranges() {
                worklist.push(Artifact::Segment {
                    index: meta.index,
                    base: meta.base_epoch,
                    end,
                });
            }
            let start = match &options.resume_after {
                Some(cursor) => worklist
                    .iter()
                    .position(|a| &a.name() == cursor)
                    .map_or(0, |at| at + 1),
                None => 0,
            };
            for artifact in &worklist[start..] {
                if let Some(max) = options.max_bytes {
                    if report.artifacts_scanned > 0 && report.bytes_scanned >= max {
                        report.complete = false;
                        break;
                    }
                }
                self.scrub_one(
                    ckpt,
                    &state,
                    artifact,
                    &mut peer,
                    &mut quarantine_seq,
                    &mut recheckpoint_past,
                    &mut report,
                    &metrics,
                );
                report.artifacts_scanned += 1;
                report.resume_after = Some(artifact.name());
            }
            if report.complete {
                report.resume_after = None;
            }
        }
        if let Some(hole_end) = recheckpoint_past {
            // The state lock is released: checkpoint() retakes it.
            match self.checkpoint() {
                Ok(stats) if stats.epoch >= hole_end => {
                    report.repairs += 1;
                    metrics.repairs.inc();
                    let epoch = stats.epoch.to_string();
                    bmb_obs::events().emit(
                        Severity::Warn,
                        "scrub: re-checkpointed past an unrepairable hole",
                        &[("epoch", epoch.as_str())],
                    );
                }
                _ => {
                    self.mark_degraded("scrub could not repair or checkpoint past damage");
                    report.degraded = true;
                }
            }
        }
        metrics.passes.inc();
        metrics.bytes.add(report.bytes_scanned);
        metrics.duration_us.record_duration(started.elapsed());
        report
    }

    /// Verifies one artifact and, on damage, runs its quarantine +
    /// repair flow. Called with the checkpoint state lock held.
    #[allow(clippy::too_many_arguments)]
    fn scrub_one(
        &self,
        ckpt: &CkptShared,
        state: &CkptState,
        artifact: &Artifact,
        peer: &mut Option<&mut dyn RepairPeer>,
        quarantine_seq: &mut u64,
        recheckpoint_past: &mut Option<u64>,
        report: &mut ScrubReport,
        metrics: &ScrubMetrics,
    ) {
        let name = artifact.name();
        let read = {
            // Reads the artifact bytes under the dir lock, released
            // before any rebuild work. // lock:allow(io)
            let mut dir = lock(&ckpt.dir);
            dir.open(&name).and_then(|mut file| file.read_all())
        };
        let file_present = read.is_ok();
        let (bytes, damage) = match read {
            Ok(bytes) => {
                report.bytes_scanned += bytes.len() as u64;
                let verdict = match artifact {
                    Artifact::Generation => verify_generation_bytes(&bytes),
                    Artifact::Manifest => verify_manifest_bytes(&bytes).and_then(|epochs| {
                        if epochs == state.manifest {
                            Ok(())
                        } else {
                            Err("manifest disagrees with durable checkpoint state".to_string())
                        }
                    }),
                    Artifact::Checkpoint(epoch) => verify_checkpoint_bytes(
                        *epoch,
                        &bytes,
                        Some((self.store().n_items(), self.segment_capacity())),
                    ),
                    Artifact::Segment { base, end, .. } => {
                        verify_segment_bytes(&bytes, *base, Some(*end))
                    }
                };
                (bytes, verdict.err())
            }
            Err(e) => (Vec::new(), Some(format!("unreadable: {e}"))),
        };
        let Some(detail) = damage else {
            return;
        };
        report.corruptions += 1;
        metrics.corruptions.inc();
        report.findings.push(format!("{name}: {detail}"));
        bmb_obs::events().emit(
            Severity::Warn,
            "scrub: at-rest corruption detected",
            &[("artifact", name.as_str()), ("detail", detail.as_str())],
        );

        match artifact {
            Artifact::Generation => {
                let rebuilt = encode_generation(self.generation());
                self.repair_by_replace(
                    ckpt,
                    &name,
                    file_present,
                    &rebuilt,
                    quarantine_seq,
                    report,
                    metrics,
                    RepairFallback::Degrade("generation record unrepairable"),
                    recheckpoint_past,
                );
            }
            Artifact::Manifest => {
                let rebuilt = encode_manifest(&state.manifest);
                self.repair_by_replace(
                    ckpt,
                    &name,
                    file_present,
                    &rebuilt,
                    quarantine_seq,
                    report,
                    metrics,
                    RepairFallback::Degrade("manifest unrepairable"),
                    recheckpoint_past,
                );
            }
            Artifact::Checkpoint(epoch) => {
                match self.recut_checkpoint_bytes(*epoch) {
                    Some(rebuilt) => self.repair_by_replace(
                        ckpt,
                        &name,
                        file_present,
                        &rebuilt,
                        quarantine_seq,
                        report,
                        metrics,
                        RepairFallback::Recheckpoint(*epoch),
                        recheckpoint_past,
                    ),
                    None => {
                        // A fresh checkpoint at the current epoch
                        // supersedes the damaged one for recovery.
                        merge_recheckpoint(recheckpoint_past, *epoch);
                    }
                }
            }
            Artifact::Segment { base, end, .. } => {
                self.repair_segment(
                    ckpt,
                    &name,
                    file_present,
                    &bytes,
                    *base,
                    *end,
                    peer,
                    quarantine_seq,
                    recheckpoint_past,
                    report,
                    metrics,
                );
            }
        }
    }

    /// Re-encodes the checkpoint image for `epoch` from the live store,
    /// which holds the full acknowledged history in memory. Segment
    /// structure is a pure function of capacity and basket order, so
    /// the image is byte-identical to the one originally cut.
    fn recut_checkpoint_bytes(&self, epoch: u64) -> Option<Vec<u8>> {
        let snapshot = self.store().snapshot();
        if snapshot.epoch() < epoch {
            return None;
        }
        let rebuilt = IncrementalStore::new(
            snapshot.n_items(),
            StoreConfig {
                segment_capacity: self.segment_capacity(),
            },
        );
        for basket in snapshot.baskets_range(0, epoch) {
            if rebuilt.append(basket).is_err() {
                return None;
            }
        }
        Some(encode_snapshot(
            &rebuilt.snapshot(),
            self.segment_capacity(),
        ))
    }

    /// Quarantines a damaged artifact by rename (evidence moves aside)
    /// and publishes `rebuilt` under its original name. On any failure
    /// the evidence is left wherever it is and the fallback escalation
    /// runs — never a destructive retry.
    #[allow(clippy::too_many_arguments)]
    fn repair_by_replace(
        &self,
        ckpt: &CkptShared,
        name: &str,
        file_present: bool,
        rebuilt: &[u8],
        quarantine_seq: &mut u64,
        report: &mut ScrubReport,
        metrics: &ScrubMetrics,
        fallback: RepairFallback,
        recheckpoint_past: &mut Option<u64>,
    ) {
        // Rename + rewrite under the dir lock so rotation, shipping,
        // and fsck never observe a half-repaired name. // lock:allow(io)
        let mut dir = lock(&ckpt.dir);
        let mut evidence_safe = true;
        if file_present {
            let qname = quarantine_name(*quarantine_seq, name);
            match quarantine_move(dir.as_mut(), name, &qname) {
                Ok(()) => {
                    *quarantine_seq += 1;
                    report.quarantines += 1;
                    metrics.quarantines.inc();
                }
                Err(e) => {
                    report
                        .findings
                        .push(format!("{name}: quarantine failed: {e}"));
                    evidence_safe = false;
                }
            }
        }
        if evidence_safe {
            match write_atomic(dir.as_mut(), name, rebuilt) {
                Ok(()) => {
                    report.repairs += 1;
                    metrics.repairs.inc();
                    bmb_obs::events().emit(
                        Severity::Info,
                        "scrub: artifact repaired from live store",
                        &[("artifact", name)],
                    );
                    return;
                }
                Err(e) => report.findings.push(format!("{name}: repair failed: {e}")),
            }
        }
        drop(dir);
        match fallback {
            RepairFallback::Degrade(reason) => {
                self.mark_degraded(reason);
                report.degraded = true;
            }
            RepairFallback::Recheckpoint(epoch) => merge_recheckpoint(recheckpoint_past, epoch),
        }
    }

    /// Repairs a damaged sealed segment: fetch the epoch range from the
    /// configured peer (generation-stamped) or the local store, rebuild
    /// the byte image, quarantine the damaged original by durable copy,
    /// and atomically replace it in place — the segment name is never
    /// missing, so a crash at any point recovers. When no source covers
    /// the range, escalate to re-checkpoint-past-the-hole.
    #[allow(clippy::too_many_arguments)]
    fn repair_segment(
        &self,
        ckpt: &CkptShared,
        name: &str,
        file_present: bool,
        damaged: &[u8],
        base: u64,
        end: u64,
        peer: &mut Option<&mut dyn RepairPeer>,
        quarantine_seq: &mut u64,
        recheckpoint_past: &mut Option<u64>,
        report: &mut ScrubReport,
        metrics: &ScrubMetrics,
    ) {
        let needed = end.saturating_sub(base) as usize;
        let local = {
            let snapshot = self.store().snapshot();
            let range = snapshot.baskets_range(base, end);
            (range.len() == needed).then_some(range)
        };
        let mut source = "local store";
        let baskets = match peer.as_deref_mut() {
            Some(p) => match fetch_from_peer(p, base, needed, self.generation(), report) {
                Some(fetched) => match &local {
                    // The local store is authoritative for this node's
                    // own acked history; a disagreeing peer means
                    // divergence the failover protocol must resolve.
                    Some(ours) if *ours != fetched => {
                        bmb_obs::events().emit(
                            Severity::Warn,
                            "scrub: peer range disagrees with local store; using local",
                            &[("artifact", name)],
                        );
                        local.clone()
                    }
                    _ => {
                        source = "peer";
                        Some(fetched)
                    }
                },
                None => local.clone(),
            },
            None => local,
        };
        let Some(baskets) = baskets else {
            merge_recheckpoint(recheckpoint_past, end);
            return;
        };
        let rebuilt = rebuild_segment_bytes(base, &baskets, self.segment_capacity());
        // Copy-quarantine then replace-in-place under the dir lock, so
        // the segment name exists at every instant. // lock:allow(io)
        let mut dir = lock(&ckpt.dir);
        if file_present {
            let qname = quarantine_name(*quarantine_seq, name);
            match quarantine_copy(dir.as_mut(), &qname, damaged) {
                Ok(()) => {
                    *quarantine_seq += 1;
                    report.quarantines += 1;
                    metrics.quarantines.inc();
                }
                Err(e) => {
                    // Evidence could not be preserved; leave the
                    // damaged original untouched and cover it with a
                    // checkpoint instead of overwriting it.
                    report
                        .findings
                        .push(format!("{name}: quarantine failed: {e}"));
                    drop(dir);
                    merge_recheckpoint(recheckpoint_past, end);
                    return;
                }
            }
        }
        match write_atomic(dir.as_mut(), name, &rebuilt) {
            Ok(()) => {
                report.repairs += 1;
                metrics.repairs.inc();
                bmb_obs::events().emit(
                    Severity::Info,
                    "scrub: segment repaired",
                    &[("artifact", name), ("source", source)],
                );
            }
            Err(e) => {
                report.findings.push(format!("{name}: repair failed: {e}"));
                drop(dir);
                merge_recheckpoint(recheckpoint_past, end);
            }
        }
    }
}

/// Escalation when an in-place repair is impossible.
enum RepairFallback {
    /// Degrade the store loudly with this reason.
    Degrade(&'static str),
    /// Cut a fresh checkpoint at or past this epoch so recovery no
    /// longer needs the damaged artifact.
    Recheckpoint(u64),
}

/// Folds a new re-checkpoint target into the pass-wide maximum.
fn merge_recheckpoint(target: &mut Option<u64>, epoch: u64) {
    *target = Some(target.map_or(epoch, |t| t.max(epoch)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::TMP_SUFFIX;
    use crate::storage::{MemDir, SharedDirState};
    use crate::wal::DurabilityConfig;
    use std::sync::Arc;

    const N_ITEMS: usize = 8;

    fn config() -> StoreConfig {
        StoreConfig {
            segment_capacity: 4,
        }
    }

    fn durability() -> DurabilityConfig {
        DurabilityConfig {
            segment_bytes: 64,
            retain_checkpoints: 2,
        }
    }

    /// Opens a directory-mode store over shared in-memory media and
    /// returns the store plus the media handle.
    fn open_store() -> (DurableStore, SharedDirState) {
        let media = MemDir::new();
        let state = media.state();
        let (store, _) = DurableStore::open_dir(Box::new(media), N_ITEMS, config(), durability())
            .expect("open_dir");
        (store, state)
    }

    /// Appends `n` canonical single-basket records.
    fn ingest(store: &DurableStore, n: u64) {
        for i in 0..n {
            store
                .append_ids([(i % 3) as u32, 3 + (i % 5) as u32])
                .expect("append");
        }
    }

    fn read_file(state: &SharedDirState, name: &str) -> Vec<u8> {
        let mut dir = MemDir::with_state(Arc::clone(state));
        let mut file = dir.open(name).expect("open file");
        file.read_all().expect("read file")
    }

    fn flip_byte(state: &SharedDirState, name: &str, offset: usize) {
        let mut dir = MemDir::with_state(Arc::clone(state));
        let mut file = dir.open(name).expect("open file");
        let mut bytes = file.read_all().expect("read file");
        bytes[offset] ^= 0xFF;
        file.truncate(0).expect("truncate");
        file.append(&bytes).expect("append");
        file.sync().expect("sync");
    }

    fn list(state: &SharedDirState) -> Vec<String> {
        let mut dir = MemDir::with_state(Arc::clone(state));
        dir.list().expect("list")
    }

    #[test]
    fn clean_store_scrubs_clean_and_fscks_clean() {
        let (store, state) = open_store();
        ingest(&store, 10);
        store.checkpoint().expect("checkpoint");
        // Keep sealed segments past the checkpoint so the pass walks
        // every artifact kind (retention reclaims covered segments).
        ingest(&store, 8);
        let report = store.scrub_pass(None, &ScrubOptions::default());
        assert!(report.complete);
        assert_eq!(report.corruptions, 0);
        assert_eq!(report.repairs, 0);
        assert!(
            report.artifacts_scanned >= 3,
            "GEN absent but MANIFEST, ckpt, segments scanned"
        );
        assert!(report.bytes_scanned > 0);
        let mut dir = MemDir::with_state(Arc::clone(&state));
        let fsck = fsck_dir(&mut dir).expect("fsck");
        assert!(fsck.is_clean(), "findings: {:?}", fsck.findings);
    }

    #[test]
    fn rebuild_segment_bytes_matches_pristine_media() {
        let (store, state) = open_store();
        ingest(&store, 12); // capacity 4, tiny segment_bytes → several sealed segments
        let ranges = store.sealed_segment_ranges();
        assert!(!ranges.is_empty(), "need at least one sealed segment");
        let snapshot = store.store().snapshot();
        for (meta, end) in ranges {
            let pristine = read_file(&state, &segment_name(meta.index));
            let baskets = snapshot.baskets_range(meta.base_epoch, end);
            let rebuilt =
                rebuild_segment_bytes(meta.base_epoch, &baskets, store.segment_capacity());
            assert_eq!(rebuilt, pristine, "segment {} image differs", meta.index);
        }
    }

    #[test]
    fn corrupt_segment_is_detected_quarantined_and_repaired_byte_identical() {
        let (store, state) = open_store();
        ingest(&store, 12);
        let name = segment_name(0);
        let pristine = read_file(&state, &name);
        flip_byte(&state, &name, pristine.len() - 3); // damage a record body
        let report = store.scrub_pass(None, &ScrubOptions::default());
        assert_eq!(report.corruptions, 1, "findings: {:?}", report.findings);
        assert_eq!(report.repairs, 1);
        assert_eq!(report.quarantines, 1);
        assert!(!report.degraded);
        assert_eq!(
            read_file(&state, &name),
            pristine,
            "repair must be byte-identical"
        );
        let names = list(&state);
        assert!(
            names
                .iter()
                .any(|n| n.starts_with(QUARANTINE_PREFIX) && n.ends_with(&name)),
            "evidence file missing: {names:?}"
        );
        // A second pass sees a healthy store again.
        let again = store.scrub_pass(None, &ScrubOptions::default());
        assert_eq!(again.corruptions, 0);
        assert!(store.is_healthy());
    }

    #[test]
    fn corrupt_checkpoint_and_manifest_are_repaired_byte_identical() {
        let (store, state) = open_store();
        ingest(&store, 9);
        store.checkpoint().expect("checkpoint");
        let ckpt_name = checkpoint_name(9);
        let pristine_ckpt = read_file(&state, &ckpt_name);
        let pristine_manifest = read_file(&state, MANIFEST_NAME);
        flip_byte(&state, &ckpt_name, 40);
        flip_byte(&state, MANIFEST_NAME, 9);
        let report = store.scrub_pass(None, &ScrubOptions::default());
        assert_eq!(report.corruptions, 2, "findings: {:?}", report.findings);
        assert_eq!(report.repairs, 2);
        assert_eq!(report.quarantines, 2);
        assert_eq!(read_file(&state, &ckpt_name), pristine_ckpt);
        assert_eq!(read_file(&state, MANIFEST_NAME), pristine_manifest);
    }

    #[test]
    fn corrupt_generation_record_is_repaired() {
        let (store, state) = open_store();
        store.set_generation(7).expect("set generation");
        ingest(&store, 4);
        let pristine = read_file(&state, GEN_NAME);
        flip_byte(&state, GEN_NAME, 10);
        let report = store.scrub_pass(None, &ScrubOptions::default());
        assert_eq!(report.corruptions, 1);
        assert_eq!(report.repairs, 1);
        assert_eq!(read_file(&state, GEN_NAME), pristine);
        assert_eq!(store.generation(), 7);
    }

    #[test]
    fn byte_budget_paces_and_resumes() {
        let (store, state) = open_store();
        ingest(&store, 12);
        store.checkpoint().expect("checkpoint");
        let first = store.scrub_pass(
            None,
            &ScrubOptions {
                max_bytes: Some(1),
                resume_after: None,
            },
        );
        assert!(!first.complete);
        assert_eq!(
            first.artifacts_scanned, 1,
            "budget floor is one artifact per tick"
        );
        let cursor = first.resume_after.clone().expect("cursor");
        // Drain the rest of the list tick by tick.
        let mut ticks = 0;
        let mut resume = Some(cursor);
        let mut scanned = first.artifacts_scanned;
        while ticks < 32 {
            let next = store.scrub_pass(
                None,
                &ScrubOptions {
                    max_bytes: Some(1),
                    resume_after: resume.clone(),
                },
            );
            scanned += next.artifacts_scanned;
            if next.complete {
                break;
            }
            resume = next.resume_after.clone();
            ticks += 1;
        }
        let full = store.scrub_pass(None, &ScrubOptions::default());
        assert!(full.complete);
        assert_eq!(
            scanned, full.artifacts_scanned,
            "paced ticks must cover the full list"
        );
        drop(state);
    }

    /// A peer that serves ranges from its own durable store, refusing
    /// stale generations — the in-process model of `replicate_pull`.
    struct StorePeer {
        store: DurableStore,
        generation: u64,
        calls: u64,
    }

    impl RepairPeer for StorePeer {
        fn fetch_range(
            &mut self,
            after_epoch: u64,
            max_baskets: usize,
            generation: u64,
        ) -> Result<Vec<Vec<ItemId>>, PeerError> {
            self.calls += 1;
            if generation < self.generation {
                return Err(PeerError::Fenced {
                    peer_generation: self.generation,
                });
            }
            Ok(self
                .store
                .snapshot()
                .baskets_range(after_epoch, after_epoch + max_baskets as u64))
        }
    }

    #[test]
    fn segment_repair_prefers_configured_peer() {
        let (store, state) = open_store();
        ingest(&store, 12);
        let (peer_store, _peer_state) = open_store();
        ingest(&peer_store, 12); // identical logical history
        let mut peer = StorePeer {
            store: peer_store,
            generation: 1,
            calls: 0,
        };
        let name = segment_name(0);
        let pristine = read_file(&state, &name);
        flip_byte(&state, &name, 20);
        let report = store.scrub_pass(Some(&mut peer), &ScrubOptions::default());
        assert_eq!(report.corruptions, 1);
        assert_eq!(report.repairs, 1);
        assert!(peer.calls > 0, "peer must be consulted");
        assert_eq!(read_file(&state, &name), pristine);
    }

    #[test]
    fn fenced_peer_falls_back_to_local_repair() {
        let (store, state) = open_store();
        ingest(&store, 12);
        let (peer_store, _peer_state) = open_store();
        ingest(&peer_store, 12);
        let mut peer = StorePeer {
            store: peer_store,
            generation: 99, // newer than ours: fences every fetch
            calls: 0,
        };
        let name = segment_name(0);
        let pristine = read_file(&state, &name);
        flip_byte(&state, &name, 20);
        let report = store.scrub_pass(Some(&mut peer), &ScrubOptions::default());
        assert_eq!(report.corruptions, 1);
        assert_eq!(report.repairs, 1, "local fallback must still repair");
        assert!(peer.calls > 0);
        assert!(
            report.findings.iter().any(|f| f.contains("fenced")),
            "findings must surface the fence: {:?}",
            report.findings
        );
        assert_eq!(read_file(&state, &name), pristine);
    }

    #[test]
    fn fsck_flags_every_artifact_kind() {
        let (store, state) = open_store();
        store.set_generation(3).expect("set generation");
        ingest(&store, 9);
        store.checkpoint().expect("checkpoint");
        ingest(&store, 6); // seal fresh segments retention will not reclaim
        let surviving = store
            .sealed_segment_ranges()
            .last()
            .map(|(meta, _)| segment_name(meta.index))
            .expect("a sealed segment past the checkpoint");
        for name in [
            GEN_NAME.to_string(),
            MANIFEST_NAME.to_string(),
            checkpoint_name(9),
            surviving,
        ] {
            let bytes = read_file(&state, &name);
            flip_byte(&state, &name, bytes.len() / 2);
            let mut dir = MemDir::with_state(Arc::clone(&state));
            let fsck = fsck_dir(&mut dir).expect("fsck");
            assert!(
                fsck.findings.iter().any(|f| f.name == name),
                "fsck missed damage in {name}: {:?}",
                fsck.findings
            );
            flip_byte(&state, &name, bytes.len() / 2); // restore
        }
        let mut dir = MemDir::with_state(Arc::clone(&state));
        assert!(fsck_dir(&mut dir).expect("fsck").is_clean());
    }

    #[test]
    fn digests_agree_across_replicas_and_catch_divergence() {
        let (a, _sa) = open_store();
        let (b, _sb) = open_store();
        ingest(&a, 11);
        ingest(&b, 11);
        let da = segment_digests(&a.snapshot(), 0);
        let db = segment_digests(&b.snapshot(), 0);
        assert_eq!(da, db);
        assert_eq!(da.len(), 2, "11 baskets at capacity 4 seal two segments");
        // from_epoch skips fully-covered segments.
        assert_eq!(segment_digests(&a.snapshot(), 4).len(), 1);
        // Divergent content produces a different digest.
        let (c, _sc) = open_store();
        for i in 0..11u32 {
            c.append_ids([i % 2]).expect("append");
        }
        let dc = segment_digests(&c.snapshot(), 0);
        assert_ne!(da, dc);
    }

    #[test]
    fn degrade_path_fails_appends_loudly() {
        let (store, _state) = open_store();
        ingest(&store, 2);
        store.mark_degraded("test degrade");
        assert!(!store.is_healthy());
        assert!(store.append_ids([1u32]).is_err());
    }

    #[test]
    fn quarantine_names_do_not_parse_as_artifacts() {
        let q = quarantine_name(3, &segment_name(0));
        assert_eq!(parse_segment_name(&q), None);
        let q = quarantine_name(0, &checkpoint_name(42));
        assert_eq!(parse_checkpoint_name(&q), None);
        assert!(!q.ends_with(TMP_SUFFIX));
    }
}

//! Crash-safe durability: a checksummed write-ahead log for
//! [`IncrementalStore`].
//!
//! # Format
//!
//! The log is a fixed 8-byte header (`b"BMBWAL1\n"`) followed by
//! length-prefixed records:
//!
//! ```text
//! record  := len:u32le  crc:u32le  payload[len]      (crc = CRC32 of payload)
//! payload := 0x01  n:u32le  (m:u32le  id:u32le{m}){n}   — a basket batch
//!          | 0x02  epoch:u64le                          — an epoch fence
//! ```
//!
//! A basket-batch record is written (and synced) *before* the batch is
//! applied to the in-memory store; an append is acknowledged only after
//! the sync barrier, so every acknowledged basket is on durable media.
//! An epoch fence is appended whenever ingest seals a segment: it pins
//! the store epoch at a seal boundary, giving recovery a cross-check
//! that replay reproduced the exact segment structure.
//!
//! # Recovery invariants
//!
//! [`DurableStore::open`] replays the log front to back and stops at the
//! first record that is not provably intact: a truncated header, a
//! length prefix pointing past the end of the file (torn write), a CRC
//! mismatch (bit flip), or a fence naming an epoch the replayed store
//! does not have (misordered damage). Everything before the damage is
//! applied; the damaged tail is truncated away so the next append starts
//! at a clean record boundary. Because acknowledged records were synced
//! before damage could only accumulate *behind* them, stopping at the
//! last valid record never loses an acknowledged append — the torture
//! test in `tests/wal_torture.rs` enumerates several hundred randomized
//! fault points to pin exactly that.

use std::io;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::item::ItemId;
use crate::segment::{IncrementalStore, ItemOutOfRange, Snapshot, StoreConfig};
use crate::storage::Storage;

/// Magic bytes opening every WAL file (versioned).
pub const WAL_MAGIC: &[u8; 8] = b"BMBWAL1\n";

/// Record-kind byte for a basket batch.
const KIND_BATCH: u8 = 0x01;
/// Record-kind byte for an epoch fence.
const KIND_FENCE: u8 = 0x02;

/// Upper bound on a single record's payload; a length prefix beyond this
/// is treated as tail damage rather than attempted as an allocation.
const MAX_RECORD_BYTES: u32 = 1 << 28;

/// The standard CRC-32 (IEEE 802.3, reflected) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// A durability failure.
#[derive(Debug)]
pub enum WalError {
    /// The storage backend failed.
    Io(io::Error),
    /// The file does not start with [`WAL_MAGIC`] — it is not a WAL (or
    /// is a future version); refusing to replay protects foreign files.
    NotAWal,
    /// A *replayed* (intact, checksummed) record named an item outside
    /// the store's item space: the log belongs to a different item
    /// space, so replaying it would build the wrong store.
    ItemSpaceMismatch(ItemOutOfRange),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal storage error: {e}"),
            WalError::NotAWal => write!(f, "file is not a bmb WAL (bad magic)"),
            WalError::ItemSpaceMismatch(e) => {
                write!(f, "wal does not match the store's item space: {e}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// An error from a durable append.
#[derive(Debug)]
pub enum DurableError {
    /// The WAL write or sync failed; nothing was acknowledged and the
    /// in-memory store was not modified.
    Wal(io::Error),
    /// A basket named an item outside the item space; nothing was
    /// logged or applied.
    ItemOutOfRange(ItemOutOfRange),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Wal(e) => write!(f, "append not durable: {e}"),
            DurableError::ItemOutOfRange(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DurableError {}

/// What [`DurableStore::open`] found while replaying the log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records replayed (batches + fences).
    pub records_replayed: u64,
    /// Baskets reconstructed into the store.
    pub baskets_recovered: u64,
    /// Bytes of damaged tail truncated away.
    pub truncated_bytes: u64,
    /// The store epoch after replay.
    pub epoch: u64,
}

/// Writer-side WAL state, guarded by one mutex so log order always
/// matches store-apply order.
struct WalInner {
    storage: Box<dyn Storage>,
    /// Set after a failed fence write: appends keep failing fast until
    /// the storage recovers (it never does for a tripped fault backend).
    degraded: bool,
}

impl WalInner {
    /// Appends one framed record and runs the sync barrier.
    fn append_record(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        self.storage.append(&framed)?;
        self.storage.sync()
    }
}

/// An [`IncrementalStore`] whose acknowledged appends survive a crash.
///
/// Reads go straight to the wrapped store (snapshots are untouched by
/// durability); writes pass through the WAL first. See the module docs
/// for the format and the recovery invariants.
///
/// # Examples
///
/// ```
/// use bmb_basket::storage::MemStorage;
/// use bmb_basket::wal::DurableStore;
/// use bmb_basket::{Itemset, StoreConfig};
///
/// let media = MemStorage::new();
/// let bytes = media.bytes();
/// let (store, _) =
///     DurableStore::open(Box::new(media), 3, StoreConfig::default()).unwrap();
/// store.append_ids([0, 1]).unwrap();
/// store.append_ids([1, 2]).unwrap();
/// drop(store); // crash
///
/// let reopened = MemStorage::with_bytes(bytes);
/// let (store, report) =
///     DurableStore::open(Box::new(reopened), 3, StoreConfig::default()).unwrap();
/// assert_eq!(report.epoch, 2);
/// assert_eq!(store.snapshot().support(Itemset::from_ids([1]).items()), 2);
/// ```
pub struct DurableStore {
    store: Arc<IncrementalStore>,
    segment_capacity: usize,
    wal: Mutex<WalInner>,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("store", &self.store)
            .finish_non_exhaustive()
    }
}

impl DurableStore {
    /// Opens a durable store over `storage`, replaying any existing log.
    ///
    /// An empty log gets the [`WAL_MAGIC`] header written; a non-empty
    /// log is replayed up to the last intact record and its damaged tail
    /// (if any) is truncated away.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on storage failures, [`WalError::NotAWal`] when
    /// the bytes are not a v1 WAL, and [`WalError::ItemSpaceMismatch`]
    /// when an intact record names an out-of-range item.
    pub fn open(
        mut storage: Box<dyn Storage>,
        n_items: usize,
        config: StoreConfig,
    ) -> Result<(DurableStore, RecoveryReport), WalError> {
        config.validate();
        let bytes = storage.read_all()?;
        let store = IncrementalStore::new(n_items, config);
        let mut report = RecoveryReport::default();

        let valid_end = if bytes.is_empty() {
            storage.append(WAL_MAGIC)?;
            storage.sync()?;
            WAL_MAGIC.len() as u64
        } else {
            if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
                return Err(WalError::NotAWal);
            }
            replay(&bytes, &store, &mut report)?
        };

        let total = storage.len()?;
        if total > valid_end {
            report.truncated_bytes = total - valid_end;
            storage.truncate(valid_end)?;
            storage.sync()?;
        }
        report.epoch = store.epoch();
        Ok((
            DurableStore {
                store: Arc::new(store),
                segment_capacity: config.segment_capacity,
                wal: Mutex::new(WalInner {
                    storage,
                    degraded: false,
                }),
            },
            report,
        ))
    }

    /// The wrapped in-memory store; hand this to a `QueryEngine` so
    /// reads bypass the WAL entirely.
    pub fn store(&self) -> &Arc<IncrementalStore> {
        &self.store
    }

    /// Total baskets ingested (acknowledged) so far.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// A consistent, immutable view of everything acknowledged so far.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.snapshot()
    }

    /// Appends one basket durably. Returns the epoch after the append;
    /// once this returns `Ok`, the basket survives a crash.
    ///
    /// # Errors
    ///
    /// See [`DurableStore::append_batch`].
    pub fn append<I: IntoIterator<Item = ItemId>>(&self, items: I) -> Result<u64, DurableError> {
        self.append_batch(std::iter::once(items.into_iter().collect::<Vec<ItemId>>()))
    }

    /// Appends a basket of raw `u32` ids durably; convenient in tests.
    ///
    /// # Errors
    ///
    /// See [`DurableStore::append_batch`].
    pub fn append_ids<I: IntoIterator<Item = u32>>(&self, ids: I) -> Result<u64, DurableError> {
        self.append(ids.into_iter().map(ItemId))
    }

    /// Appends many baskets durably under a single WAL lock: the batch
    /// is framed, checksummed, written, and synced *before* it is
    /// applied to the in-memory store, so an `Ok` return means every
    /// basket of the batch survives a crash. On `Err`, nothing is
    /// visible in the store (the log may hold a torn, unacknowledged
    /// tail, which recovery discards).
    ///
    /// # Errors
    ///
    /// [`DurableError::ItemOutOfRange`] for an invalid basket (nothing
    /// logged), [`DurableError::Wal`] when the WAL write or sync fails.
    pub fn append_batch<B, I>(&self, baskets: B) -> Result<u64, DurableError>
    where
        B: IntoIterator<Item = I>,
        I: IntoIterator<Item = ItemId>,
    {
        let baskets: Vec<Vec<ItemId>> = baskets
            .into_iter()
            .map(|b| b.into_iter().collect())
            .collect();
        for basket in &baskets {
            for &item in basket {
                if item.index() >= self.store.n_items() {
                    return Err(DurableError::ItemOutOfRange(ItemOutOfRange {
                        item,
                        n_items: self.store.n_items(),
                    }));
                }
            }
        }
        let payload = encode_batch(&baskets);
        let mut wal = lock(&self.wal);
        if wal.degraded {
            return Err(DurableError::Wal(io::Error::other(
                "wal is degraded after an earlier storage failure",
            )));
        }
        wal.append_record(&payload).map_err(DurableError::Wal)?;
        // Durable from here on: apply to the store and acknowledge.
        let old_epoch = self.store.epoch();
        let epoch = match self.store.append_batch(baskets) {
            Ok(epoch) => epoch,
            // Unreachable: items were validated above. Map it anyway so
            // the library stays panic-free.
            Err(e) => return Err(DurableError::ItemOutOfRange(e)),
        };
        // A fence whenever this batch crossed a seal boundary. The fence
        // pins the post-batch epoch: replay re-derives seal boundaries
        // from the same capacity, so matching epochs imply matching
        // segment structure. Fence-write failures cannot un-acknowledge
        // durable data; the WAL degrades and later appends fail fast.
        let cap = self.segment_capacity as u64;
        if epoch / cap > old_epoch / cap && wal.append_record(&encode_fence(epoch)).is_err() {
            wal.degraded = true;
        }
        Ok(epoch)
    }

    /// Whether the WAL can still acknowledge appends (`false` after a
    /// storage failure on a fence write).
    pub fn is_healthy(&self) -> bool {
        !lock(&self.wal).degraded
    }
}

/// Encodes a basket batch payload.
fn encode_batch(baskets: &[Vec<ItemId>]) -> Vec<u8> {
    let items: usize = baskets.iter().map(Vec::len).sum();
    let mut payload = Vec::with_capacity(5 + 4 * baskets.len() + 4 * items);
    payload.push(KIND_BATCH);
    payload.extend_from_slice(&(baskets.len() as u32).to_le_bytes());
    for basket in baskets {
        payload.extend_from_slice(&(basket.len() as u32).to_le_bytes());
        for item in basket {
            payload.extend_from_slice(&item.0.to_le_bytes());
        }
    }
    payload
}

/// Encodes an epoch-fence payload.
fn encode_fence(epoch: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9);
    payload.push(KIND_FENCE);
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload
}

/// A little-endian cursor over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(chunk);
        Some(u64::from_le_bytes(raw))
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// One decoded record payload.
enum Record {
    Batch(Vec<Vec<ItemId>>),
    Fence(u64),
}

/// Decodes a checksum-verified payload; `None` means structural damage
/// (which, after a CRC pass, indicates a corrupt writer — treated the
/// same as tail damage: replay stops).
fn decode_payload(payload: &[u8]) -> Option<Record> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    match cur.u8()? {
        KIND_BATCH => {
            // Capacity hints are clamped by the payload size so a
            // corrupt count cannot drive a huge allocation.
            let cap_bound = payload.len() / 4;
            let n = cur.u32()?;
            let mut baskets = Vec::with_capacity((n as usize).min(cap_bound));
            for _ in 0..n {
                let m = cur.u32()?;
                let mut basket = Vec::with_capacity((m as usize).min(cap_bound));
                for _ in 0..m {
                    basket.push(ItemId(cur.u32()?));
                }
                baskets.push(basket);
            }
            cur.at_end().then_some(Record::Batch(baskets))
        }
        KIND_FENCE => {
            let epoch = cur.u64()?;
            cur.at_end().then_some(Record::Fence(epoch))
        }
        _ => None,
    }
}

/// Replays `bytes` (which start with a verified header) into `store`,
/// returning the offset just past the last intact record.
fn replay(
    bytes: &[u8],
    store: &IncrementalStore,
    report: &mut RecoveryReport,
) -> Result<u64, WalError> {
    let mut pos = WAL_MAGIC.len();
    // Stops at the first torn frame header; other damage breaks below.
    while let Some(frame) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if len > MAX_RECORD_BYTES {
            break; // absurd length: damaged frame
        }
        let start = pos + 8;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            break; // truncated payload
        };
        if crc32(payload) != crc {
            break; // bit flip
        }
        let Some(record) = decode_payload(payload) else {
            break; // structurally invalid despite CRC: stop here
        };
        match record {
            Record::Batch(baskets) => {
                let n = baskets.len() as u64;
                store
                    .append_batch(baskets)
                    .map_err(WalError::ItemSpaceMismatch)?;
                report.baskets_recovered += n;
            }
            Record::Fence(epoch) => {
                if store.epoch() != epoch {
                    break; // replay does not reach this fence: damage
                }
            }
        }
        report.records_replayed += 1;
        pos = start + len as usize;
    }
    Ok(pos as u64)
}

/// Acquires a mutex, recovering from poisoning: WAL state is only
/// mutated through panic-free code, so a poisoned lock still holds
/// consistent data.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FaultPlan, FaultStorage, MemStorage};
    use crate::Itemset;

    fn config() -> StoreConfig {
        StoreConfig {
            segment_capacity: 4,
        }
    }

    fn open_mem(bytes: Option<crate::storage::SharedBytes>) -> (DurableStore, RecoveryReport) {
        let storage = match bytes {
            Some(b) => MemStorage::with_bytes(b),
            None => MemStorage::new(),
        };
        match DurableStore::open(Box::new(storage), 8, config()) {
            Ok(pair) => pair,
            Err(e) => panic!("open failed: {e}"),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check values for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn appends_survive_reopen() {
        let (_, report) = open_mem(None);
        assert_eq!(report, RecoveryReport::default());

        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        for i in 0..10u32 {
            store.append_ids([i % 8, (i + 1) % 8]).unwrap();
        }
        store
            .append_batch([vec![ItemId(0)], vec![ItemId(1), ItemId(2)]])
            .unwrap();
        assert_eq!(store.epoch(), 12);
        drop(store); // crash

        let (recovered, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 12);
        assert_eq!(report.baskets_recovered, 12);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(recovered.epoch(), 12);
        let snap = recovered.snapshot();
        assert_eq!(snap.support(Itemset::from_ids([0]).items()), 4);
        // Segment structure is reproduced exactly (capacity 4, 12 baskets).
        assert_eq!(snap.sealed_segments().len(), 3);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_remains_usable() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        store.append_ids([2, 3]).unwrap();
        drop(store);

        // Tear the last record: chop 3 bytes off the tail.
        let torn_len = {
            let mut buf = bytes.lock().unwrap();
            let n = buf.len();
            buf.truncate(n - 3);
            buf.len()
        };
        let (recovered, report) = open_mem(Some(bytes.clone()));
        assert_eq!(report.epoch, 1, "only the first (intact) record replays");
        assert!(report.truncated_bytes > 0);
        assert!(report.truncated_bytes < torn_len as u64);
        // The repaired log accepts new appends and they survive.
        recovered.append_ids([4]).unwrap();
        drop(recovered);
        let (again, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 2);
        assert_eq!(again.snapshot().support(Itemset::from_ids([4]).items()), 1);
    }

    #[test]
    fn bit_flip_stops_replay_at_last_valid_record() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0]).unwrap();
        let clean_len = bytes.lock().unwrap().len();
        store.append_ids([1]).unwrap();
        drop(store);
        {
            // Flip a payload bit inside the second record.
            let mut buf = bytes.lock().unwrap();
            let idx = clean_len + 9; // past the second record's frame
            buf[idx] ^= 0x01;
        }
        let (_, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 1);
        assert!(report.truncated_bytes > 0);
    }

    #[test]
    fn foreign_files_are_rejected() {
        let mut mem = MemStorage::new();
        mem.append(b"definitely not a wal").unwrap();
        let err = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(_) => panic!("foreign file must not open"),
            Err(e) => e,
        };
        assert!(matches!(err, WalError::NotAWal));
    }

    #[test]
    fn wrong_item_space_is_a_hard_error() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([7]).unwrap();
        drop(store);
        let err = match DurableStore::open(Box::new(MemStorage::with_bytes(bytes)), 4, config()) {
            Ok(_) => panic!("item space mismatch must not open"),
            Err(e) => e,
        };
        assert!(matches!(err, WalError::ItemSpaceMismatch(_)));
    }

    #[test]
    fn failed_append_is_not_applied_and_recovery_agrees() {
        // Measure how many bytes the header plus one record occupy.
        let header_and_one = {
            let mem = MemStorage::new();
            let bytes = mem.bytes();
            let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
                Ok(p) => p,
                Err(e) => panic!("{e}"),
            };
            store.append_ids([0, 1]).unwrap();
            drop(store);
            let len = bytes.lock().unwrap().len() as u64;
            len
        };

        let faulty = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(header_and_one + 5), // tears the 2nd record
            ..FaultPlan::default()
        });
        let bytes = faulty.bytes();
        let (store, _) = match DurableStore::open(Box::new(faulty), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        let err = store.append_ids([2, 3]).unwrap_err();
        assert!(matches!(err, DurableError::Wal(_)));
        // The failed append is not visible in memory...
        assert_eq!(store.epoch(), 1);
        drop(store);
        // ...and recovery reconstructs exactly the acknowledged state.
        let (recovered, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 1);
        assert!(report.truncated_bytes > 0);
        assert_eq!(
            recovered.snapshot().support(Itemset::from_ids([2]).items()),
            0
        );
    }

    #[test]
    fn fences_are_written_at_seal_boundaries() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        // One batch crossing two seal boundaries (capacity 4, 9 baskets).
        store
            .append_batch((0..9).map(|i| vec![ItemId(i % 8)]))
            .unwrap();
        drop(store);
        let buf = bytes.lock().unwrap().clone();
        // Count fence records by walking frames.
        let mut pos = WAL_MAGIC.len();
        let mut fences = Vec::new();
        while pos + 8 <= buf.len() {
            let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]);
            let payload = &buf[pos + 8..pos + 8 + len as usize];
            if payload[0] == KIND_FENCE {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&payload[1..9]);
                fences.push(u64::from_le_bytes(raw));
            }
            pos += 8 + len as usize;
        }
        assert_eq!(fences, vec![9], "one fence pinning the post-batch epoch");
        let (_, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 9);
        assert_eq!(report.records_replayed, 2, "one batch + one fence");
    }
}

//! Crash-safe durability: a checksummed write-ahead log for
//! [`IncrementalStore`].
//!
//! # Format
//!
//! The log is a fixed 8-byte header (`b"BMBWAL1\n"`) followed by
//! length-prefixed records:
//!
//! ```text
//! record  := len:u32le  crc:u32le  payload[len]      (crc = CRC32 of payload)
//! payload := 0x01  n:u32le  (m:u32le  id:u32le{m}){n}   — a basket batch
//!          | 0x02  epoch:u64le                          — an epoch fence
//! ```
//!
//! A basket-batch record is written (and synced) *before* the batch is
//! applied to the in-memory store; an append is acknowledged only after
//! the sync barrier, so every acknowledged basket is on durable media.
//! An epoch fence is appended whenever ingest seals a segment: it pins
//! the store epoch at a seal boundary, giving recovery a cross-check
//! that replay reproduced the exact segment structure.
//!
//! # Recovery invariants
//!
//! [`DurableStore::open`] replays the log front to back and stops at the
//! first record that is not provably intact: a truncated header, a
//! length prefix pointing past the end of the file (torn write), a CRC
//! mismatch (bit flip), or a fence naming an epoch the replayed store
//! does not have (misordered damage). Everything before the damage is
//! applied; the damaged tail is truncated away so the next append starts
//! at a clean record boundary.
//!
//! That rule is only safe if acknowledged records are always a clean
//! *prefix* of the log — damage must never sit in front of an acked
//! record. Recovery guarantees it for crashes (acked records were synced
//! before any later bytes), and the writer guarantees it for I/O faults:
//! when an append fails mid-record, the torn tail is truncated back to
//! the last committed offset before any further append is accepted, and
//! if that repair fails the WAL degrades — every later append fails fast
//! rather than landing behind torn bytes that recovery would stop at.
//! The torture test in `crates/core/tests/wal_torture.rs` enumerates
//! several hundred randomized fault points to pin exactly this.

use std::io;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use bmb_obs::{Counter, Gauge, Histogram, Registry, Severity};

use crate::item::ItemId;
use crate::segment::{IncrementalStore, ItemOutOfRange, Snapshot, StoreConfig};
use crate::storage::Storage;

/// Magic bytes opening every WAL file (versioned).
pub const WAL_MAGIC: &[u8; 8] = b"BMBWAL1\n";

/// Record-kind byte for a basket batch.
const KIND_BATCH: u8 = 0x01;
/// Record-kind byte for an epoch fence.
const KIND_FENCE: u8 = 0x02;

/// Upper bound on a single record's payload. Replay treats a length
/// prefix beyond this as tail damage rather than attempting the
/// allocation, and [`DurableStore::append_batch`] rejects a batch that
/// would encode past it *before* writing — so an append that recovery
/// would discard is never acknowledged.
pub const MAX_RECORD_BYTES: u32 = 1 << 28;

/// The standard CRC-32 (IEEE 802.3, reflected) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// A durability failure.
#[derive(Debug)]
pub enum WalError {
    /// The storage backend failed.
    Io(io::Error),
    /// The file does not start with [`WAL_MAGIC`] — it is not a WAL (or
    /// is a future version); refusing to replay protects foreign files.
    NotAWal,
    /// A *replayed* (intact, checksummed) record named an item outside
    /// the store's item space: the log belongs to a different item
    /// space, so replaying it would build the wrong store.
    ItemSpaceMismatch(ItemOutOfRange),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal storage error: {e}"),
            WalError::NotAWal => write!(f, "file is not a bmb WAL (bad magic)"),
            WalError::ItemSpaceMismatch(e) => {
                write!(f, "wal does not match the store's item space: {e}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// An error from a durable append.
#[derive(Debug)]
pub enum DurableError {
    /// The WAL write or sync failed; nothing was acknowledged and the
    /// in-memory store was not modified.
    Wal(io::Error),
    /// A basket named an item outside the item space; nothing was
    /// logged or applied.
    ItemOutOfRange(ItemOutOfRange),
    /// The batch would encode past [`MAX_RECORD_BYTES`]; nothing was
    /// logged or applied. Recovery treats oversized length prefixes as
    /// tail damage, so such a record must never be written (let alone
    /// acknowledged) in the first place. Split the batch and retry.
    BatchTooLarge {
        /// The size the batch would occupy as one record payload.
        encoded_bytes: u64,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Wal(e) => write!(f, "append not durable: {e}"),
            DurableError::ItemOutOfRange(e) => write!(f, "{e}"),
            DurableError::BatchTooLarge { encoded_bytes } => write!(
                f,
                "batch encodes to {encoded_bytes} bytes, over the \
                 {MAX_RECORD_BYTES}-byte wal record limit; split the batch"
            ),
        }
    }
}

impl std::error::Error for DurableError {}

/// What [`DurableStore::open`] found while replaying the log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records replayed (batches + fences).
    pub records_replayed: u64,
    /// Baskets reconstructed into the store.
    pub baskets_recovered: u64,
    /// Bytes of damaged tail truncated away.
    pub truncated_bytes: u64,
    /// The store epoch after replay.
    pub epoch: u64,
}

/// Writer-side WAL state, guarded by one mutex so log order always
/// matches store-apply order.
struct WalInner {
    storage: Box<dyn Storage>,
    /// Offset just past the last record whose sync barrier succeeded —
    /// the repair target after a failed append leaves a torn tail.
    committed_len: u64,
    /// Set when a failed append's torn tail could not be repaired
    /// (truncated away): a later successful append would land *behind*
    /// the torn bytes and recovery would discard it, so instead every
    /// later append fails fast until the store is reopened.
    degraded: bool,
    /// Metric handles shared with the store's registry.
    metrics: WalMetrics,
}

/// Handle bundle for the WAL-writer metrics (`bmb_basket_wal_*`); the
/// cells live in the registry [`DurableStore`] owns.
#[derive(Clone)]
struct WalMetrics {
    syncs: Counter,
    sync_us: Histogram,
    repaired_tails: Counter,
    degraded: Gauge,
}

impl WalMetrics {
    fn register(registry: &Registry) -> WalMetrics {
        WalMetrics {
            syncs: registry.counter(
                "bmb_basket_wal_syncs_total",
                "Successful WAL sync barriers.",
            ),
            sync_us: registry.histogram(
                "bmb_basket_wal_sync_us",
                "WAL sync-barrier latency in microseconds.",
            ),
            repaired_tails: registry.counter(
                "bmb_basket_wal_repaired_tails_total",
                "Torn WAL tails truncated back to the committed offset.",
            ),
            degraded: registry.gauge(
                "bmb_basket_wal_degraded",
                "1 when the WAL refuses appends after an unrepairable tear.",
            ),
        }
    }
}

impl WalInner {
    /// Appends one framed record and runs the sync barrier.
    fn append_record(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        self.storage.append(&framed)?;
        let sync_start = Instant::now();
        let synced = self.storage.sync();
        self.metrics.sync_us.record_duration(sync_start.elapsed());
        synced?;
        self.metrics.syncs.inc();
        self.committed_len += framed.len() as u64;
        Ok(())
    }

    /// After a failed [`WalInner::append_record`] the media may hold a
    /// torn tail; cut the log back to the last committed offset so the
    /// next append starts at a clean record boundary. If the repair
    /// itself fails, the WAL degrades: acknowledging an append behind
    /// torn bytes would hand recovery a record it must discard.
    fn repair_or_degrade(&mut self) {
        let repaired = self
            .storage
            .truncate(self.committed_len)
            .and_then(|()| self.storage.sync())
            .is_ok();
        if repaired {
            self.metrics.repaired_tails.inc();
            bmb_obs::events().emit(Severity::Warn, "wal tail repaired after failed append", &[]);
        } else {
            self.degraded = true;
            self.metrics.degraded.set(1);
            bmb_obs::events().emit(
                Severity::Error,
                "wal degraded: torn tail could not be repaired",
                &[],
            );
        }
    }
}

/// An [`IncrementalStore`] whose acknowledged appends survive a crash.
///
/// Reads go straight to the wrapped store (snapshots are untouched by
/// durability); writes pass through the WAL first. See the module docs
/// for the format and the recovery invariants.
///
/// # Examples
///
/// ```
/// use bmb_basket::storage::MemStorage;
/// use bmb_basket::wal::DurableStore;
/// use bmb_basket::{Itemset, StoreConfig};
///
/// let media = MemStorage::new();
/// let bytes = media.bytes();
/// let (store, _) =
///     DurableStore::open(Box::new(media), 3, StoreConfig::default()).unwrap();
/// store.append_ids([0, 1]).unwrap();
/// store.append_ids([1, 2]).unwrap();
/// drop(store); // crash
///
/// let reopened = MemStorage::with_bytes(bytes);
/// let (store, report) =
///     DurableStore::open(Box::new(reopened), 3, StoreConfig::default()).unwrap();
/// assert_eq!(report.epoch, 2);
/// assert_eq!(store.snapshot().support(Itemset::from_ids([1]).items()), 2);
/// ```
pub struct DurableStore {
    store: Arc<IncrementalStore>,
    segment_capacity: usize,
    wal: Mutex<WalInner>,
    /// Per-store metrics registry (`bmb_basket_wal_*`); see
    /// [`DurableStore::observability`].
    obs: Arc<Registry>,
    /// Acknowledged WAL batch appends.
    appends: Counter,
    /// Baskets inside acknowledged appends.
    appended_baskets: Counter,
    /// Appends rejected by a WAL write/sync failure (or a degraded WAL).
    append_errors: Counter,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("store", &self.store)
            .finish_non_exhaustive()
    }
}

impl DurableStore {
    /// Opens a durable store over `storage`, replaying any existing log.
    ///
    /// An empty log gets the [`WAL_MAGIC`] header written; a non-empty
    /// log is replayed up to the last intact record and its damaged tail
    /// (if any) is truncated away.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on storage failures, [`WalError::NotAWal`] when
    /// the bytes are not a v1 WAL, and [`WalError::ItemSpaceMismatch`]
    /// when an intact record names an out-of-range item.
    pub fn open(
        mut storage: Box<dyn Storage>,
        n_items: usize,
        config: StoreConfig,
    ) -> Result<(DurableStore, RecoveryReport), WalError> {
        config.validate();
        let bytes = storage.read_all()?;
        let store = IncrementalStore::new(n_items, config);
        let mut report = RecoveryReport::default();

        let valid_end = if bytes.is_empty() {
            storage.append(WAL_MAGIC)?;
            storage.sync()?;
            WAL_MAGIC.len() as u64
        } else {
            if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
                return Err(WalError::NotAWal);
            }
            replay(&bytes, &store, &mut report)?
        };

        let total = storage.len()?;
        if total > valid_end {
            report.truncated_bytes = total - valid_end;
            storage.truncate(valid_end)?;
            storage.sync()?;
        }
        report.epoch = store.epoch();
        let obs = Arc::new(Registry::new());
        let metrics = WalMetrics::register(&obs);
        obs.gauge(
            "bmb_basket_wal_recovered_records",
            "Intact WAL records replayed at the last open.",
        )
        .set(i64::try_from(report.records_replayed).unwrap_or(i64::MAX));
        obs.gauge(
            "bmb_basket_wal_recovered_baskets",
            "Baskets reconstructed from the WAL at the last open.",
        )
        .set(i64::try_from(report.baskets_recovered).unwrap_or(i64::MAX));
        obs.gauge(
            "bmb_basket_wal_recovery_truncated_bytes",
            "Damaged tail bytes truncated away at the last open.",
        )
        .set(i64::try_from(report.truncated_bytes).unwrap_or(i64::MAX));
        if report.records_replayed > 0 || report.truncated_bytes > 0 {
            bmb_obs::events().emit(
                Severity::Info,
                "wal recovery replayed existing log",
                &[
                    ("records", &report.records_replayed.to_string()),
                    ("baskets", &report.baskets_recovered.to_string()),
                    ("truncated_bytes", &report.truncated_bytes.to_string()),
                ],
            );
        }
        Ok((
            DurableStore {
                store: Arc::new(store),
                segment_capacity: config.segment_capacity,
                wal: Mutex::new(WalInner {
                    storage,
                    committed_len: valid_end,
                    degraded: false,
                    metrics,
                }),
                appends: obs.counter(
                    "bmb_basket_wal_appends_total",
                    "Acknowledged (durable) WAL batch appends.",
                ),
                appended_baskets: obs.counter(
                    "bmb_basket_wal_appended_baskets_total",
                    "Baskets inside acknowledged WAL appends.",
                ),
                append_errors: obs.counter(
                    "bmb_basket_wal_append_errors_total",
                    "Appends rejected by a WAL write/sync failure or a degraded WAL.",
                ),
                obs,
            },
            report,
        ))
    }

    /// The store's metrics registry (`bmb_basket_wal_*` families):
    /// acknowledged appends, sync counts and latency, repaired tails,
    /// the degraded gauge, and last-open recovery stats. Snapshot it or
    /// merge it into a server-wide exposition.
    pub fn observability(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The wrapped in-memory store; hand this to a `QueryEngine` so
    /// reads bypass the WAL entirely.
    pub fn store(&self) -> &Arc<IncrementalStore> {
        &self.store
    }

    /// Total baskets ingested (acknowledged) so far.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// A consistent, immutable view of everything acknowledged so far.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.snapshot()
    }

    /// Appends one basket durably. Returns the epoch after the append;
    /// once this returns `Ok`, the basket survives a crash.
    ///
    /// # Errors
    ///
    /// See [`DurableStore::append_batch`].
    pub fn append<I: IntoIterator<Item = ItemId>>(&self, items: I) -> Result<u64, DurableError> {
        self.append_batch(std::iter::once(items.into_iter().collect::<Vec<ItemId>>()))
    }

    /// Appends a basket of raw `u32` ids durably; convenient in tests.
    ///
    /// # Errors
    ///
    /// See [`DurableStore::append_batch`].
    pub fn append_ids<I: IntoIterator<Item = u32>>(&self, ids: I) -> Result<u64, DurableError> {
        self.append(ids.into_iter().map(ItemId))
    }

    /// Appends many baskets durably under a single WAL lock: the batch
    /// is framed, checksummed, written, and synced *before* it is
    /// applied to the in-memory store, so an `Ok` return means every
    /// basket of the batch survives a crash. On `Err`, nothing is
    /// visible in the store (the log may hold a torn, unacknowledged
    /// tail, which recovery discards).
    ///
    /// # Errors
    ///
    /// [`DurableError::ItemOutOfRange`] for an invalid basket and
    /// [`DurableError::BatchTooLarge`] for a batch that would overflow
    /// one WAL record (nothing logged in either case);
    /// [`DurableError::Wal`] when the WAL write or sync fails.
    pub fn append_batch<B, I>(&self, baskets: B) -> Result<u64, DurableError>
    where
        B: IntoIterator<Item = I>,
        I: IntoIterator<Item = ItemId>,
    {
        let baskets: Vec<Vec<ItemId>> = baskets
            .into_iter()
            .map(|b| b.into_iter().collect())
            .collect();
        for basket in &baskets {
            for &item in basket {
                if item.index() >= self.store.n_items() {
                    return Err(DurableError::ItemOutOfRange(ItemOutOfRange {
                        item,
                        n_items: self.store.n_items(),
                    }));
                }
            }
        }
        // Bound the record before anything hits the log: replay treats
        // an oversized length prefix as tail damage, so a record it
        // would discard must never be written, let alone acknowledged.
        // (Size is arithmetic over the batch shape — no allocation.)
        let encoded_bytes = 5u64 + baskets.iter().map(|b| 4 + 4 * b.len() as u64).sum::<u64>();
        if encoded_bytes > u64::from(MAX_RECORD_BYTES) {
            return Err(DurableError::BatchTooLarge { encoded_bytes });
        }
        let n_baskets = baskets.len() as u64;
        let payload = encode_batch(&baskets);
        let mut wal = lock(&self.wal);
        if wal.degraded {
            self.append_errors.inc();
            return Err(DurableError::Wal(io::Error::other(
                "wal is degraded after an earlier storage failure",
            )));
        }
        if let Err(e) = wal.append_record(&payload) {
            // The media may hold a torn tail; repair it (or degrade) so
            // a later successful append cannot land behind torn bytes —
            // recovery stops at the tear and would discard it.
            wal.repair_or_degrade();
            self.append_errors.inc();
            return Err(DurableError::Wal(e));
        }
        // Durable from here on: apply to the store and acknowledge.
        let old_epoch = self.store.epoch();
        let epoch = match self.store.append_batch(baskets) {
            Ok(epoch) => epoch,
            // Unreachable: items were validated above. Map it anyway so
            // the library stays panic-free.
            Err(e) => return Err(DurableError::ItemOutOfRange(e)),
        };
        // A fence whenever this batch crossed a seal boundary. The fence
        // pins the post-batch epoch: replay re-derives seal boundaries
        // from the same capacity, so matching epochs imply matching
        // segment structure. A fence-write failure cannot un-acknowledge
        // durable data (replay is correct without the fence); the torn
        // fence is repaired like any failed append — or the WAL degrades.
        let cap = self.segment_capacity as u64;
        if epoch / cap > old_epoch / cap && wal.append_record(&encode_fence(epoch)).is_err() {
            wal.repair_or_degrade();
        }
        self.appends.inc();
        self.appended_baskets.add(n_baskets);
        Ok(epoch)
    }

    /// Whether the WAL can still acknowledge appends (`false` once a
    /// failed append left a torn tail that could not be repaired).
    pub fn is_healthy(&self) -> bool {
        !lock(&self.wal).degraded
    }
}

/// Encodes a basket batch payload.
fn encode_batch(baskets: &[Vec<ItemId>]) -> Vec<u8> {
    let items: usize = baskets.iter().map(Vec::len).sum();
    let mut payload = Vec::with_capacity(5 + 4 * baskets.len() + 4 * items);
    payload.push(KIND_BATCH);
    payload.extend_from_slice(&(baskets.len() as u32).to_le_bytes());
    for basket in baskets {
        payload.extend_from_slice(&(basket.len() as u32).to_le_bytes());
        for item in basket {
            payload.extend_from_slice(&item.0.to_le_bytes());
        }
    }
    payload
}

/// Encodes an epoch-fence payload.
fn encode_fence(epoch: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9);
    payload.push(KIND_FENCE);
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload
}

/// A little-endian cursor over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(chunk);
        Some(u64::from_le_bytes(raw))
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// One decoded record payload.
enum Record {
    Batch(Vec<Vec<ItemId>>),
    Fence(u64),
}

/// Decodes a checksum-verified payload; `None` means structural damage
/// (which, after a CRC pass, indicates a corrupt writer — treated the
/// same as tail damage: replay stops).
fn decode_payload(payload: &[u8]) -> Option<Record> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    match cur.u8()? {
        KIND_BATCH => {
            // Capacity hints are clamped by the payload size so a
            // corrupt count cannot drive a huge allocation.
            let cap_bound = payload.len() / 4;
            let n = cur.u32()?;
            let mut baskets = Vec::with_capacity((n as usize).min(cap_bound));
            for _ in 0..n {
                let m = cur.u32()?;
                let mut basket = Vec::with_capacity((m as usize).min(cap_bound));
                for _ in 0..m {
                    basket.push(ItemId(cur.u32()?));
                }
                baskets.push(basket);
            }
            cur.at_end().then_some(Record::Batch(baskets))
        }
        KIND_FENCE => {
            let epoch = cur.u64()?;
            cur.at_end().then_some(Record::Fence(epoch))
        }
        _ => None,
    }
}

/// Replays `bytes` (which start with a verified header) into `store`,
/// returning the offset just past the last intact record.
fn replay(
    bytes: &[u8],
    store: &IncrementalStore,
    report: &mut RecoveryReport,
) -> Result<u64, WalError> {
    let mut pos = WAL_MAGIC.len();
    // Stops at the first torn frame header; other damage breaks below.
    while let Some(frame) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if len > MAX_RECORD_BYTES {
            break; // absurd length: damaged frame
        }
        let start = pos + 8;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            break; // truncated payload
        };
        if crc32(payload) != crc {
            break; // bit flip
        }
        let Some(record) = decode_payload(payload) else {
            break; // structurally invalid despite CRC: stop here
        };
        match record {
            Record::Batch(baskets) => {
                let n = baskets.len() as u64;
                store
                    .append_batch(baskets)
                    .map_err(WalError::ItemSpaceMismatch)?;
                report.baskets_recovered += n;
            }
            Record::Fence(epoch) => {
                if store.epoch() != epoch {
                    break; // replay does not reach this fence: damage
                }
            }
        }
        report.records_replayed += 1;
        pos = start + len as usize;
    }
    Ok(pos as u64)
}

/// Acquires a mutex, recovering from poisoning: WAL state is only
/// mutated through panic-free code, so a poisoned lock still holds
/// consistent data.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FaultPlan, FaultStorage, MemStorage};
    use crate::Itemset;

    fn config() -> StoreConfig {
        StoreConfig {
            segment_capacity: 4,
        }
    }

    fn open_mem(bytes: Option<crate::storage::SharedBytes>) -> (DurableStore, RecoveryReport) {
        let storage = match bytes {
            Some(b) => MemStorage::with_bytes(b),
            None => MemStorage::new(),
        };
        match DurableStore::open(Box::new(storage), 8, config()) {
            Ok(pair) => pair,
            Err(e) => panic!("open failed: {e}"),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check values for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn appends_survive_reopen() {
        let (_, report) = open_mem(None);
        assert_eq!(report, RecoveryReport::default());

        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        for i in 0..10u32 {
            store.append_ids([i % 8, (i + 1) % 8]).unwrap();
        }
        store
            .append_batch([vec![ItemId(0)], vec![ItemId(1), ItemId(2)]])
            .unwrap();
        assert_eq!(store.epoch(), 12);
        drop(store); // crash

        let (recovered, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 12);
        assert_eq!(report.baskets_recovered, 12);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(recovered.epoch(), 12);
        let snap = recovered.snapshot();
        assert_eq!(snap.support(Itemset::from_ids([0]).items()), 4);
        // Segment structure is reproduced exactly (capacity 4, 12 baskets).
        assert_eq!(snap.sealed_segments().len(), 3);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_remains_usable() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        store.append_ids([2, 3]).unwrap();
        drop(store);

        // Tear the last record: chop 3 bytes off the tail.
        let torn_len = {
            let mut buf = bytes.lock().unwrap();
            let n = buf.len();
            buf.truncate(n - 3);
            buf.len()
        };
        let (recovered, report) = open_mem(Some(bytes.clone()));
        assert_eq!(report.epoch, 1, "only the first (intact) record replays");
        assert!(report.truncated_bytes > 0);
        assert!(report.truncated_bytes < torn_len as u64);
        // The repaired log accepts new appends and they survive.
        recovered.append_ids([4]).unwrap();
        drop(recovered);
        let (again, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 2);
        assert_eq!(again.snapshot().support(Itemset::from_ids([4]).items()), 1);
    }

    #[test]
    fn bit_flip_stops_replay_at_last_valid_record() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0]).unwrap();
        let clean_len = bytes.lock().unwrap().len();
        store.append_ids([1]).unwrap();
        drop(store);
        {
            // Flip a payload bit inside the second record.
            let mut buf = bytes.lock().unwrap();
            let idx = clean_len + 9; // past the second record's frame
            buf[idx] ^= 0x01;
        }
        let (_, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 1);
        assert!(report.truncated_bytes > 0);
    }

    #[test]
    fn foreign_files_are_rejected() {
        let mut mem = MemStorage::new();
        mem.append(b"definitely not a wal").unwrap();
        let err = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(_) => panic!("foreign file must not open"),
            Err(e) => e,
        };
        assert!(matches!(err, WalError::NotAWal));
    }

    #[test]
    fn wrong_item_space_is_a_hard_error() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([7]).unwrap();
        drop(store);
        let err = match DurableStore::open(Box::new(MemStorage::with_bytes(bytes)), 4, config()) {
            Ok(_) => panic!("item space mismatch must not open"),
            Err(e) => e,
        };
        assert!(matches!(err, WalError::ItemSpaceMismatch(_)));
    }

    #[test]
    fn failed_append_is_not_applied_and_recovery_agrees() {
        let faulty = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(header_and_one_record() + 5), // tears the 2nd record
            ..FaultPlan::default()
        });
        let bytes = faulty.bytes();
        let (store, _) = match DurableStore::open(Box::new(faulty), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        let err = store.append_ids([2, 3]).unwrap_err();
        assert!(matches!(err, DurableError::Wal(_)));
        // The failed append is not visible in memory...
        assert_eq!(store.epoch(), 1);
        drop(store);
        // ...and recovery reconstructs exactly the acknowledged state.
        let (recovered, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 1);
        assert!(report.truncated_bytes > 0);
        assert_eq!(
            recovered.snapshot().support(Itemset::from_ids([2]).items()),
            0
        );
    }

    /// Bytes occupied by the magic header plus one `[a, b]` basket
    /// record, measured so fault budgets can tear the second record.
    fn header_and_one_record() -> u64 {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        drop(store);
        let len = bytes.lock().unwrap().len() as u64;
        len
    }

    #[test]
    fn transient_fault_repairs_torn_tail_so_later_acks_survive() {
        // The reviewer scenario for the lost-ack bug: append A lands,
        // append B tears (transient ENOSPC/EIO), append C succeeds. If
        // the torn tail of B were left in place, recovery would stop at
        // it and discard the *acknowledged* C. The writer must repair
        // the tail before accepting C.
        let faulty = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(header_and_one_record() + 5),
            transient: true,
            ..FaultPlan::default()
        });
        let bytes = faulty.bytes();
        let (store, _) = match DurableStore::open(Box::new(faulty), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        let err = store.append_ids([2, 3]).unwrap_err();
        assert!(matches!(err, DurableError::Wal(_)));
        assert!(store.is_healthy(), "a repaired tail is not a degraded wal");
        store.append_ids([4, 5]).unwrap();
        assert_eq!(store.epoch(), 2);
        drop(store); // crash

        let (recovered, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 2, "the acked append after the fault is kept");
        assert_eq!(report.truncated_bytes, 0, "the writer already repaired");
        let snap = recovered.snapshot();
        assert_eq!(snap.support(Itemset::from_ids([0]).items()), 1);
        assert_eq!(snap.support(Itemset::from_ids([2]).items()), 0);
        assert_eq!(snap.support(Itemset::from_ids([4]).items()), 1);
    }

    #[test]
    fn unrepairable_torn_tail_degrades_the_wal() {
        // Permanent fault: the torn tail cannot be truncated away, so
        // the wal must refuse every later append instead of letting one
        // land behind the tear (where recovery would discard it).
        let faulty = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(header_and_one_record() + 5),
            ..FaultPlan::default()
        });
        let bytes = faulty.bytes();
        let (store, _) = match DurableStore::open(Box::new(faulty), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        assert!(store.append_ids([2, 3]).is_err());
        assert!(!store.is_healthy(), "unrepaired tear must degrade the wal");
        let err = store.append_ids([4, 5]).unwrap_err();
        assert!(
            err.to_string().contains("degraded"),
            "later appends fail fast, got: {err}"
        );
        assert_eq!(store.epoch(), 1, "rejected appends are not applied");
        drop(store);

        let (_, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 1, "exactly the acked prefix recovers");
        assert!(report.truncated_bytes > 0);
    }

    #[test]
    fn oversized_batch_is_rejected_before_logging() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        // Smallest basket whose record payload exceeds MAX_RECORD_BYTES.
        let n = (MAX_RECORD_BYTES as usize - 9) / 4 + 1;
        let err = store.append(vec![ItemId(0); n]).unwrap_err();
        match err {
            DurableError::BatchTooLarge { encoded_bytes } => {
                assert!(encoded_bytes > u64::from(MAX_RECORD_BYTES));
            }
            other => panic!("expected BatchTooLarge, got {other}"),
        }
        // Nothing was logged or applied, and the wal is still healthy.
        assert_eq!(store.epoch(), 0);
        assert!(store.is_healthy());
        assert_eq!(bytes.lock().unwrap().len(), WAL_MAGIC.len());
        store.append_ids([1]).unwrap();
        assert_eq!(store.epoch(), 1);
    }

    #[test]
    fn wal_metrics_track_appends_syncs_and_recovery() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        store
            .append_batch([vec![ItemId(2)], vec![ItemId(3)]])
            .unwrap();
        let snap = store.observability().snapshot();
        assert_eq!(snap.counter_value("bmb_basket_wal_appends_total", &[]), 2);
        assert_eq!(
            snap.counter_value("bmb_basket_wal_appended_baskets_total", &[]),
            3
        );
        assert!(snap.counter_value("bmb_basket_wal_syncs_total", &[]) >= 2);
        let sync_us = snap.histogram_value("bmb_basket_wal_sync_us", &[]);
        assert_eq!(
            sync_us.count(),
            snap.counter_value("bmb_basket_wal_syncs_total", &[])
        );
        assert_eq!(snap.gauge_value("bmb_basket_wal_degraded", &[]), 0);
        assert_eq!(
            snap.counter_value("bmb_basket_wal_append_errors_total", &[]),
            0
        );
        drop(store);

        // Reopen: recovery gauges reflect the replayed log.
        let (recovered, report) = open_mem(Some(bytes));
        let snap = recovered.observability().snapshot();
        assert_eq!(
            snap.gauge_value("bmb_basket_wal_recovered_records", &[]),
            report.records_replayed as i64
        );
        assert_eq!(snap.gauge_value("bmb_basket_wal_recovered_baskets", &[]), 3);
        assert_eq!(
            snap.gauge_value("bmb_basket_wal_recovery_truncated_bytes", &[]),
            0
        );
    }

    #[test]
    fn wal_metrics_track_repair_and_degradation() {
        // Transient fault: repaired tail increments the repair counter.
        let faulty = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(header_and_one_record() + 5),
            transient: true,
            ..FaultPlan::default()
        });
        let (store, _) = match DurableStore::open(Box::new(faulty), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        assert!(store.append_ids([2, 3]).is_err());
        let snap = store.observability().snapshot();
        assert_eq!(
            snap.counter_value("bmb_basket_wal_repaired_tails_total", &[]),
            1
        );
        assert_eq!(
            snap.counter_value("bmb_basket_wal_append_errors_total", &[]),
            1
        );
        assert_eq!(snap.gauge_value("bmb_basket_wal_degraded", &[]), 0);

        // Permanent fault: the degraded gauge latches to 1 and later
        // fast-failed appends count as errors.
        let faulty = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(header_and_one_record() + 5),
            ..FaultPlan::default()
        });
        let (store, _) = match DurableStore::open(Box::new(faulty), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        assert!(store.append_ids([2, 3]).is_err());
        assert!(store.append_ids([4, 5]).is_err());
        let snap = store.observability().snapshot();
        assert_eq!(snap.gauge_value("bmb_basket_wal_degraded", &[]), 1);
        assert_eq!(
            snap.counter_value("bmb_basket_wal_append_errors_total", &[]),
            2
        );
        assert_eq!(snap.counter_value("bmb_basket_wal_appends_total", &[]), 1);
    }

    #[test]
    fn fences_are_written_at_seal_boundaries() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        // One batch crossing two seal boundaries (capacity 4, 9 baskets).
        store
            .append_batch((0..9).map(|i| vec![ItemId(i % 8)]))
            .unwrap();
        drop(store);
        let buf = bytes.lock().unwrap().clone();
        // Count fence records by walking frames.
        let mut pos = WAL_MAGIC.len();
        let mut fences = Vec::new();
        while pos + 8 <= buf.len() {
            let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]);
            let payload = &buf[pos + 8..pos + 8 + len as usize];
            if payload[0] == KIND_FENCE {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&payload[1..9]);
                fences.push(u64::from_le_bytes(raw));
            }
            pos += 8 + len as usize;
        }
        assert_eq!(fences, vec![9], "one fence pinning the post-batch epoch");
        let (_, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 9);
        assert_eq!(report.records_replayed, 2, "one batch + one fence");
    }
}

//! Crash-safe durability: a checksummed write-ahead log for
//! [`IncrementalStore`].
//!
//! # Format
//!
//! The log is a fixed 8-byte header (`b"BMBWAL1\n"`) followed by
//! length-prefixed records:
//!
//! ```text
//! record  := len:u32le  crc:u32le  payload[len]      (crc = CRC32 of payload)
//! payload := 0x01  n:u32le  (m:u32le  id:u32le{m}){n}   — a basket batch
//!          | 0x02  epoch:u64le                          — an epoch fence
//! ```
//!
//! A basket-batch record is written (and synced) *before* the batch is
//! applied to the in-memory store; an append is acknowledged only after
//! the sync barrier, so every acknowledged basket is on durable media.
//! An epoch fence is appended whenever ingest seals a segment: it pins
//! the store epoch at a seal boundary, giving recovery a cross-check
//! that replay reproduced the exact segment structure.
//!
//! # Recovery invariants
//!
//! [`DurableStore::open`] replays the log front to back and stops at the
//! first record that is not provably intact: a truncated header, a
//! length prefix pointing past the end of the file (torn write), a CRC
//! mismatch (bit flip), or a fence naming an epoch the replayed store
//! does not have (misordered damage). Everything before the damage is
//! applied; the damaged tail is truncated away so the next append starts
//! at a clean record boundary.
//!
//! That rule is only safe if acknowledged records are always a clean
//! *prefix* of the log — damage must never sit in front of an acked
//! record. Recovery guarantees it for crashes (acked records were synced
//! before any later bytes), and the writer guarantees it for I/O faults:
//! when an append fails mid-record, the torn tail is truncated back to
//! the last committed offset before any further append is accepted, and
//! if that repair fails the WAL degrades — every later append fails fast
//! rather than landing behind torn bytes that recovery would stop at.
//! The torture test in `crates/core/tests/wal_torture.rs` enumerates
//! several hundred randomized fault points to pin exactly this.
//!
//! # Checkpointed (directory) mode
//!
//! A single append-only file replays from byte zero and grows forever.
//! [`DurableStore::open_dir`] instead manages a *directory*
//! ([`crate::storage::Dir`]) of rotating WAL segments plus checkpoint
//! snapshots and a manifest (formats in [`crate::checkpoint`]):
//!
//! ```text
//! wal.000000 wal.000001 …   — v2 segments: b"BMBWAL2\n" + base_epoch:u64le,
//!                             then the same record frames as v1
//! ckpt.<epoch, 20 digits>   — store snapshots (BMBCKPT1, CRC-trailed)
//! MANIFEST                  — durable checkpoint epochs (BMBMAN1, CRC'd)
//! ```
//!
//! A segment's `base_epoch` is the store epoch before its first record;
//! rotation happens at a record boundary once the active segment passes
//! [`DurabilityConfig::segment_bytes`]. [`DurableStore::checkpoint`]
//! serializes the current snapshot write-temp → fsync → atomic rename →
//! fsync-dir, appends its epoch to the manifest the same way, and then
//! applies retention: keep the newest [`DurabilityConfig::retain_checkpoints`]
//! snapshots and delete exactly the WAL segments wholly covered by the
//! *oldest retained* manifest epoch — so even if the newest snapshot is
//! later found corrupt, an older snapshot plus the WAL suffix it needs
//! are still on media.
//!
//! Recovery walks a ladder: newest valid checkpoint (manifest order,
//! then stray snapshot files) → older checkpoints → full replay; it then
//! replays only the WAL records *after* the loaded epoch, skipping
//! whole segments the checkpoint covers. Damage handling matches v1:
//! replay stops at the first non-intact record, the damaged segment is
//! truncated, and any later segments are discarded.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use bmb_obs::{Counter, Gauge, Histogram, Registry, Severity};

use crate::checkpoint::{
    checkpoint_name, decode_checkpoint, decode_manifest, encode_manifest, encode_snapshot,
    parse_checkpoint_name, write_atomic, MANIFEST_NAME, TMP_SUFFIX,
};
use crate::item::ItemId;
use crate::segment::{IncrementalStore, ItemOutOfRange, Snapshot, StoreConfig};
use crate::storage::{Dir, Storage};

/// Magic bytes opening every WAL file (versioned).
pub const WAL_MAGIC: &[u8; 8] = b"BMBWAL1\n";

/// Magic bytes opening every v2 (directory-mode) WAL segment.
pub const WAL2_MAGIC: &[u8; 8] = b"BMBWAL2\n";

/// Byte length of a v2 segment header (magic + `base_epoch:u64le`).
pub const WAL2_HEADER_LEN: usize = 16;

/// File name of the persisted node-generation record (fencing token)
/// in a directory-mode store.
pub const GEN_NAME: &str = "GEN";

/// Magic bytes opening the generation record (versioned).
pub const GEN_MAGIC: &[u8; 8] = b"BMBGEN1\n";

/// Encodes a generation record: magic + `generation:u64le` + CRC32 of
/// the payload bytes.
pub(crate) fn encode_generation(generation: u64) -> Vec<u8> {
    let payload = generation.to_le_bytes();
    let mut out = Vec::with_capacity(20);
    out.extend_from_slice(GEN_MAGIC);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

/// Decodes a generation record; `None` on any damage (wrong length,
/// magic, or CRC) — the caller falls back to the generation floor.
pub(crate) fn decode_generation(bytes: &[u8]) -> Option<u64> {
    if bytes.len() != 20 || &bytes[..8] != GEN_MAGIC {
        return None;
    }
    let mut payload = [0u8; 8];
    payload.copy_from_slice(&bytes[8..16]);
    let mut crc = [0u8; 4];
    crc.copy_from_slice(&bytes[16..20]);
    if crc32(&payload) != u32::from_le_bytes(crc) {
        return None;
    }
    Some(u64::from_le_bytes(payload))
}

/// The file name of WAL segment `index` (zero-padded so lexicographic
/// order is rotation order for the first million segments).
pub fn segment_name(index: u64) -> String {
    format!("wal.{index:06}")
}

/// Parses a [`segment_name`]-shaped file name back to its index.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal.")?;
    if digits.len() < 6 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Parses a v2 segment header, returning its `base_epoch`; `None` when
/// the bytes are too short or carry the wrong magic.
pub(crate) fn parse_segment_header(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < WAL2_HEADER_LEN || &bytes[..8] != WAL2_MAGIC {
        return None;
    }
    bytes
        .get(8..16)
        .and_then(|raw| raw.try_into().ok())
        .map(u64::from_le_bytes)
}

/// Tuning knobs for directory-mode durability
/// ([`DurableStore::open_dir`]).
#[derive(Clone, Copy, Debug)]
pub struct DurabilityConfig {
    /// Rotate the active WAL segment once its committed length passes
    /// this many bytes. Smaller segments bound per-segment replay and
    /// let retention reclaim space sooner; larger segments mean fewer
    /// files.
    pub segment_bytes: u64,
    /// Checkpoint snapshots kept on media (newest first). Retention
    /// deletes WAL segments covered by the *oldest* retained snapshot,
    /// so with the default of 2 a corrupted newest snapshot still
    /// leaves a previous one plus the WAL suffix it needs.
    pub retain_checkpoints: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            segment_bytes: 8 << 20,
            retain_checkpoints: 2,
        }
    }
}

impl DurabilityConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `segment_bytes` is smaller than one segment header or
    /// `retain_checkpoints` is zero.
    pub fn validate(&self) {
        assert!(
            self.segment_bytes >= WAL2_HEADER_LEN as u64,
            "segment_bytes must hold at least a segment header"
        );
        assert!(
            self.retain_checkpoints >= 1,
            "retain_checkpoints must be at least 1"
        );
    }
}

/// Record-kind byte for a basket batch.
const KIND_BATCH: u8 = 0x01;
/// Record-kind byte for an epoch fence.
const KIND_FENCE: u8 = 0x02;

/// Upper bound on a single record's payload. Replay treats a length
/// prefix beyond this as tail damage rather than attempting the
/// allocation, and [`DurableStore::append_batch`] rejects a batch that
/// would encode past it *before* writing — so an append that recovery
/// would discard is never acknowledged.
pub const MAX_RECORD_BYTES: u32 = 1 << 28;

/// The standard CRC-32 (IEEE 802.3, reflected) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// A durability failure.
#[derive(Debug)]
pub enum WalError {
    /// The storage backend failed.
    Io(io::Error),
    /// The file does not start with [`WAL_MAGIC`] — it is not a WAL (or
    /// is a future version); refusing to replay protects foreign files.
    NotAWal,
    /// A *replayed* (intact, checksummed) record named an item outside
    /// the store's item space: the log belongs to a different item
    /// space, so replaying it would build the wrong store.
    ItemSpaceMismatch(ItemOutOfRange),
    /// Directory-mode recovery found WAL segments starting *after* the
    /// state it could reconstruct: the records in between were
    /// reclaimed under a checkpoint that is now unreadable. Refusing to
    /// open beats silently resurrecting a store with a hole in it.
    MissingHistory {
        /// The epoch recovery reconstructed (checkpoint + replay).
        reached: u64,
        /// The base epoch of the first WAL record beyond the gap.
        wal_base: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal storage error: {e}"),
            WalError::NotAWal => write!(f, "file is not a bmb WAL (bad magic)"),
            WalError::ItemSpaceMismatch(e) => {
                write!(f, "wal does not match the store's item space: {e}")
            }
            WalError::MissingHistory { reached, wal_base } => write!(
                f,
                "wal history gap: recovery reached epoch {reached} but the \
                 next wal segment starts at epoch {wal_base}; the covering \
                 checkpoint is unreadable"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// An error from a durable append.
#[derive(Debug)]
pub enum DurableError {
    /// The WAL write or sync failed; nothing was acknowledged and the
    /// in-memory store was not modified.
    Wal(io::Error),
    /// A basket named an item outside the item space; nothing was
    /// logged or applied.
    ItemOutOfRange(ItemOutOfRange),
    /// The batch would encode past [`MAX_RECORD_BYTES`]; nothing was
    /// logged or applied. Recovery treats oversized length prefixes as
    /// tail damage, so such a record must never be written (let alone
    /// acknowledged) in the first place. Split the batch and retry.
    BatchTooLarge {
        /// The size the batch would occupy as one record payload.
        encoded_bytes: u64,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Wal(e) => write!(f, "append not durable: {e}"),
            DurableError::ItemOutOfRange(e) => write!(f, "{e}"),
            DurableError::BatchTooLarge { encoded_bytes } => write!(
                f,
                "batch encodes to {encoded_bytes} bytes, over the \
                 {MAX_RECORD_BYTES}-byte wal record limit; split the batch"
            ),
        }
    }
}

impl std::error::Error for DurableError {}

/// What [`DurableStore::open`] / [`DurableStore::open_dir`] found while
/// recovering.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records replayed (batches + fences) — in directory mode,
    /// only the records *after* the loaded checkpoint.
    pub records_replayed: u64,
    /// Baskets reconstructed into the store by WAL replay.
    pub baskets_recovered: u64,
    /// Bytes of damaged tail truncated away (including whole segments
    /// discarded past a damage point).
    pub truncated_bytes: u64,
    /// The store epoch after recovery.
    pub epoch: u64,
    /// Intact records skipped because the checkpoint already covered
    /// them (directory mode).
    pub records_skipped: u64,
    /// Whole WAL segments skipped without decoding because the
    /// checkpoint covered their entire epoch range (directory mode).
    pub segments_skipped: u64,
    /// The epoch of the checkpoint recovery restored from (0 = none).
    pub checkpoint_epoch: u64,
    /// Checkpoint candidates that failed validation before one loaded
    /// (or before falling back to full replay).
    pub checkpoint_fallbacks: u64,
    /// WAL segments on media after recovery (0 in single-file mode).
    pub wal_segments: u64,
}

/// One on-media WAL segment the writer knows about.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SegMeta {
    /// The segment's rotation index (its [`segment_name`]).
    pub(crate) index: u64,
    /// Store epoch before the segment's first record.
    pub(crate) base_epoch: u64,
}

/// A shared handle to the durability directory: rotation (under the WAL
/// lock) and checkpointing (never holding the WAL lock) both need it,
/// so it lives behind its own mutex with a strict WAL-then-dir lock
/// order.
pub(crate) type SharedDirHandle = Arc<Mutex<Box<dyn Dir>>>;

/// Directory-mode writer state.
pub(crate) struct DirMode {
    pub(crate) dir: SharedDirHandle,
    /// Segments on media, ascending by index; the last one is active.
    pub(crate) segments: Vec<SegMeta>,
    /// Rotation threshold (committed bytes in the active segment).
    segment_bytes: u64,
}

/// Writer-side WAL state, guarded by one mutex so log order always
/// matches store-apply order.
pub(crate) struct WalInner {
    storage: Box<dyn Storage>,
    /// Offset just past the last record whose sync barrier succeeded —
    /// the repair target after a failed append leaves a torn tail.
    committed_len: u64,
    /// Set when a failed append's torn tail could not be repaired
    /// (truncated away): a later successful append would land *behind*
    /// the torn bytes and recovery would discard it, so instead every
    /// later append fails fast until the store is reopened.
    degraded: bool,
    /// Metric handles shared with the store's registry.
    metrics: WalMetrics,
    /// Segment rotation state; `None` in single-file mode.
    pub(crate) dir_mode: Option<DirMode>,
}

/// Handle bundle for the WAL-writer metrics (`bmb_basket_wal_*`); the
/// cells live in the registry [`DurableStore`] owns.
#[derive(Clone)]
struct WalMetrics {
    syncs: Counter,
    sync_us: Histogram,
    repaired_tails: Counter,
    degraded: Gauge,
    rotations: Counter,
    rotation_errors: Counter,
    wal_segments: Gauge,
}

impl WalMetrics {
    fn register(registry: &Registry) -> WalMetrics {
        WalMetrics {
            syncs: registry.counter(
                "bmb_basket_wal_syncs_total",
                "Successful WAL sync barriers.",
            ),
            sync_us: registry.histogram(
                "bmb_basket_wal_sync_us",
                "WAL sync-barrier latency in microseconds.",
            ),
            repaired_tails: registry.counter(
                "bmb_basket_wal_repaired_tails_total",
                "Torn WAL tails truncated back to the committed offset.",
            ),
            degraded: registry.gauge(
                "bmb_basket_wal_degraded",
                "1 when the WAL refuses appends after an unrepairable tear.",
            ),
            rotations: Counter::detached(),
            rotation_errors: Counter::detached(),
            wal_segments: Gauge::detached(),
        }
    }

    /// Registers the directory-mode families on top of
    /// [`WalMetrics::register`].
    fn register_dir(registry: &Registry) -> WalMetrics {
        let mut metrics = WalMetrics::register(registry);
        metrics.rotations = registry.counter(
            "bmb_basket_wal_rotations_total",
            "WAL segments opened by rotation.",
        );
        metrics.rotation_errors = registry.counter(
            "bmb_basket_wal_rotation_errors_total",
            "Failed rotation attempts (appends continue in the old segment).",
        );
        metrics.wal_segments = registry.gauge(
            "bmb_basket_wal_segments",
            "WAL segments currently on media.",
        );
        metrics
    }
}

impl WalInner {
    /// Appends one framed record and runs the sync barrier.
    fn append_record(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        self.storage.append(&framed)?;
        let sync_start = Instant::now();
        let synced = self.storage.sync();
        self.metrics.sync_us.record_duration(sync_start.elapsed());
        synced?;
        self.metrics.syncs.inc();
        self.committed_len += framed.len() as u64;
        Ok(())
    }

    /// After a failed [`WalInner::append_record`] the media may hold a
    /// torn tail; cut the log back to the last committed offset so the
    /// next append starts at a clean record boundary. If the repair
    /// itself fails, the WAL degrades: acknowledging an append behind
    /// torn bytes would hand recovery a record it must discard.
    fn repair_or_degrade(&mut self) {
        let repaired = self
            .storage
            .truncate(self.committed_len)
            .and_then(|()| self.storage.sync())
            .is_ok();
        if repaired {
            self.metrics.repaired_tails.inc();
            bmb_obs::events().emit(Severity::Warn, "wal tail repaired after failed append", &[]);
        } else {
            self.degraded = true;
            self.metrics.degraded.set(1);
            bmb_obs::events().emit(
                Severity::Error,
                "wal degraded: torn tail could not be repaired",
                &[],
            );
        }
    }

    /// Rotates to a fresh segment once the active one passes the size
    /// threshold (directory mode only; single-file mode is a no-op).
    ///
    /// The new segment's header is written and synced, then the
    /// directory entry is synced, *before* the writer switches over —
    /// a crash anywhere leaves either the old segment active or a
    /// valid (possibly empty) new one. Rotation failure is benign: the
    /// partial file is deleted best-effort and appends continue in the
    /// old segment until the next boundary retries.
    fn maybe_rotate(&mut self, epoch: u64) {
        let Some(dm) = &mut self.dir_mode else {
            return;
        };
        if self.committed_len < dm.segment_bytes {
            return;
        }
        let next_index = match dm.segments.last() {
            Some(last) => last.index + 1,
            None => 0,
        };
        let name = segment_name(next_index);
        // Rotation must create+sync the segment under the dir mutex so
        // concurrent rotations cannot interleave. // lock:allow(io)
        let mut dir = lock(&dm.dir);
        let created = (|| -> io::Result<Box<dyn Storage>> {
            let mut file = dir.create(&name)?;
            let mut header = Vec::with_capacity(WAL2_HEADER_LEN);
            header.extend_from_slice(WAL2_MAGIC);
            header.extend_from_slice(&epoch.to_le_bytes());
            file.append(&header)?;
            file.sync()?;
            dir.sync()?;
            Ok(file)
        })();
        match created {
            Ok(file) => {
                drop(dir);
                self.storage = file;
                self.committed_len = WAL2_HEADER_LEN as u64;
                dm.segments.push(SegMeta {
                    index: next_index,
                    base_epoch: epoch,
                });
                self.metrics.rotations.inc();
                self.metrics
                    .wal_segments
                    .set(i64::try_from(dm.segments.len()).unwrap_or(i64::MAX));
                bmb_obs::events().emit(
                    Severity::Info,
                    "wal rotated to a new segment",
                    &[("segment", &name), ("base_epoch", &epoch.to_string())],
                );
            }
            Err(e) => {
                // The half-created file (if any) must not look like a
                // segment; remove it while the media allows.
                let _ = dir.delete(&name);
                drop(dir);
                self.metrics.rotation_errors.inc();
                bmb_obs::events().emit(
                    Severity::Warn,
                    "wal rotation failed; continuing in the old segment",
                    &[("segment", &name), ("error", &e.to_string())],
                );
            }
        }
    }
}

/// An [`IncrementalStore`] whose acknowledged appends survive a crash.
///
/// Reads go straight to the wrapped store (snapshots are untouched by
/// durability); writes pass through the WAL first. See the module docs
/// for the format and the recovery invariants.
///
/// # Examples
///
/// ```
/// use bmb_basket::storage::MemStorage;
/// use bmb_basket::wal::DurableStore;
/// use bmb_basket::{Itemset, StoreConfig};
///
/// let media = MemStorage::new();
/// let bytes = media.bytes();
/// let (store, _) =
///     DurableStore::open(Box::new(media), 3, StoreConfig::default()).unwrap();
/// store.append_ids([0, 1]).unwrap();
/// store.append_ids([1, 2]).unwrap();
/// drop(store); // crash
///
/// let reopened = MemStorage::with_bytes(bytes);
/// let (store, report) =
///     DurableStore::open(Box::new(reopened), 3, StoreConfig::default()).unwrap();
/// assert_eq!(report.epoch, 2);
/// assert_eq!(store.snapshot().support(Itemset::from_ids([1]).items()), 2);
/// ```
pub struct DurableStore {
    store: Arc<IncrementalStore>,
    pub(crate) segment_capacity: usize,
    pub(crate) wal: Mutex<WalInner>,
    /// Per-store metrics registry (`bmb_basket_wal_*` and
    /// `bmb_basket_ckpt_*`); see [`DurableStore::observability`].
    obs: Arc<Registry>,
    /// Acknowledged WAL batch appends.
    appends: Counter,
    /// Baskets inside acknowledged appends.
    appended_baskets: Counter,
    /// Appends rejected by a WAL write/sync failure (or a degraded WAL).
    append_errors: Counter,
    /// Checkpoint machinery; `None` in single-file mode.
    pub(crate) ckpt: Option<CkptShared>,
    /// Monotonic fencing generation; persisted as the `GEN` record in
    /// directory mode, memory-only in single-file mode.
    generation: AtomicU64,
}

/// Checkpoint-side state of a directory-mode [`DurableStore`].
pub(crate) struct CkptShared {
    pub(crate) dir: SharedDirHandle,
    pub(crate) config: DurabilityConfig,
    /// Serializes [`DurableStore::checkpoint`] calls and tracks which
    /// snapshots are on media vs durably manifested.
    pub(crate) state: Mutex<CkptState>,
    metrics: CkptMetrics,
}

/// Which checkpoint epochs exist where.
pub(crate) struct CkptState {
    /// Epochs recorded in the durable manifest, ascending.
    pub(crate) manifest: Vec<u64>,
    /// Epochs with a snapshot file on media (superset of `manifest`
    /// between a snapshot rename and its manifest update).
    pub(crate) files: Vec<u64>,
}

/// Handle bundle for the checkpoint metrics (`bmb_basket_ckpt_*` plus
/// the WAL reclaim counter).
#[derive(Clone)]
struct CkptMetrics {
    checkpoints: Counter,
    errors: Counter,
    duration_us: Histogram,
    last_epoch: Gauge,
    reclaimed_bytes: Counter,
}

impl CkptMetrics {
    fn register(registry: &Registry) -> CkptMetrics {
        CkptMetrics {
            checkpoints: registry.counter(
                "bmb_basket_ckpt_total",
                "Checkpoints durably written (snapshot + manifest).",
            ),
            errors: registry.counter(
                "bmb_basket_ckpt_errors_total",
                "Checkpoint attempts that failed before becoming durable.",
            ),
            duration_us: registry.histogram(
                "bmb_basket_ckpt_duration_us",
                "End-to-end checkpoint duration in microseconds.",
            ),
            last_epoch: registry.gauge(
                "bmb_basket_ckpt_last_epoch",
                "Epoch of the newest durable checkpoint (0 = none).",
            ),
            reclaimed_bytes: registry.counter(
                "bmb_basket_wal_reclaimed_bytes_total",
                "WAL segment bytes deleted by checkpoint retention.",
            ),
        }
    }
}

/// What one [`DurableStore::checkpoint`] call accomplished.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointStats {
    /// The store epoch the snapshot captured.
    pub epoch: u64,
    /// End-to-end wall time (serialize, write, fsync, rename, manifest,
    /// retention).
    pub duration: Duration,
    /// Snapshot file size in bytes.
    pub snapshot_bytes: u64,
    /// WAL segments deleted by retention.
    pub wal_segments_deleted: u64,
    /// WAL bytes reclaimed by retention.
    pub reclaimed_bytes: u64,
}

/// An error from [`DurableStore::checkpoint`].
#[derive(Debug)]
pub enum CheckpointError {
    /// The store was opened with [`DurableStore::open`] (single-file
    /// mode); there is no checkpoint directory to write into.
    NotCheckpointed,
    /// A storage step failed before the checkpoint became durable. The
    /// directory is still consistent: either the old state or a stray
    /// temp file that recovery (and the next attempt) cleans up.
    Io(io::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::NotCheckpointed => {
                write!(f, "store was opened without a checkpoint directory")
            }
            CheckpointError::Io(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("store", &self.store)
            .finish_non_exhaustive()
    }
}

impl DurableStore {
    /// Opens a durable store over `storage`, replaying any existing log.
    ///
    /// An empty log gets the [`WAL_MAGIC`] header written; a non-empty
    /// log is replayed up to the last intact record and its damaged tail
    /// (if any) is truncated away.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on storage failures, [`WalError::NotAWal`] when
    /// the bytes are not a v1 WAL, and [`WalError::ItemSpaceMismatch`]
    /// when an intact record names an out-of-range item.
    pub fn open(
        mut storage: Box<dyn Storage>,
        n_items: usize,
        config: StoreConfig,
    ) -> Result<(DurableStore, RecoveryReport), WalError> {
        config.validate();
        let bytes = storage.read_all()?;
        let store = IncrementalStore::new(n_items, config);
        let mut report = RecoveryReport::default();

        let valid_end = if bytes.is_empty() {
            storage.append(WAL_MAGIC)?;
            storage.sync()?;
            WAL_MAGIC.len() as u64
        } else {
            if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
                return Err(WalError::NotAWal);
            }
            replay(&bytes, &store, &mut report)?
        };

        let total = storage.len()?;
        if total > valid_end {
            report.truncated_bytes = total - valid_end;
            storage.truncate(valid_end)?;
            storage.sync()?;
        }
        report.epoch = store.epoch();
        let obs = Arc::new(Registry::new());
        let metrics = WalMetrics::register(&obs);
        register_recovery_gauges(&obs, &report);
        Ok((
            DurableStore::assemble(
                store,
                config,
                WalInner {
                    storage,
                    committed_len: valid_end,
                    degraded: false,
                    metrics,
                    dir_mode: None,
                },
                obs,
                None,
                1,
            ),
            report,
        ))
    }

    /// Shared constructor: wires the append counters and (in directory
    /// mode) the checkpoint machinery onto an assembled writer state.
    fn assemble(
        store: IncrementalStore,
        config: StoreConfig,
        wal: WalInner,
        obs: Arc<Registry>,
        ckpt: Option<CkptShared>,
        generation: u64,
    ) -> DurableStore {
        DurableStore {
            store: Arc::new(store),
            segment_capacity: config.segment_capacity,
            wal: Mutex::new(wal),
            appends: obs.counter(
                "bmb_basket_wal_appends_total",
                "Acknowledged (durable) WAL batch appends.",
            ),
            appended_baskets: obs.counter(
                "bmb_basket_wal_appended_baskets_total",
                "Baskets inside acknowledged WAL appends.",
            ),
            append_errors: obs.counter(
                "bmb_basket_wal_append_errors_total",
                "Appends rejected by a WAL write/sync failure or a degraded WAL.",
            ),
            obs,
            ckpt,
            generation: AtomicU64::new(generation.max(1)),
        }
    }

    /// Opens a durable store over a directory of rotating WAL segments
    /// and checkpoint snapshots (see the module docs for the layout).
    ///
    /// Recovery ladder: the newest checkpoint the manifest names that
    /// validates (magic, CRC, geometry) — else the next older — else any
    /// stray snapshot file — else full WAL replay. Only records after
    /// the loaded epoch are replayed; segments wholly covered are
    /// skipped without decoding. Stray `*.tmp` files are deleted, a
    /// torn trailing segment (crashed rotation) is dropped, and tail
    /// damage is truncated exactly like single-file mode.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on storage failures, [`WalError::NotAWal`] when
    /// a non-trailing segment does not carry the v2 magic,
    /// [`WalError::ItemSpaceMismatch`] when an intact record names an
    /// out-of-range item, and [`WalError::MissingHistory`] when the
    /// surviving segments start past the reconstructable epoch (their
    /// covering checkpoint is unreadable).
    pub fn open_dir(
        dir: Box<dyn Dir>,
        n_items: usize,
        config: StoreConfig,
        durability: DurabilityConfig,
    ) -> Result<(DurableStore, RecoveryReport), WalError> {
        config.validate();
        durability.validate();
        let mut dir = dir;
        let mut report = RecoveryReport::default();

        // Inventory the directory; stray temps from an interrupted
        // atomic write are dead weight.
        let names = dir.list()?;
        for name in &names {
            if name.ends_with(TMP_SUFFIX) {
                let _ = dir.delete(name);
            }
        }
        // The fencing generation lives beside the log. A missing or
        // damaged record resets to the floor (1): fencing only needs
        // monotonicity from here on, and `set_generation` re-establishes
        // it by persisting before acknowledging any bump.
        let generation = if names.iter().any(|n| n == GEN_NAME) {
            dir.open(GEN_NAME)
                .and_then(|mut f| f.read_all())
                .ok()
                .and_then(|bytes| decode_generation(&bytes))
                .unwrap_or(1)
        } else {
            1
        };
        let mut ckpt_files: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_checkpoint_name(n))
            .collect();
        ckpt_files.sort_unstable();
        ckpt_files.dedup();
        let mut seg_indexes: Vec<u64> =
            names.iter().filter_map(|n| parse_segment_name(n)).collect();
        seg_indexes.sort_unstable();

        // The manifest orders the ladder; if it is damaged or missing we
        // still try every snapshot file on media, newest first.
        let manifest: Vec<u64> = if names.iter().any(|n| n == MANIFEST_NAME) {
            dir.open(MANIFEST_NAME)
                .and_then(|mut f| f.read_all())
                .ok()
                .and_then(|bytes| decode_manifest(&bytes))
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        let mut candidates: Vec<u64> = manifest
            .iter()
            .rev()
            .copied()
            .filter(|e| ckpt_files.binary_search(e).is_ok())
            .collect();
        for &epoch in ckpt_files.iter().rev() {
            if !candidates.contains(&epoch) {
                candidates.push(epoch);
            }
        }

        // The ladder: first candidate that validates and restores wins.
        let mut store = IncrementalStore::new(n_items, config);
        let mut ckpt_epoch = 0u64;
        for &epoch in &candidates {
            let restored = (|| {
                let bytes = dir.open(&checkpoint_name(epoch)).ok()?.read_all().ok()?;
                let data = decode_checkpoint(&bytes, n_items, config.segment_capacity)?;
                if data.epoch != epoch {
                    return None;
                }
                let fresh = IncrementalStore::new(n_items, config);
                fresh.append_batch(data.baskets).ok()?;
                Some(fresh)
            })();
            match restored {
                Some(fresh) => {
                    store = fresh;
                    ckpt_epoch = epoch;
                    break;
                }
                None => report.checkpoint_fallbacks += 1,
            }
        }
        report.checkpoint_epoch = ckpt_epoch;

        // Read every surviving segment and its header.
        struct SegFile {
            index: u64,
            handle: Box<dyn Storage>,
            bytes: Vec<u8>,
            base: Option<u64>,
            valid_end: u64,
        }
        let max_seen_index = seg_indexes.last().copied();
        let mut segs: Vec<SegFile> = Vec::with_capacity(seg_indexes.len());
        for &index in &seg_indexes {
            let mut handle = dir.open(&segment_name(index))?;
            let bytes = handle.read_all()?;
            let base = parse_segment_header(&bytes);
            let valid_end = bytes.len() as u64;
            segs.push(SegFile {
                index,
                handle,
                bytes,
                base,
                valid_end,
            });
        }
        // A torn header on the *trailing* segment is a crashed rotation:
        // nothing acked lives there, drop the file. Anywhere else the
        // magic is load-bearing — refuse foreign bytes.
        while segs.last().is_some_and(|s| s.base.is_none()) {
            if let Some(dead) = segs.pop() {
                report.truncated_bytes += dead.bytes.len() as u64;
                drop(dead.handle);
                dir.delete(&segment_name(dead.index))?;
                dir.sync()?;
            }
        }
        if segs.iter().any(|s| s.base.is_none()) {
            return Err(WalError::NotAWal);
        }

        // Replay, skipping what the checkpoint covers. `cum` tracks the
        // epoch the WAL byte stream has reached.
        let mut cum = match segs.first() {
            Some(first) => first.base.unwrap_or(0),
            None => store.epoch(),
        };
        if cum > store.epoch() {
            return Err(WalError::MissingHistory {
                reached: store.epoch(),
                wal_base: cum,
            });
        }
        let mut discard_from: Option<usize> = None;
        for i in 0..segs.len() {
            let base = segs[i].base.unwrap_or(0);
            if base > cum {
                if base <= ckpt_epoch {
                    // Gap under checkpoint cover: a damaged tail was
                    // truncated below a later snapshot in a previous
                    // life. The records are safe inside the snapshot.
                    cum = base;
                } else {
                    return Err(WalError::MissingHistory {
                        reached: cum,
                        wal_base: base,
                    });
                }
            } else if base < cum {
                // Overlapping epochs cannot come from this writer.
                discard_from = Some(i);
                break;
            }
            if let Some(next_base) = segs.get(i + 1).and_then(|s| s.base) {
                if next_base <= ckpt_epoch {
                    // Whole segment under checkpoint cover: skip the
                    // decode entirely.
                    report.segments_skipped += 1;
                    cum = next_base;
                    continue;
                }
            }
            let (valid_end, damaged) =
                replay_segment(&segs[i].bytes, &store, ckpt_epoch, &mut cum, &mut report)?;
            segs[i].valid_end = valid_end;
            if damaged {
                report.truncated_bytes += segs[i].bytes.len() as u64 - valid_end;
                segs[i].handle.truncate(valid_end)?;
                segs[i].handle.sync()?;
                discard_from = Some(i + 1);
                break;
            }
        }
        if let Some(at) = discard_from {
            for dead in segs.drain(at..) {
                report.truncated_bytes += dead.bytes.len() as u64;
                drop(dead.handle);
                dir.delete(&segment_name(dead.index))?;
            }
            dir.sync()?;
        }

        // Pick (or create) the active segment. When the WAL ends below
        // the checkpoint epoch — its tail was damaged but the snapshot
        // covers it — appending into the old segment would leave an
        // epoch gap in the record stream, so rotate to a fresh segment
        // based at the recovered epoch instead.
        let dir: SharedDirHandle = Arc::new(Mutex::new(dir));
        let mut metas: Vec<SegMeta> = segs
            .iter()
            .map(|s| SegMeta {
                index: s.index,
                base_epoch: s.base.unwrap_or(0),
            })
            .collect();
        let needs_fresh_segment = segs.is_empty() || cum != store.epoch();
        let (active_storage, committed_len) = if needs_fresh_segment {
            let next_index = match (segs.last(), max_seen_index) {
                (Some(last), _) => last.index + 1,
                (None, Some(max)) => max + 1,
                (None, None) => 0,
            };
            let name = segment_name(next_index);
            // Open-time bootstrap: no other thread can hold our locks
            // yet, so creating the first segment under the dir mutex
            // is safe. // lock:allow(io)
            let mut d = lock(&dir);
            let mut file = d.create(&name)?;
            let mut header = Vec::with_capacity(WAL2_HEADER_LEN);
            header.extend_from_slice(WAL2_MAGIC);
            header.extend_from_slice(&store.epoch().to_le_bytes());
            file.append(&header)?;
            file.sync()?;
            d.sync()?;
            drop(d);
            metas.push(SegMeta {
                index: next_index,
                base_epoch: store.epoch(),
            });
            (file, WAL2_HEADER_LEN as u64)
        } else {
            let last = match segs.pop() {
                Some(last) => last,
                // Unreachable: needs_fresh_segment covers the empty case.
                None => return Err(WalError::Io(io::Error::other("no active segment"))),
            };
            (last.handle, last.valid_end)
        };

        report.epoch = store.epoch();
        report.wal_segments = metas.len() as u64;
        let obs = Arc::new(Registry::new());
        let metrics = WalMetrics::register_dir(&obs);
        metrics
            .wal_segments
            .set(i64::try_from(metas.len()).unwrap_or(i64::MAX));
        let ckpt_metrics = CkptMetrics::register(&obs);
        ckpt_metrics
            .last_epoch
            .set(i64::try_from(ckpt_epoch).unwrap_or(i64::MAX));
        register_recovery_gauges(&obs, &report);

        let wal = WalInner {
            storage: active_storage,
            committed_len,
            degraded: false,
            metrics,
            dir_mode: Some(DirMode {
                dir: Arc::clone(&dir),
                segments: metas,
                segment_bytes: durability.segment_bytes,
            }),
        };
        let ckpt = CkptShared {
            dir,
            config: durability,
            state: Mutex::new(CkptState {
                manifest,
                files: ckpt_files,
            }),
            metrics: ckpt_metrics,
        };
        Ok((
            DurableStore::assemble(store, config, wal, obs, Some(ckpt), generation),
            report,
        ))
    }

    /// Writes a durable checkpoint of the current store state and
    /// applies retention.
    ///
    /// The snapshot is taken under the WAL lock (a few microseconds —
    /// snapshots are `Arc`-shared) so it is exactly consistent with the
    /// durable log; serialization and all file I/O happen outside it,
    /// so ingest stalls only for the snapshot grab. Protocol: snapshot
    /// file via write-temp → fsync → atomic rename → fsync-dir, then
    /// the manifest the same way, then retention — old snapshots beyond
    /// [`DurabilityConfig::retain_checkpoints`] and WAL segments wholly
    /// covered by the oldest retained epoch are deleted. Segments are
    /// only ever reclaimed once at least two checkpoints are retained,
    /// so the newest snapshot is never a single point of failure: a
    /// corrupted checkpoint always leaves either an older snapshot plus
    /// its tail of segments, or the full log for a complete replay.
    ///
    /// Checkpointing at an epoch that already has a durable snapshot
    /// rewrites it idempotently.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::NotCheckpointed`] in single-file mode;
    /// [`CheckpointError::Io`] when a storage step fails (the directory
    /// stays consistent — the next attempt starts clean).
    pub fn checkpoint(&self) -> Result<CheckpointStats, CheckpointError> {
        let Some(ckpt) = &self.ckpt else {
            return Err(CheckpointError::NotCheckpointed);
        };
        // One checkpoint at a time; also the lock order anchor, and the
        // checkpoint state intentionally spans the snapshot + rename
        // I/O below. // lock:order(state < wal < dir) // lock:allow(io)
        let mut state = lock(&ckpt.state);
        let start = Instant::now();

        // Consistent cut: the store only advances under the WAL lock,
        // so snapshot + segment inventory taken here agree exactly.
        let (snap, segments) = {
            let wal = lock(&self.wal);
            let snap = self.store.snapshot();
            let segments = match &wal.dir_mode {
                Some(dm) => dm.segments.clone(),
                None => Vec::new(),
            };
            (snap, segments)
        };
        let epoch = snap.epoch();

        // Serialize outside every lock: the snapshot is immutable.
        let bytes = encode_snapshot(&snap, self.segment_capacity);
        let snapshot_bytes = bytes.len() as u64;
        drop(snap);

        let result = (|| -> io::Result<(u64, u64)> {
            // The whole publish + retention sequence is one critical
            // section over the checkpoint dir. // lock:allow(io)
            let mut dir = lock(&ckpt.dir);
            write_atomic(dir.as_mut(), &checkpoint_name(epoch), &bytes)?;
            if !state.files.contains(&epoch) {
                state.files.push(epoch);
                state.files.sort_unstable();
            }

            // The manifest is what makes the checkpoint *durable* in the
            // retention sense: segments are only reclaimed under epochs
            // the manifest names.
            let mut manifest = state.manifest.clone();
            if !manifest.contains(&epoch) {
                manifest.push(epoch);
                manifest.sort_unstable();
            }
            let keep_from = manifest
                .len()
                .saturating_sub(ckpt.config.retain_checkpoints);
            let retained: Vec<u64> = manifest[keep_from..].to_vec();
            write_atomic(dir.as_mut(), MANIFEST_NAME, &encode_manifest(&retained))?;
            state.manifest = retained.clone();

            // Retention. Snapshot files first: everything not retained.
            let mut retired = Vec::new();
            for &old in &state.files {
                if !retained.contains(&old) && dir.delete(&checkpoint_name(old)).is_ok() {
                    retired.push(old);
                }
            }
            state.files.retain(|e| !retired.contains(e));
            // WAL segments: only those wholly covered by the *oldest*
            // retained epoch (so every retained snapshot can still fall
            // back to replay), and never the active segment. With fewer
            // than two retained checkpoints nothing is reclaimed: the
            // sole snapshot must never become a single point of failure
            // — if it corrupts, recovery falls back to full replay,
            // which needs every segment.
            let coverage = if retained.len() >= 2 {
                retained.first().copied().unwrap_or(0)
            } else {
                0
            };
            let mut deleted = Vec::new();
            let mut reclaimed = 0u64;
            for window in segments.windows(2) {
                let (seg, next) = (window[0], window[1]);
                if next.base_epoch <= coverage {
                    let name = segment_name(seg.index);
                    let len = dir.file_len(&name).unwrap_or(0);
                    if dir.delete(&name).is_ok() {
                        deleted.push(seg.index);
                        reclaimed += len;
                    }
                }
            }
            if !retired.is_empty() || !deleted.is_empty() {
                dir.sync()?;
            }
            drop(dir);

            if !deleted.is_empty() {
                let mut wal = lock(&self.wal);
                if let Some(dm) = &mut wal.dir_mode {
                    dm.segments.retain(|s| !deleted.contains(&s.index));
                    let n = dm.segments.len();
                    wal.metrics
                        .wal_segments
                        .set(i64::try_from(n).unwrap_or(i64::MAX));
                }
            }
            Ok((deleted.len() as u64, reclaimed))
        })();

        let duration = start.elapsed();
        match result {
            Ok((wal_segments_deleted, reclaimed_bytes)) => {
                ckpt.metrics.checkpoints.inc();
                ckpt.metrics.duration_us.record_duration(duration);
                ckpt.metrics
                    .last_epoch
                    .set(i64::try_from(epoch).unwrap_or(i64::MAX));
                ckpt.metrics.reclaimed_bytes.add(reclaimed_bytes);
                bmb_obs::events().emit(
                    Severity::Info,
                    "checkpoint written",
                    &[
                        ("epoch", &epoch.to_string()),
                        ("bytes", &snapshot_bytes.to_string()),
                        ("reclaimed_bytes", &reclaimed_bytes.to_string()),
                    ],
                );
                Ok(CheckpointStats {
                    epoch,
                    duration,
                    snapshot_bytes,
                    wal_segments_deleted,
                    reclaimed_bytes,
                })
            }
            Err(e) => {
                ckpt.metrics.errors.inc();
                bmb_obs::events().emit(
                    Severity::Warn,
                    "checkpoint failed",
                    &[("epoch", &epoch.to_string()), ("error", &e.to_string())],
                );
                Err(CheckpointError::Io(e))
            }
        }
    }

    /// Whether this store writes checkpoints (opened via
    /// [`DurableStore::open_dir`]).
    pub fn is_checkpointed(&self) -> bool {
        self.ckpt.is_some()
    }

    /// The epoch of the newest durable checkpoint (0 = none yet).
    pub fn last_checkpoint_epoch(&self) -> u64 {
        match &self.ckpt {
            Some(ckpt) => lock(&ckpt.state).manifest.last().copied().unwrap_or(0),
            None => 0,
        }
    }

    /// The store's metrics registry (`bmb_basket_wal_*` families):
    /// acknowledged appends, sync counts and latency, repaired tails,
    /// the degraded gauge, and last-open recovery stats. Snapshot it or
    /// merge it into a server-wide exposition.
    pub fn observability(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The wrapped in-memory store; hand this to a `QueryEngine` so
    /// reads bypass the WAL entirely.
    pub fn store(&self) -> &Arc<IncrementalStore> {
        &self.store
    }

    /// Total baskets ingested (acknowledged) so far.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// The node's fencing generation: a monotonic token (floor 1) that
    /// cluster failover bumps on promotion so a partitioned-then-healed
    /// old primary can be told apart from the node that replaced it.
    pub fn generation(&self) -> u64 {
        // ordering: Relaxed — monotone counter read for stamping and
        // reporting; bumps publish via the protocol reply, not this cell.
        self.generation.load(Ordering::Relaxed)
    }

    /// Raises the fencing generation to `generation` (monotone — a
    /// lower or equal value is a no-op) and returns the resulting
    /// value. In directory mode the record is durably persisted
    /// (write-temp → fsync → atomic rename → dir fsync) *before* the
    /// in-memory value changes, so an acknowledged bump survives a
    /// crash; a caller must not acknowledge a promotion when this
    /// errors. Single-file stores keep the generation in memory only.
    ///
    /// # Errors
    ///
    /// `io::Error` when persisting the record fails (directory mode);
    /// the in-memory generation is unchanged.
    pub fn set_generation(&self, generation: u64) -> io::Result<u64> {
        match &self.ckpt {
            Some(ckpt) => {
                // Serializes racing bumps so a lower generation can
                // never be persisted over a higher one; the record
                // write happens under the guard by design.
                // lock:allow(io)
                let mut dir = lock(&ckpt.dir);
                // ordering: Relaxed — mutations serialized by the dir
                // lock held above.
                let current = self.generation.load(Ordering::Relaxed);
                if generation <= current {
                    return Ok(current);
                }
                write_atomic(dir.as_mut(), GEN_NAME, &encode_generation(generation))?;
                // ordering: Relaxed — durably persisted above; readers
                // synchronize on the protocol reply, not this cell.
                self.generation.store(generation, Ordering::Relaxed);
                Ok(generation)
            }
            // ordering: Relaxed — memory-only monotone max.
            None => Ok(self
                .generation
                .fetch_max(generation, Ordering::Relaxed)
                .max(generation)),
        }
    }

    /// A consistent, immutable view of everything acknowledged so far.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.snapshot()
    }

    /// Appends one basket durably. Returns the epoch after the append;
    /// once this returns `Ok`, the basket survives a crash.
    ///
    /// # Errors
    ///
    /// See [`DurableStore::append_batch`].
    pub fn append<I: IntoIterator<Item = ItemId>>(&self, items: I) -> Result<u64, DurableError> {
        self.append_batch(std::iter::once(items.into_iter().collect::<Vec<ItemId>>()))
    }

    /// Appends a basket of raw `u32` ids durably; convenient in tests.
    ///
    /// # Errors
    ///
    /// See [`DurableStore::append_batch`].
    pub fn append_ids<I: IntoIterator<Item = u32>>(&self, ids: I) -> Result<u64, DurableError> {
        self.append(ids.into_iter().map(ItemId))
    }

    /// Appends many baskets durably under a single WAL lock: the batch
    /// is framed, checksummed, written, and synced *before* it is
    /// applied to the in-memory store, so an `Ok` return means every
    /// basket of the batch survives a crash. On `Err`, nothing is
    /// visible in the store (the log may hold a torn, unacknowledged
    /// tail, which recovery discards).
    ///
    /// # Errors
    ///
    /// [`DurableError::ItemOutOfRange`] for an invalid basket and
    /// [`DurableError::BatchTooLarge`] for a batch that would overflow
    /// one WAL record (nothing logged in either case);
    /// [`DurableError::Wal`] when the WAL write or sync fails.
    pub fn append_batch<B, I>(&self, baskets: B) -> Result<u64, DurableError>
    where
        B: IntoIterator<Item = I>,
        I: IntoIterator<Item = ItemId>,
    {
        let baskets: Vec<Vec<ItemId>> = baskets
            .into_iter()
            .map(|b| b.into_iter().collect())
            .collect();
        for basket in &baskets {
            for &item in basket {
                if item.index() >= self.store.n_items() {
                    return Err(DurableError::ItemOutOfRange(ItemOutOfRange {
                        item,
                        n_items: self.store.n_items(),
                    }));
                }
            }
        }
        // Bound the record before anything hits the log: replay treats
        // an oversized length prefix as tail damage, so a record it
        // would discard must never be written, let alone acknowledged.
        // (Size is arithmetic over the batch shape — no allocation.)
        let encoded_bytes = 5u64 + baskets.iter().map(|b| 4 + 4 * b.len() as u64).sum::<u64>();
        if encoded_bytes > u64::from(MAX_RECORD_BYTES) {
            return Err(DurableError::BatchTooLarge { encoded_bytes });
        }
        let n_baskets = baskets.len() as u64;
        let payload = encode_batch(&baskets);
        // Sync-before-ack: the record write *and* its fsync happen
        // under the writer mutex so acknowledged appends are totally
        // ordered on the media. // lock:allow(io)
        let mut wal = lock(&self.wal);
        if wal.degraded {
            self.append_errors.inc();
            return Err(DurableError::Wal(io::Error::other(
                "wal is degraded after an earlier storage failure",
            )));
        }
        if let Err(e) = wal.append_record(&payload) {
            // The media may hold a torn tail; repair it (or degrade) so
            // a later successful append cannot land behind torn bytes —
            // recovery stops at the tear and would discard it.
            wal.repair_or_degrade();
            self.append_errors.inc();
            return Err(DurableError::Wal(e));
        }
        // Durable from here on: apply to the store and acknowledge.
        let old_epoch = self.store.epoch();
        let epoch = match self.store.append_batch(baskets) {
            Ok(epoch) => epoch,
            // Unreachable: items were validated above. Map it anyway so
            // the library stays panic-free.
            Err(e) => return Err(DurableError::ItemOutOfRange(e)),
        };
        // A fence whenever this batch crossed a seal boundary. The fence
        // pins the post-batch epoch: replay re-derives seal boundaries
        // from the same capacity, so matching epochs imply matching
        // segment structure. A fence-write failure cannot un-acknowledge
        // durable data (replay is correct without the fence); the torn
        // fence is repaired like any failed append — or the WAL degrades.
        let cap = self.segment_capacity as u64;
        if epoch / cap > old_epoch / cap && wal.append_record(&encode_fence(epoch)).is_err() {
            wal.repair_or_degrade();
        }
        self.appends.inc();
        self.appended_baskets.add(n_baskets);
        wal.maybe_rotate(epoch);
        Ok(epoch)
    }

    /// Whether the WAL can still acknowledge appends (`false` once a
    /// failed append left a torn tail that could not be repaired).
    pub fn is_healthy(&self) -> bool {
        !lock(&self.wal).degraded
    }

    /// The seal capacity the wrapped store was configured with (baskets
    /// per sealed segment) — the unit anti-entropy digests are computed
    /// over.
    pub fn segment_capacity(&self) -> usize {
        self.segment_capacity
    }

    /// Degrades the WAL loudly: every later append fails fast until the
    /// store is reopened. The scrub path calls this when an at-rest
    /// corruption was quarantined but neither a peer fetch nor a local
    /// rebuild could repair it — acknowledging more appends on top of a
    /// store with a known hole would compound the damage silently.
    pub(crate) fn mark_degraded(&self, reason: &str) {
        let mut wal = lock(&self.wal);
        if !wal.degraded {
            wal.degraded = true;
            wal.metrics.degraded.set(1);
            bmb_obs::events().emit(
                Severity::Error,
                "wal degraded: unrepaired at-rest corruption",
                &[("reason", reason)],
            );
        }
    }

    /// The sealed (non-active) on-media WAL segments, ascending by
    /// index, paired with the base epoch of the segment that follows
    /// each — i.e. the exact epoch range `(base, next_base]` the sealed
    /// segment must cover. Empty in single-file mode.
    pub(crate) fn sealed_segment_ranges(&self) -> Vec<(SegMeta, u64)> {
        let wal = lock(&self.wal);
        let Some(dm) = &wal.dir_mode else {
            return Vec::new();
        };
        dm.segments
            .windows(2)
            .map(|w| (w[0], w[1].base_epoch))
            .collect()
    }

    /// Ships the baskets a replica at `after_epoch` is missing, reading
    /// at most `max_baskets` from the WAL segment that covers the range
    /// (directory mode). Rotation makes sealed segments natural
    /// shipping units; one call reads at most one segment, so a lagging
    /// follower catches up segment by segment.
    ///
    /// Falls back to an in-memory [`Snapshot::baskets_range`] export
    /// when no retained segment covers `after_epoch` — checkpoint
    /// retention deletes covered segments, and single-file WALs have no
    /// rotation — so the call always makes progress while the store is
    /// ahead of the replica. The returned batch's `source` says which
    /// path served it.
    pub fn ship_after(&self, after_epoch: u64, max_baskets: usize) -> ShipBatch {
        let shard_epoch = self.store.epoch();
        if after_epoch >= shard_epoch || max_baskets == 0 {
            return ShipBatch {
                from_epoch: after_epoch,
                end_epoch: after_epoch,
                shard_epoch,
                baskets: Vec::new(),
                source: ShipSource::Wal,
            };
        }
        if let Some(batch) = self.ship_from_segments(after_epoch, shard_epoch, max_baskets) {
            return batch;
        }
        let snap = self.store.snapshot();
        let upto = snap
            .epoch()
            .min(after_epoch.saturating_add(max_baskets as u64));
        let baskets = snap.baskets_range(after_epoch, upto);
        ShipBatch {
            from_epoch: after_epoch,
            end_epoch: after_epoch + baskets.len() as u64,
            shard_epoch,
            baskets,
            source: ShipSource::Snapshot,
        }
    }

    /// The WAL path of [`DurableStore::ship_after`]: picks the segment
    /// whose base epoch covers `after_epoch`, reads it, and decodes the
    /// records past `after_epoch`. `None` means the caller should fall
    /// back to the snapshot export (no directory mode, the covering
    /// segment was reclaimed, or a racing rotation/retention made the
    /// read unusable).
    fn ship_from_segments(
        &self,
        after_epoch: u64,
        shard_epoch: u64,
        max_baskets: usize,
    ) -> Option<ShipBatch> {
        // Snapshot the segment list under the WAL lock (no I/O here);
        // the read itself runs under only the dir lock, preserving the
        // wal < dir order.
        let (dir, index, base_epoch) = {
            let wal = lock(&self.wal);
            let dm = wal.dir_mode.as_ref()?;
            let seg = dm
                .segments
                .iter()
                .rev()
                .find(|s| s.base_epoch <= after_epoch)?;
            (Arc::clone(&dm.dir), seg.index, seg.base_epoch)
        };
        let name = segment_name(index);
        // Read under the dir lock so rotation and retention cannot race
        // the open; the segment may be the active one, in which case a
        // torn in-flight tail simply stops the decode.
        let bytes = {
            let mut dir = lock(&dir); // lock:allow(io)
            let mut file = dir.open(&name).ok()?;
            file.read_all().ok()?
        };
        if parse_segment_header(&bytes)? != base_epoch {
            return None;
        }
        let mut baskets: Vec<Vec<ItemId>> = Vec::new();
        let mut cum = base_epoch;
        let mut pos = WAL2_HEADER_LEN;
        'records: while let Some(frame) = bytes.get(pos..pos + 8) {
            let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
            let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
            if len > MAX_RECORD_BYTES {
                break;
            }
            let start = pos + 8;
            let Some(payload) = bytes.get(start..start + len as usize) else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            match decode_payload(payload) {
                Some(Record::Batch(batch)) => {
                    for basket in batch {
                        // Cap at the epoch acknowledged when the call
                        // began: a record can hit the media moments
                        // before its store apply, and shipping must not
                        // outrun the epoch it reports.
                        if baskets.len() >= max_baskets || cum >= shard_epoch {
                            break 'records;
                        }
                        cum += 1;
                        if cum > after_epoch {
                            baskets.push(basket);
                        }
                    }
                }
                Some(Record::Fence(_)) => {}
                None => break,
            }
            pos = start + len as usize;
        }
        Some(ShipBatch {
            from_epoch: after_epoch,
            end_epoch: after_epoch + baskets.len() as u64,
            shard_epoch,
            baskets,
            source: ShipSource::Wal,
        })
    }
}

/// Where a [`ShipBatch`] was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShipSource {
    /// Decoded from a retained WAL segment (the normal path).
    Wal,
    /// Exported from the in-memory snapshot (segment reclaimed by
    /// checkpoint retention, or a single-file WAL).
    Snapshot,
}

impl std::fmt::Display for ShipSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShipSource::Wal => write!(f, "wal"),
            ShipSource::Snapshot => write!(f, "snapshot"),
        }
    }
}

/// One replication shipping unit returned by [`DurableStore::ship_after`].
#[derive(Debug)]
pub struct ShipBatch {
    /// Epoch before the first shipped basket (always the requested
    /// `after_epoch`).
    pub from_epoch: u64,
    /// Epoch after the last shipped basket; equals `from_epoch` when
    /// the replica is already caught up.
    pub end_epoch: u64,
    /// The shard's acknowledged epoch when the call began — the
    /// follower's replication lag is `shard_epoch - end_epoch`.
    pub shard_epoch: u64,
    /// The shipped baskets, in ingest (epoch) order.
    pub baskets: Vec<Vec<ItemId>>,
    /// Which path served the batch.
    pub source: ShipSource,
}

/// Encodes a basket batch payload.
pub(crate) fn encode_batch(baskets: &[Vec<ItemId>]) -> Vec<u8> {
    let items: usize = baskets.iter().map(Vec::len).sum();
    let mut payload = Vec::with_capacity(5 + 4 * baskets.len() + 4 * items);
    payload.push(KIND_BATCH);
    payload.extend_from_slice(&(baskets.len() as u32).to_le_bytes());
    for basket in baskets {
        payload.extend_from_slice(&(basket.len() as u32).to_le_bytes());
        for item in basket {
            payload.extend_from_slice(&item.0.to_le_bytes());
        }
    }
    payload
}

/// Encodes an epoch-fence payload.
pub(crate) fn encode_fence(epoch: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9);
    payload.push(KIND_FENCE);
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload
}

/// A little-endian cursor over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(chunk);
        Some(u64::from_le_bytes(raw))
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// One decoded record payload.
enum Record {
    Batch(Vec<Vec<ItemId>>),
    Fence(u64),
}

/// Decodes a checksum-verified payload; `None` means structural damage
/// (which, after a CRC pass, indicates a corrupt writer — treated the
/// same as tail damage: replay stops).
fn decode_payload(payload: &[u8]) -> Option<Record> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    match cur.u8()? {
        KIND_BATCH => {
            // Capacity hints are clamped by the payload size so a
            // corrupt count cannot drive a huge allocation.
            let cap_bound = payload.len() / 4;
            let n = cur.u32()?;
            let mut baskets = Vec::with_capacity((n as usize).min(cap_bound));
            for _ in 0..n {
                let m = cur.u32()?;
                let mut basket = Vec::with_capacity((m as usize).min(cap_bound));
                for _ in 0..m {
                    basket.push(ItemId(cur.u32()?));
                }
                baskets.push(basket);
            }
            cur.at_end().then_some(Record::Batch(baskets))
        }
        KIND_FENCE => {
            let epoch = cur.u64()?;
            cur.at_end().then_some(Record::Fence(epoch))
        }
        _ => None,
    }
}

/// Replays `bytes` (which start with a verified header) into `store`,
/// returning the offset just past the last intact record.
fn replay(
    bytes: &[u8],
    store: &IncrementalStore,
    report: &mut RecoveryReport,
) -> Result<u64, WalError> {
    let mut pos = WAL_MAGIC.len();
    // Stops at the first torn frame header; other damage breaks below.
    while let Some(frame) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if len > MAX_RECORD_BYTES {
            break; // absurd length: damaged frame
        }
        let start = pos + 8;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            break; // truncated payload
        };
        if crc32(payload) != crc {
            break; // bit flip
        }
        let Some(record) = decode_payload(payload) else {
            break; // structurally invalid despite CRC: stop here
        };
        match record {
            Record::Batch(baskets) => {
                let n = baskets.len() as u64;
                store
                    .append_batch(baskets)
                    .map_err(WalError::ItemSpaceMismatch)?;
                report.baskets_recovered += n;
            }
            Record::Fence(epoch) => {
                if store.epoch() != epoch {
                    break; // replay does not reach this fence: damage
                }
            }
        }
        report.records_replayed += 1;
        pos = start + len as usize;
    }
    Ok(pos as u64)
}

/// Replays one v2 segment's records into `store`, skipping records the
/// checkpoint already covers. `cum` is the epoch the WAL stream has
/// reached before this segment's first record; it advances over skipped
/// and applied records alike. Returns the offset just past the last
/// intact record and whether the segment's tail is damaged.
fn replay_segment(
    bytes: &[u8],
    store: &IncrementalStore,
    ckpt_epoch: u64,
    cum: &mut u64,
    report: &mut RecoveryReport,
) -> Result<(u64, bool), WalError> {
    let mut pos = WAL2_HEADER_LEN;
    let mut damaged = false;
    while let Some(frame) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if len > MAX_RECORD_BYTES {
            damaged = true;
            break;
        }
        let start = pos + 8;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            damaged = true;
            break;
        };
        if crc32(payload) != crc {
            damaged = true;
            break;
        }
        let Some(record) = decode_payload(payload) else {
            damaged = true;
            break;
        };
        match record {
            Record::Batch(baskets) => {
                let n = baskets.len() as u64;
                let cum_end = *cum + n;
                if cum_end <= ckpt_epoch {
                    // Entirely inside the checkpoint: skip.
                    *cum = cum_end;
                    report.records_skipped += 1;
                } else if *cum == store.epoch() {
                    store
                        .append_batch(baskets)
                        .map_err(WalError::ItemSpaceMismatch)?;
                    *cum = cum_end;
                    report.baskets_recovered += n;
                    report.records_replayed += 1;
                } else {
                    // A batch straddling the checkpoint epoch, or one
                    // whose start disagrees with the store: batches are
                    // atomic and epochs only move at batch boundaries,
                    // so this record cannot come from the writer that
                    // produced the checkpoint. Treat it as damage.
                    damaged = true;
                    break;
                }
            }
            Record::Fence(epoch) => {
                if epoch != *cum {
                    damaged = true;
                    break;
                }
                if *cum > ckpt_epoch {
                    report.records_replayed += 1;
                } else {
                    report.records_skipped += 1;
                }
            }
        }
        pos = start + len as usize;
    }
    // A clean partial frame tail (torn final write) is not "damage" in
    // the discard-later-segments sense only if nothing follows; callers
    // treat any mid-directory tear as damage, so report it uniformly.
    if pos < bytes.len() {
        damaged = true;
    }
    Ok((pos as u64, damaged))
}

/// One record summarized by [`inspect_wal_bytes`].
#[derive(Clone, Debug)]
pub struct InspectedRecord {
    /// Byte offset of the record's frame header.
    pub offset: u64,
    /// Payload length from the frame header.
    pub len: u32,
    /// Whether the stored CRC matches the payload.
    pub crc_ok: bool,
    /// Record kind: `"batch"`, `"fence"`, or `"unknown"`.
    pub kind: &'static str,
    /// Human-oriented detail (basket count, fence epoch, cumulative
    /// epoch after the record).
    pub detail: String,
}

/// The result of [`inspect_wal_bytes`]: an operator-facing dump of a
/// WAL file's records and tail state.
#[derive(Clone, Debug)]
pub struct WalInspection {
    /// `"v1"` (single-file WAL) or `"v2"` (directory-mode segment).
    pub format: &'static str,
    /// The segment's base epoch (v2 only).
    pub base_epoch: Option<u64>,
    /// Every frame that could be walked, intact or not.
    pub records: Vec<InspectedRecord>,
    /// Cumulative epoch after the last intact record.
    pub end_epoch: u64,
    /// Offset just past the last intact record.
    pub valid_bytes: u64,
    /// Total file size.
    pub total_bytes: u64,
    /// `"clean"`, or a one-line torn-tail / damage diagnosis.
    pub diagnosis: String,
}

/// Inspects raw WAL bytes (either format) without replaying them into
/// a store: record kinds, epochs, CRC status, and a torn-tail
/// diagnosis. Walking stops at the first damaged frame — bytes past it
/// cannot be framed reliably.
///
/// # Errors
///
/// [`WalError::NotAWal`] when the bytes carry neither WAL magic.
pub fn inspect_wal_bytes(bytes: &[u8]) -> Result<WalInspection, WalError> {
    let (format, base_epoch, mut pos) = if bytes.starts_with(WAL_MAGIC) {
        ("v1", None, WAL_MAGIC.len())
    } else if let Some(base) = parse_segment_header(bytes) {
        ("v2", Some(base), WAL2_HEADER_LEN)
    } else if bytes.starts_with(WAL2_MAGIC) {
        // v2 magic but a torn base-epoch field.
        return Ok(WalInspection {
            format: "v2",
            base_epoch: None,
            records: Vec::new(),
            end_epoch: 0,
            valid_bytes: bytes.len() as u64,
            total_bytes: bytes.len() as u64,
            diagnosis: format!(
                "torn segment header: {} of {} header bytes (crashed rotation)",
                bytes.len(),
                WAL2_HEADER_LEN
            ),
        });
    } else {
        return Err(WalError::NotAWal);
    };

    let mut records = Vec::new();
    let mut epoch = base_epoch.unwrap_or(0);
    let mut diagnosis = String::from("clean");
    while pos < bytes.len() {
        let Some(frame) = bytes.get(pos..pos + 8) else {
            diagnosis = format!(
                "torn frame header at offset {pos}: {} trailing bytes (interrupted append)",
                bytes.len() - pos
            );
            break;
        };
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if len > MAX_RECORD_BYTES {
            diagnosis =
                format!("absurd record length {len} at offset {pos} (damaged frame header)");
            break;
        }
        let start = pos + 8;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            diagnosis = format!(
                "truncated payload at offset {pos}: header promises {len} bytes, {} present \
                 (interrupted append)",
                bytes.len() - start
            );
            break;
        };
        let crc_ok = crc32(payload) == crc;
        if !crc_ok {
            records.push(InspectedRecord {
                offset: pos as u64,
                len,
                crc_ok: false,
                kind: "unknown",
                detail: format!(
                    "stored crc {crc:#010x} != computed {:#010x}",
                    crc32(payload)
                ),
            });
            diagnosis = format!("crc mismatch at offset {pos} (bit flip or torn write)");
            break;
        }
        match decode_payload(payload) {
            Some(Record::Batch(baskets)) => {
                let n = baskets.len() as u64;
                epoch += n;
                records.push(InspectedRecord {
                    offset: pos as u64,
                    len,
                    crc_ok: true,
                    kind: "batch",
                    detail: format!("{n} baskets, epoch -> {epoch}"),
                });
            }
            Some(Record::Fence(fence)) => {
                let mark = if fence == epoch { "ok" } else { "MISMATCH" };
                records.push(InspectedRecord {
                    offset: pos as u64,
                    len,
                    crc_ok: true,
                    kind: "fence",
                    detail: format!("epoch {fence} ({mark}, stream at {epoch})"),
                });
                if fence != epoch {
                    diagnosis = format!(
                        "fence at offset {pos} pins epoch {fence} but the stream is at {epoch} \
                         (records lost or foreign segment)"
                    );
                    break;
                }
            }
            None => {
                records.push(InspectedRecord {
                    offset: pos as u64,
                    len,
                    crc_ok: true,
                    kind: "unknown",
                    detail: format!("kind byte {:#04x}", payload.first().copied().unwrap_or(0)),
                });
                diagnosis = format!(
                    "structurally invalid record at offset {pos} despite a passing crc \
                     (corrupt writer)"
                );
                break;
            }
        }
        pos = start + len as usize;
    }
    Ok(WalInspection {
        format,
        base_epoch,
        end_epoch: epoch,
        records,
        valid_bytes: pos.min(bytes.len()) as u64,
        total_bytes: bytes.len() as u64,
        diagnosis,
    })
}

/// Registers the last-open recovery gauges (and emits the recovery
/// event) on a fresh store registry.
fn register_recovery_gauges(obs: &Registry, report: &RecoveryReport) {
    obs.gauge(
        "bmb_basket_wal_recovered_records",
        "Intact WAL records replayed at the last open.",
    )
    .set(i64::try_from(report.records_replayed).unwrap_or(i64::MAX));
    obs.gauge(
        "bmb_basket_wal_recovered_baskets",
        "Baskets reconstructed from the WAL at the last open.",
    )
    .set(i64::try_from(report.baskets_recovered).unwrap_or(i64::MAX));
    obs.gauge(
        "bmb_basket_wal_recovery_truncated_bytes",
        "Damaged tail bytes truncated away at the last open.",
    )
    .set(i64::try_from(report.truncated_bytes).unwrap_or(i64::MAX));
    obs.gauge(
        "bmb_basket_wal_recovery_skipped_records",
        "WAL records skipped at the last open (covered by a checkpoint).",
    )
    .set(i64::try_from(report.records_skipped).unwrap_or(i64::MAX));
    obs.gauge(
        "bmb_basket_wal_recovery_skipped_segments",
        "Whole WAL segments skipped at the last open (covered by a checkpoint).",
    )
    .set(i64::try_from(report.segments_skipped).unwrap_or(i64::MAX));
    obs.gauge(
        "bmb_basket_ckpt_recovery_epoch",
        "Epoch of the checkpoint loaded at the last open (0 = full replay).",
    )
    .set(i64::try_from(report.checkpoint_epoch).unwrap_or(i64::MAX));
    obs.gauge(
        "bmb_basket_ckpt_recovery_fallbacks",
        "Checkpoint candidates rejected at the last open before one loaded.",
    )
    .set(i64::try_from(report.checkpoint_fallbacks).unwrap_or(i64::MAX));
    if report.records_replayed > 0 || report.truncated_bytes > 0 || report.checkpoint_epoch > 0 {
        bmb_obs::events().emit(
            Severity::Info,
            "wal recovery replayed existing log",
            &[
                ("records", &report.records_replayed.to_string()),
                ("baskets", &report.baskets_recovered.to_string()),
                ("truncated_bytes", &report.truncated_bytes.to_string()),
                ("skipped_records", &report.records_skipped.to_string()),
                ("checkpoint_epoch", &report.checkpoint_epoch.to_string()),
                (
                    "checkpoint_fallbacks",
                    &report.checkpoint_fallbacks.to_string(),
                ),
            ],
        );
    }
}

/// Acquires a mutex, recovering from poisoning: WAL state is only
/// mutated through panic-free code, so a poisoned lock still holds
/// consistent data.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FaultPlan, FaultStorage, MemStorage};
    use crate::Itemset;

    fn config() -> StoreConfig {
        StoreConfig {
            segment_capacity: 4,
        }
    }

    fn open_mem(bytes: Option<crate::storage::SharedBytes>) -> (DurableStore, RecoveryReport) {
        let storage = match bytes {
            Some(b) => MemStorage::with_bytes(b),
            None => MemStorage::new(),
        };
        match DurableStore::open(Box::new(storage), 8, config()) {
            Ok(pair) => pair,
            Err(e) => panic!("open failed: {e}"),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check values for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn appends_survive_reopen() {
        let (_, report) = open_mem(None);
        assert_eq!(report, RecoveryReport::default());

        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        for i in 0..10u32 {
            store.append_ids([i % 8, (i + 1) % 8]).unwrap();
        }
        store
            .append_batch([vec![ItemId(0)], vec![ItemId(1), ItemId(2)]])
            .unwrap();
        assert_eq!(store.epoch(), 12);
        drop(store); // crash

        let (recovered, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 12);
        assert_eq!(report.baskets_recovered, 12);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(recovered.epoch(), 12);
        let snap = recovered.snapshot();
        assert_eq!(snap.support(Itemset::from_ids([0]).items()), 4);
        // Segment structure is reproduced exactly (capacity 4, 12 baskets).
        assert_eq!(snap.sealed_segments().len(), 3);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_remains_usable() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        store.append_ids([2, 3]).unwrap();
        drop(store);

        // Tear the last record: chop 3 bytes off the tail.
        let torn_len = {
            let mut buf = bytes.lock().unwrap();
            let n = buf.len();
            buf.truncate(n - 3);
            buf.len()
        };
        let (recovered, report) = open_mem(Some(bytes.clone()));
        assert_eq!(report.epoch, 1, "only the first (intact) record replays");
        assert!(report.truncated_bytes > 0);
        assert!(report.truncated_bytes < torn_len as u64);
        // The repaired log accepts new appends and they survive.
        recovered.append_ids([4]).unwrap();
        drop(recovered);
        let (again, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 2);
        assert_eq!(again.snapshot().support(Itemset::from_ids([4]).items()), 1);
    }

    #[test]
    fn bit_flip_stops_replay_at_last_valid_record() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0]).unwrap();
        let clean_len = bytes.lock().unwrap().len();
        store.append_ids([1]).unwrap();
        drop(store);
        {
            // Flip a payload bit inside the second record.
            let mut buf = bytes.lock().unwrap();
            let idx = clean_len + 9; // past the second record's frame
            buf[idx] ^= 0x01;
        }
        let (_, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 1);
        assert!(report.truncated_bytes > 0);
    }

    #[test]
    fn foreign_files_are_rejected() {
        let mut mem = MemStorage::new();
        mem.append(b"definitely not a wal").unwrap();
        let err = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(_) => panic!("foreign file must not open"),
            Err(e) => e,
        };
        assert!(matches!(err, WalError::NotAWal));
    }

    #[test]
    fn wrong_item_space_is_a_hard_error() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([7]).unwrap();
        drop(store);
        let err = match DurableStore::open(Box::new(MemStorage::with_bytes(bytes)), 4, config()) {
            Ok(_) => panic!("item space mismatch must not open"),
            Err(e) => e,
        };
        assert!(matches!(err, WalError::ItemSpaceMismatch(_)));
    }

    #[test]
    fn failed_append_is_not_applied_and_recovery_agrees() {
        let faulty = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(header_and_one_record() + 5), // tears the 2nd record
            ..FaultPlan::default()
        });
        let bytes = faulty.bytes();
        let (store, _) = match DurableStore::open(Box::new(faulty), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        let err = store.append_ids([2, 3]).unwrap_err();
        assert!(matches!(err, DurableError::Wal(_)));
        // The failed append is not visible in memory...
        assert_eq!(store.epoch(), 1);
        drop(store);
        // ...and recovery reconstructs exactly the acknowledged state.
        let (recovered, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 1);
        assert!(report.truncated_bytes > 0);
        assert_eq!(
            recovered.snapshot().support(Itemset::from_ids([2]).items()),
            0
        );
    }

    /// Bytes occupied by the magic header plus one `[a, b]` basket
    /// record, measured so fault budgets can tear the second record.
    fn header_and_one_record() -> u64 {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        drop(store);
        let len = bytes.lock().unwrap().len() as u64;
        len
    }

    #[test]
    fn transient_fault_repairs_torn_tail_so_later_acks_survive() {
        // The reviewer scenario for the lost-ack bug: append A lands,
        // append B tears (transient ENOSPC/EIO), append C succeeds. If
        // the torn tail of B were left in place, recovery would stop at
        // it and discard the *acknowledged* C. The writer must repair
        // the tail before accepting C.
        let faulty = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(header_and_one_record() + 5),
            transient: true,
            ..FaultPlan::default()
        });
        let bytes = faulty.bytes();
        let (store, _) = match DurableStore::open(Box::new(faulty), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        let err = store.append_ids([2, 3]).unwrap_err();
        assert!(matches!(err, DurableError::Wal(_)));
        assert!(store.is_healthy(), "a repaired tail is not a degraded wal");
        store.append_ids([4, 5]).unwrap();
        assert_eq!(store.epoch(), 2);
        drop(store); // crash

        let (recovered, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 2, "the acked append after the fault is kept");
        assert_eq!(report.truncated_bytes, 0, "the writer already repaired");
        let snap = recovered.snapshot();
        assert_eq!(snap.support(Itemset::from_ids([0]).items()), 1);
        assert_eq!(snap.support(Itemset::from_ids([2]).items()), 0);
        assert_eq!(snap.support(Itemset::from_ids([4]).items()), 1);
    }

    #[test]
    fn unrepairable_torn_tail_degrades_the_wal() {
        // Permanent fault: the torn tail cannot be truncated away, so
        // the wal must refuse every later append instead of letting one
        // land behind the tear (where recovery would discard it).
        let faulty = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(header_and_one_record() + 5),
            ..FaultPlan::default()
        });
        let bytes = faulty.bytes();
        let (store, _) = match DurableStore::open(Box::new(faulty), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        assert!(store.append_ids([2, 3]).is_err());
        assert!(!store.is_healthy(), "unrepaired tear must degrade the wal");
        let err = store.append_ids([4, 5]).unwrap_err();
        assert!(
            err.to_string().contains("degraded"),
            "later appends fail fast, got: {err}"
        );
        assert_eq!(store.epoch(), 1, "rejected appends are not applied");
        drop(store);

        let (_, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 1, "exactly the acked prefix recovers");
        assert!(report.truncated_bytes > 0);
    }

    #[test]
    fn oversized_batch_is_rejected_before_logging() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        // Smallest basket whose record payload exceeds MAX_RECORD_BYTES.
        let n = (MAX_RECORD_BYTES as usize - 9) / 4 + 1;
        let err = store.append(vec![ItemId(0); n]).unwrap_err();
        match err {
            DurableError::BatchTooLarge { encoded_bytes } => {
                assert!(encoded_bytes > u64::from(MAX_RECORD_BYTES));
            }
            other => panic!("expected BatchTooLarge, got {other}"),
        }
        // Nothing was logged or applied, and the wal is still healthy.
        assert_eq!(store.epoch(), 0);
        assert!(store.is_healthy());
        assert_eq!(bytes.lock().unwrap().len(), WAL_MAGIC.len());
        store.append_ids([1]).unwrap();
        assert_eq!(store.epoch(), 1);
    }

    #[test]
    fn wal_metrics_track_appends_syncs_and_recovery() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        store
            .append_batch([vec![ItemId(2)], vec![ItemId(3)]])
            .unwrap();
        let snap = store.observability().snapshot();
        assert_eq!(snap.counter_value("bmb_basket_wal_appends_total", &[]), 2);
        assert_eq!(
            snap.counter_value("bmb_basket_wal_appended_baskets_total", &[]),
            3
        );
        assert!(snap.counter_value("bmb_basket_wal_syncs_total", &[]) >= 2);
        let sync_us = snap.histogram_value("bmb_basket_wal_sync_us", &[]);
        assert_eq!(
            sync_us.count(),
            snap.counter_value("bmb_basket_wal_syncs_total", &[])
        );
        assert_eq!(snap.gauge_value("bmb_basket_wal_degraded", &[]), 0);
        assert_eq!(
            snap.counter_value("bmb_basket_wal_append_errors_total", &[]),
            0
        );
        drop(store);

        // Reopen: recovery gauges reflect the replayed log.
        let (recovered, report) = open_mem(Some(bytes));
        let snap = recovered.observability().snapshot();
        assert_eq!(
            snap.gauge_value("bmb_basket_wal_recovered_records", &[]),
            report.records_replayed as i64
        );
        assert_eq!(snap.gauge_value("bmb_basket_wal_recovered_baskets", &[]), 3);
        assert_eq!(
            snap.gauge_value("bmb_basket_wal_recovery_truncated_bytes", &[]),
            0
        );
    }

    #[test]
    fn wal_metrics_track_repair_and_degradation() {
        // Transient fault: repaired tail increments the repair counter.
        let faulty = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(header_and_one_record() + 5),
            transient: true,
            ..FaultPlan::default()
        });
        let (store, _) = match DurableStore::open(Box::new(faulty), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        assert!(store.append_ids([2, 3]).is_err());
        let snap = store.observability().snapshot();
        assert_eq!(
            snap.counter_value("bmb_basket_wal_repaired_tails_total", &[]),
            1
        );
        assert_eq!(
            snap.counter_value("bmb_basket_wal_append_errors_total", &[]),
            1
        );
        assert_eq!(snap.gauge_value("bmb_basket_wal_degraded", &[]), 0);

        // Permanent fault: the degraded gauge latches to 1 and later
        // fast-failed appends count as errors.
        let faulty = FaultStorage::new(FaultPlan {
            fail_after_bytes: Some(header_and_one_record() + 5),
            ..FaultPlan::default()
        });
        let (store, _) = match DurableStore::open(Box::new(faulty), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        assert!(store.append_ids([2, 3]).is_err());
        assert!(store.append_ids([4, 5]).is_err());
        let snap = store.observability().snapshot();
        assert_eq!(snap.gauge_value("bmb_basket_wal_degraded", &[]), 1);
        assert_eq!(
            snap.counter_value("bmb_basket_wal_append_errors_total", &[]),
            2
        );
        assert_eq!(snap.counter_value("bmb_basket_wal_appends_total", &[]), 1);
    }

    #[test]
    fn fences_are_written_at_seal_boundaries() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        // One batch crossing two seal boundaries (capacity 4, 9 baskets).
        store
            .append_batch((0..9).map(|i| vec![ItemId(i % 8)]))
            .unwrap();
        drop(store);
        let buf = bytes.lock().unwrap().clone();
        // Count fence records by walking frames.
        let mut pos = WAL_MAGIC.len();
        let mut fences = Vec::new();
        while pos + 8 <= buf.len() {
            let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]);
            let payload = &buf[pos + 8..pos + 8 + len as usize];
            if payload[0] == KIND_FENCE {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&payload[1..9]);
                fences.push(u64::from_le_bytes(raw));
            }
            pos += 8 + len as usize;
        }
        assert_eq!(fences, vec![9], "one fence pinning the post-batch epoch");
        let (_, report) = open_mem(Some(bytes));
        assert_eq!(report.epoch, 9);
        assert_eq!(report.records_replayed, 2, "one batch + one fence");
    }

    // ------------------------------------------------------------------
    // Directory mode: rotation, checkpoints, retention, recovery ladder.
    // ------------------------------------------------------------------

    use crate::storage::{DirFaultPlan, FaultDir, MemDir, SharedDirState};

    fn durability(segment_bytes: u64) -> DurabilityConfig {
        DurabilityConfig {
            segment_bytes,
            retain_checkpoints: 2,
        }
    }

    fn open_dir_mem(state: &SharedDirState, d: DurabilityConfig) -> (DurableStore, RecoveryReport) {
        let dir = MemDir::with_state(Arc::clone(state));
        match DurableStore::open_dir(Box::new(dir), 8, config(), d) {
            Ok(pair) => pair,
            Err(e) => panic!("open_dir failed: {e}"),
        }
    }

    fn dir_names(state: &SharedDirState) -> Vec<String> {
        let mut d = MemDir::with_state(Arc::clone(state));
        let mut names = d.list().unwrap();
        names.sort();
        names
    }

    #[test]
    fn dir_mode_fresh_open_creates_first_segment() {
        let dir = MemDir::new();
        let state = dir.state();
        let (store, report) =
            match DurableStore::open_dir(Box::new(dir), 8, config(), durability(1 << 20)) {
                Ok(p) => p,
                Err(e) => panic!("{e}"),
            };
        assert_eq!(
            report,
            RecoveryReport {
                wal_segments: 1,
                ..RecoveryReport::default()
            }
        );
        assert!(store.is_checkpointed());
        assert_eq!(dir_names(&state), vec!["wal.000000".to_string()]);
    }

    #[test]
    fn dir_mode_appends_survive_reopen() {
        let state = MemDir::new().state();
        let (store, _) = open_dir_mem(&state, durability(1 << 20));
        for i in 0..10u32 {
            store.append_ids([i % 8, (i + 1) % 8]).unwrap();
        }
        drop(store);
        let (recovered, report) = open_dir_mem(&state, durability(1 << 20));
        assert_eq!(report.epoch, 10);
        assert_eq!(report.baskets_recovered, 10);
        assert_eq!(report.checkpoint_epoch, 0);
        assert_eq!(recovered.epoch(), 10);
    }

    #[test]
    fn generation_persists_and_stays_monotone() {
        let state = MemDir::new().state();
        let (store, _) = open_dir_mem(&state, durability(1 << 20));
        assert_eq!(store.generation(), 1);
        assert_eq!(store.set_generation(5).unwrap(), 5);
        // A lower or equal target is a no-op, not a regression.
        assert_eq!(store.set_generation(3).unwrap(), 5);
        assert_eq!(store.generation(), 5);
        drop(store);
        let (recovered, _) = open_dir_mem(&state, durability(1 << 20));
        assert_eq!(recovered.generation(), 5);
        assert!(dir_names(&state).contains(&GEN_NAME.to_string()));
    }

    #[test]
    fn damaged_generation_record_resets_to_floor() {
        let state = MemDir::new().state();
        let (store, _) = open_dir_mem(&state, durability(1 << 20));
        store.set_generation(7).unwrap();
        drop(store);
        {
            let mut d = MemDir::with_state(Arc::clone(&state));
            d.delete(GEN_NAME).unwrap();
            let mut f = d.create(GEN_NAME).unwrap();
            f.append(b"garbage").unwrap();
        }
        let (recovered, _) = open_dir_mem(&state, durability(1 << 20));
        assert_eq!(recovered.generation(), 1);
    }

    #[test]
    fn single_file_generation_is_memory_only() {
        let media = MemStorage::new();
        let (store, _) = DurableStore::open(Box::new(media), 8, StoreConfig::default()).unwrap();
        assert_eq!(store.generation(), 1);
        assert_eq!(store.set_generation(4).unwrap(), 4);
        assert_eq!(store.generation(), 4);
    }

    #[test]
    fn small_segment_budget_rotates_and_reopen_replays_all_segments() {
        let state = MemDir::new().state();
        // Tiny budget: nearly every append crosses the rotation bound.
        let (store, _) = open_dir_mem(&state, durability(64));
        for i in 0..20u32 {
            store.append_ids([i % 8]).unwrap();
        }
        drop(store);
        let names = dir_names(&state);
        assert!(names.len() >= 3, "expected several segments, got {names:?}");
        let (recovered, report) = open_dir_mem(&state, durability(64));
        assert_eq!(report.epoch, 20);
        assert_eq!(report.baskets_recovered, 20);
        assert!(report.wal_segments >= 3);
        let snap = recovered.snapshot();
        assert_eq!(snap.n_baskets(), 20);
    }

    #[test]
    fn ship_after_walks_wal_segments_until_caught_up() {
        let state = MemDir::new().state();
        // Tiny budget: many segments, so shipping takes several pulls.
        let (store, _) = open_dir_mem(&state, durability(64));
        for i in 0..20u32 {
            store.append_ids([i % 8]).unwrap();
        }
        let mut replica: Vec<Vec<ItemId>> = Vec::new();
        let mut epoch = 0u64;
        let mut pulls = 0;
        while epoch < store.epoch() {
            let batch = store.ship_after(epoch, 1000);
            assert_eq!(batch.from_epoch, epoch);
            assert_eq!(batch.shard_epoch, 20);
            assert_eq!(batch.source, ShipSource::Wal);
            assert_eq!(
                batch.end_epoch,
                batch.from_epoch + batch.baskets.len() as u64
            );
            assert!(!batch.baskets.is_empty(), "must make progress");
            replica.extend(batch.baskets);
            epoch = batch.end_epoch;
            pulls += 1;
        }
        assert!(pulls > 1, "tiny segments must need several pulls");
        assert_eq!(replica.len(), 20);
        for (i, basket) in replica.iter().enumerate() {
            assert_eq!(basket.as_slice(), &[ItemId(i as u32 % 8)]);
        }
        // Caught up: an empty batch, not an error.
        let done = store.ship_after(epoch, 1000);
        assert_eq!(done.end_epoch, done.from_epoch);
        assert!(done.baskets.is_empty());
    }

    #[test]
    fn ship_after_respects_max_baskets() {
        let state = MemDir::new().state();
        let (store, _) = open_dir_mem(&state, durability(1 << 20));
        for i in 0..10u32 {
            store.append_ids([i % 8]).unwrap();
        }
        let batch = store.ship_after(2, 3);
        assert_eq!(batch.from_epoch, 2);
        assert_eq!(batch.end_epoch, 5);
        assert_eq!(batch.baskets.len(), 3);
        assert_eq!(batch.baskets[0].as_slice(), &[ItemId(2)]);
        assert_eq!(batch.shard_epoch, 10);
    }

    #[test]
    fn ship_after_falls_back_to_snapshot_when_segments_reclaimed() {
        let state = MemDir::new().state();
        let (store, _) = open_dir_mem(&state, durability(64));
        for i in 0..12u32 {
            store.append_ids([i % 8]).unwrap();
        }
        store.checkpoint().unwrap();
        for i in 12..20u32 {
            store.append_ids([i % 8]).unwrap();
        }
        store.checkpoint().unwrap();
        assert!(
            !dir_names(&state).contains(&"wal.000000".to_string()),
            "retention must have reclaimed the first segment: {:?}",
            dir_names(&state)
        );
        // The covering segment is gone; the snapshot serves the range.
        let batch = store.ship_after(0, 1000);
        assert_eq!(batch.source, ShipSource::Snapshot);
        assert_eq!(batch.from_epoch, 0);
        assert_eq!(batch.end_epoch, 20);
        for (i, basket) in batch.baskets.iter().enumerate() {
            assert_eq!(basket.as_slice(), &[ItemId(i as u32 % 8)]);
        }
    }

    #[test]
    fn ship_after_single_file_mode_uses_snapshot() {
        let (store, _) = open_mem(None);
        store.append_ids([0, 1]).unwrap();
        store.append_ids([1, 2]).unwrap();
        let batch = store.ship_after(1, 10);
        assert_eq!(batch.source, ShipSource::Snapshot);
        assert_eq!(batch.end_epoch, 2);
        assert_eq!(batch.baskets.len(), 1);
        assert_eq!(batch.baskets[0].as_slice(), &[ItemId(1), ItemId(2)]);
    }

    #[test]
    fn checkpoint_bounds_replay_and_retention_reclaims_segments() {
        let state = MemDir::new().state();
        let (store, _) = open_dir_mem(&state, durability(64));
        for i in 0..12u32 {
            store.append_ids([i % 8]).unwrap();
        }
        let stats = store.checkpoint().unwrap();
        assert_eq!(stats.epoch, 12);
        let stats2 = store.checkpoint().unwrap();
        assert_eq!(stats2.epoch, 12, "idempotent re-checkpoint");
        // One retained checkpoint (both writes hit epoch 12) means no
        // segment is reclaimed — the sole snapshot must keep its full-
        // replay fallback. Recovery still skips everything under it.
        for i in 0..4u32 {
            store.append_ids([i]).unwrap();
        }
        drop(store);
        let names = dir_names(&state);
        assert!(
            names.iter().any(|n| n.starts_with("ckpt.")),
            "checkpoint file exists: {names:?}"
        );
        assert!(names.iter().any(|n| n == MANIFEST_NAME));

        let (recovered, report) = open_dir_mem(&state, durability(64));
        assert_eq!(report.epoch, 16);
        assert_eq!(report.checkpoint_epoch, 12);
        assert_eq!(
            report.baskets_recovered, 4,
            "only post-checkpoint records replay"
        );
        assert_eq!(report.checkpoint_fallbacks, 0);
        assert!(
            report.records_skipped > 0 || report.segments_skipped > 0,
            "some pre-checkpoint records were skipped: {report:?}"
        );
        let snap = recovered.snapshot();
        assert_eq!(snap.n_baskets(), 16);
        // Answers are bit-identical to a never-crashed store.
        let fresh = IncrementalStore::new(8, config());
        for i in 0..12u32 {
            fresh.append_batch([vec![ItemId(i % 8)]]).unwrap();
        }
        for i in 0..4u32 {
            fresh.append_batch([vec![ItemId(i)]]).unwrap();
        }
        let fsnap = fresh.snapshot();
        for i in 0..8u32 {
            assert_eq!(
                snap.support(Itemset::from_ids([i]).items()),
                fsnap.support(Itemset::from_ids([i]).items())
            );
        }
        assert_eq!(snap.sealed_segments().len(), fsnap.sealed_segments().len());
    }

    #[test]
    fn retention_deletes_only_covered_segments() {
        let state = MemDir::new().state();
        let (store, _) = open_dir_mem(&state, durability(64));
        for i in 0..12u32 {
            store.append_ids([i % 8]).unwrap();
        }
        store.checkpoint().unwrap();
        for i in 0..12u32 {
            store.append_ids([i % 8]).unwrap();
        }
        let stats = store.checkpoint().unwrap();
        assert_eq!(stats.epoch, 24);
        // Coverage = min(retained) = 12 (retain_checkpoints = 2): only
        // segments wholly below epoch 12 may be gone. Everything needed
        // to replay from the *older* retained checkpoint must survive.
        drop(store);
        let (recovered, report) = open_dir_mem(&state, durability(64));
        assert_eq!(report.epoch, 24);
        assert_eq!(report.checkpoint_epoch, 24);
        assert_eq!(recovered.epoch(), 24);

        // Corrupt the newest checkpoint: recovery must fall back to the
        // older retained one and still reach epoch 24 via the WAL.
        drop(recovered);
        {
            let mut d = MemDir::with_state(Arc::clone(&state));
            let names = d.list().unwrap();
            let newest = names
                .iter()
                .filter(|n| n.starts_with("ckpt."))
                .max()
                .cloned()
                .unwrap();
            let mut f = d.open(&newest).unwrap();
            let len = f.len().unwrap();
            f.truncate(len / 2).unwrap();
        }
        let (recovered, report) = open_dir_mem(&state, durability(64));
        assert_eq!(report.checkpoint_fallbacks, 1, "newest rejected");
        assert_eq!(report.checkpoint_epoch, 12, "older checkpoint loaded");
        assert_eq!(report.epoch, 24, "WAL replay finishes the job");
        assert_eq!(recovered.epoch(), 24);
    }

    #[test]
    fn corrupted_all_checkpoints_falls_back_to_full_replay() {
        let state = MemDir::new().state();
        let (store, _) = open_dir_mem(&state, durability(1 << 20));
        for i in 0..8u32 {
            store.append_ids([i]).unwrap();
        }
        store.checkpoint().unwrap();
        drop(store);
        {
            let mut d = MemDir::with_state(Arc::clone(&state));
            for name in d.list().unwrap() {
                if name.starts_with("ckpt.") {
                    let mut f = d.open(&name).unwrap();
                    f.truncate(3).unwrap();
                }
            }
        }
        let (recovered, report) = open_dir_mem(&state, durability(1 << 20));
        assert_eq!(report.checkpoint_epoch, 0, "full replay");
        assert!(report.checkpoint_fallbacks >= 1);
        assert_eq!(report.epoch, 8);
        assert_eq!(recovered.epoch(), 8);
    }

    #[test]
    fn torn_trailing_segment_is_dropped_as_crashed_rotation() {
        let state = MemDir::new().state();
        let (store, _) = open_dir_mem(&state, durability(1 << 20));
        store.append_ids([0, 1]).unwrap();
        drop(store);
        {
            // Simulate a rotation that crashed after creating the next
            // segment but before its header became durable.
            let mut d = MemDir::with_state(Arc::clone(&state));
            d.create("wal.000001").unwrap().append(b"BMB").unwrap();
        }
        let (recovered, report) = open_dir_mem(&state, durability(1 << 20));
        assert_eq!(report.epoch, 1);
        assert_eq!(recovered.epoch(), 1);
        assert!(
            !dir_names(&state).contains(&"wal.000001".to_string()),
            "torn trailing segment deleted"
        );
        // The new active segment does not collide with the dead name.
        recovered.append_ids([2]).unwrap();
    }

    #[test]
    fn failed_checkpoint_rename_leaves_directory_usable() {
        let plan = DirFaultPlan {
            fail_rename_at: Some(0),
            ..DirFaultPlan::default()
        };
        let dir = FaultDir::new(plan);
        let state = dir.dir_state();
        let (store, _) =
            match DurableStore::open_dir(Box::new(dir), 8, config(), durability(1 << 20)) {
                Ok(p) => p,
                Err(e) => panic!("{e}"),
            };
        for i in 0..4u32 {
            store.append_ids([i]).unwrap();
        }
        let err = store.checkpoint();
        assert!(matches!(err, Err(CheckpointError::Io(_))), "{err:?}");
        // The next attempt succeeds (fault fired once) and the failed
        // one left no manifest entry behind.
        let stats = store.checkpoint().unwrap();
        assert_eq!(stats.epoch, 4);
        drop(store);
        let (_, report) = open_dir_mem(&state, durability(1 << 20));
        assert_eq!(report.checkpoint_epoch, 4);
        assert_eq!(report.checkpoint_fallbacks, 0);
    }

    #[test]
    fn dir_crash_before_dir_sync_reverts_checkpoint() {
        // A checkpoint whose entry mutations never hit a dir sync is
        // invisible after a crash; recovery replays the WAL instead.
        let dir = MemDir::new();
        let state = dir.state();
        let (store, _) =
            match DurableStore::open_dir(Box::new(dir), 8, config(), durability(1 << 20)) {
                Ok(p) => p,
                Err(e) => panic!("{e}"),
            };
        for i in 0..4u32 {
            store.append_ids([i]).unwrap();
        }
        store.checkpoint().unwrap();
        drop(store);
        // write_atomic ends with a dir sync, so the checkpoint IS
        // durable here; crash and verify it survives.
        let crashed = MemDir::crashed(&state);
        let cstate = crashed.state();
        let (recovered, report) = open_dir_mem(&cstate, durability(1 << 20));
        assert_eq!(report.checkpoint_epoch, 4);
        assert_eq!(recovered.epoch(), 4);
    }

    #[test]
    fn wal_truncate_fault_degrades_instead_of_lying() {
        // A failed append needs a truncate to repair the torn tail; when
        // truncate also fails, the WAL must degrade rather than ack over
        // damage.
        let plan = FaultPlan {
            fail_after_bytes: Some(WAL_MAGIC.len() as u64 + 4),
            fail_truncate: true,
            ..FaultPlan::default()
        };
        let storage = FaultStorage::new(plan);
        let (store, _) = match DurableStore::open(Box::new(storage), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        assert!(store.append_ids([0]).is_err(), "append tears mid-record");
        assert!(
            !store.is_healthy(),
            "truncate fault leaves the WAL degraded"
        );
        assert!(
            store.append_ids([1]).is_err(),
            "degraded WAL rejects appends"
        );
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_name(0), "wal.000000");
        assert_eq!(segment_name(17), "wal.000017");
        assert_eq!(parse_segment_name("wal.000017"), Some(17));
        assert_eq!(parse_segment_name("wal.1234567"), Some(1_234_567));
        assert_eq!(parse_segment_name("wal.00001"), None, "too short");
        assert_eq!(parse_segment_name("wal.00001x"), None);
        assert_eq!(parse_segment_name("ckpt.000017"), None);
    }

    #[test]
    fn inspect_reports_records_and_diagnoses_torn_tail() {
        let mem = MemStorage::new();
        let bytes = mem.bytes();
        let (store, _) = match DurableStore::open(Box::new(mem), 8, config()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        store.append_ids([0, 1]).unwrap();
        store
            .append_batch((0..5).map(|i| vec![ItemId(i % 8)]))
            .unwrap();
        drop(store);
        let buf = bytes.lock().unwrap().clone();
        let insp = inspect_wal_bytes(&buf).unwrap();
        assert_eq!(insp.format, "v1");
        assert_eq!(insp.base_epoch, None);
        assert_eq!(insp.diagnosis, "clean");
        assert_eq!(insp.end_epoch, 6);
        assert_eq!(insp.valid_bytes, insp.total_bytes);
        let kinds: Vec<&str> = insp.records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec!["batch", "batch", "fence"]);

        // Tear the tail and inspect again.
        let torn = &buf[..buf.len() - 3];
        let insp = inspect_wal_bytes(torn).unwrap();
        assert_ne!(insp.diagnosis, "clean");
        assert!(insp.valid_bytes < insp.total_bytes);

        // Flip a bit: crc mismatch diagnosis.
        let mut flipped = buf.clone();
        let n = flipped.len();
        flipped[n - 2] ^= 0x40;
        let insp = inspect_wal_bytes(&flipped).unwrap();
        assert!(
            insp.diagnosis.contains("crc mismatch"),
            "{}",
            insp.diagnosis
        );

        assert!(matches!(
            inspect_wal_bytes(b"not a wal at all"),
            Err(WalError::NotAWal)
        ));
    }

    #[test]
    fn inspect_reads_v2_segment_headers() {
        let state = MemDir::new().state();
        let (store, _) = open_dir_mem(&state, durability(1 << 20));
        for i in 0..3u32 {
            store.append_ids([i]).unwrap();
        }
        drop(store);
        let mut d = MemDir::with_state(Arc::clone(&state));
        let buf = d.open("wal.000000").unwrap().read_all().unwrap();
        let insp = inspect_wal_bytes(&buf).unwrap();
        assert_eq!(insp.format, "v2");
        assert_eq!(insp.base_epoch, Some(0));
        assert_eq!(insp.end_epoch, 3);
        assert_eq!(insp.diagnosis, "clean");
    }
}

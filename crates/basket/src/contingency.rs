//! Contingency tables over binary items.
//!
//! For an itemset `S = {i_1, ..., i_m}` the contingency table has `2^m`
//! cells, one per combination of presence/absence. We index cells by a
//! bitmask: bit `j` set means the `j`-th item of `S` (in sorted order) is
//! *present* in the cell. `O(r)` is the observed count; the expectation under
//! full independence is `E[r] = n · Π_j p_j` with `p_j = O(i_j)/n` for
//! present items and `1 − O(i_j)/n` for absent ones (Section 3 of the
//! paper).
//!
//! Two representations are provided:
//!
//! * [`ContingencyTable`] — dense `2^m` counts, the natural layout up to
//!   m ≈ 20;
//! * [`SparseContingencyTable`] — only the occupied cells (at most `n` of
//!   them, and at most `min(n, 2^m)`), supporting the paper's massaged
//!   chi-squared formula `Σ O(O − 2E)/E + n`.

use std::collections::HashMap;

use crate::bitmap::BitmapIndex;
use crate::database::BasketDatabase;
use crate::item::ItemId;
use crate::itemset::Itemset;

/// A cell of a contingency table: which items of the itemset are present.
pub type CellMask = u32;

/// Largest itemset dimensionality a dense table will materialize.
pub const MAX_DENSE_DIMS: usize = 24;

/// A dense `2^m` contingency table for one itemset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContingencyTable {
    itemset: Itemset,
    n: u64,
    /// Observed counts, indexed by [`CellMask`].
    counts: Vec<u64>,
    /// `O(i_j)` for each item of the itemset, in itemset order.
    item_counts: Vec<u64>,
}

impl ContingencyTable {
    /// Debug-build contract applied by every constructor: cell counts
    /// sum to `n`, and each stored item marginal equals the sum of the
    /// cells where that item is present. Free in release builds.
    fn checked(self) -> Self {
        if cfg!(debug_assertions) {
            let cell_sum: u64 = self.counts.iter().sum();
            debug_assert!(
                cell_sum == self.n,
                "contingency contract violated: cells sum to {cell_sum}, n = {}",
                self.n
            );
            for (j, &marginal) in self.item_counts.iter().enumerate() {
                let from_cells: u64 = self
                    .counts
                    .iter()
                    .enumerate()
                    .filter(|(mask, _)| mask & (1 << j) != 0)
                    .map(|(_, &c)| c)
                    .sum();
                debug_assert!(
                    from_cells == marginal,
                    "contingency contract violated: marginal {j} is {from_cells} \
                     from cells but {marginal} was stored"
                );
            }
        }
        self
    }

    /// Builds the table with a single scan over the database — the
    /// counting pass of the paper's Figure 1 algorithm.
    ///
    /// # Panics
    ///
    /// Panics if the itemset is empty or larger than [`MAX_DENSE_DIMS`].
    pub fn from_database(db: &BasketDatabase, itemset: &Itemset) -> Self {
        let m = itemset.len();
        assert!(m > 0, "contingency table needs at least one item");
        assert!(
            m <= MAX_DENSE_DIMS,
            "dense table limited to {MAX_DENSE_DIMS} dimensions"
        );
        let mut counts = vec![0u64; 1 << m];
        for basket in db.baskets() {
            counts[cell_mask_of(basket, itemset) as usize] += 1;
        }
        let item_counts = itemset.items().iter().map(|&i| db.item_count(i)).collect();
        ContingencyTable {
            itemset: itemset.clone(),
            n: db.len() as u64,
            counts,
            item_counts,
        }
        .checked()
    }

    /// Builds the table from a vertical bitmap index by computing the
    /// support of every sub-mask and Möbius-inverting the superset sums.
    ///
    /// `supp(mask) = Σ_{cell ⊇ mask} O(cell)`, so subtracting the
    /// superset-sum transform bit-by-bit recovers `O` in `O(m·2^m)` after
    /// `2^m` bitmap intersections.
    pub fn from_index(index: &BitmapIndex, itemset: &Itemset) -> Self {
        let m = itemset.len();
        assert!(m > 0, "contingency table needs at least one item");
        assert!(
            m <= MAX_DENSE_DIMS,
            "dense table limited to {MAX_DENSE_DIMS} dimensions"
        );
        let items = itemset.items();
        // supp[mask]: number of baskets containing all items selected by mask.
        let mut supp: Vec<i64> = vec![0; 1 << m];
        for mask in 0..(1u32 << m) {
            let query: Vec<ItemId> = (0..m)
                .filter(|&j| mask & (1 << j) != 0)
                .map(|j| items[j])
                .collect();
            supp[mask as usize] = index.support_count(&query) as i64;
        }
        // Invert the superset-sum: counts[mask] = Σ_{S ⊇ mask} (−1)^{|S\mask|} supp[S].
        for bit in 0..m {
            for mask in 0..(1u32 << m) {
                if mask & (1 << bit) == 0 {
                    supp[mask as usize] -= supp[(mask | (1 << bit)) as usize];
                }
            }
        }
        let counts: Vec<u64> = supp
            .into_iter()
            .map(|c| {
                debug_assert!(c >= 0, "Möbius inversion produced a negative cell count");
                c.max(0) as u64
            })
            .collect();
        let item_counts = items.iter().map(|&i| index.item(i).count_ones()).collect();
        ContingencyTable {
            itemset: itemset.clone(),
            n: index.n_baskets() as u64,
            counts,
            item_counts,
        }
        .checked()
    }

    /// Builds a table directly from raw cell counts and item marginals.
    ///
    /// `counts[mask]` follows the [`CellMask`] convention. Used by dataset
    /// generators and tests that start from published tables.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != 2^m` or the marginals are inconsistent
    /// with the cell counts.
    pub fn from_counts(itemset: Itemset, counts: Vec<u64>) -> Self {
        let m = itemset.len();
        assert_eq!(counts.len(), 1 << m, "need 2^m cell counts");
        let n: u64 = counts.iter().sum();
        let item_counts: Vec<u64> = (0..m)
            .map(|j| {
                counts
                    .iter()
                    .enumerate()
                    .filter(|(mask, _)| mask & (1 << j) != 0)
                    .map(|(_, &c)| c)
                    .sum()
            })
            .collect();
        ContingencyTable {
            itemset,
            n,
            counts,
            item_counts,
        }
        .checked()
    }

    /// The itemset this table describes.
    pub fn itemset(&self) -> &Itemset {
        &self.itemset
    }

    /// Dimensionality `m`.
    pub fn dims(&self) -> usize {
        self.itemset.len()
    }

    /// Total number of cells, `2^m`.
    pub fn n_cells(&self) -> usize {
        self.counts.len()
    }

    /// Total observations `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Observed count `O(r)` for a cell.
    pub fn observed(&self, cell: CellMask) -> u64 {
        self.counts[cell as usize]
    }

    /// Marginal count `O(i_j)` of the `j`-th item of the itemset.
    pub fn item_count(&self, j: usize) -> u64 {
        self.item_counts[j]
    }

    /// Expected count `E[r]` under full independence of all `m` items.
    pub fn expected(&self, cell: CellMask) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let mut e = n;
        for (j, &count) in self.item_counts.iter().enumerate() {
            let p = count as f64 / n;
            e *= if cell & (1 << j) != 0 { p } else { 1.0 - p };
        }
        e
    }

    /// Iterates `(cell, observed)` over all `2^m` cells.
    pub fn cells(&self) -> impl Iterator<Item = (CellMask, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(mask, &c)| (mask as CellMask, c))
    }

    /// Iterates only occupied cells (`O(r) > 0`).
    pub fn occupied_cells(&self) -> impl Iterator<Item = (CellMask, u64)> + '_ {
        self.cells().filter(|&(_, c)| c > 0)
    }

    /// Number of cells whose *observed* value is at least `s` — the quantity
    /// behind the paper's cell-based support definition (Section 4).
    pub fn cells_with_count_at_least(&self, s: u64) -> usize {
        self.counts.iter().filter(|&&c| c >= s).count()
    }

    /// Collapses the table onto a subset of its items, marginalizing the
    /// rest out. `keep` lists positions (0-based, itemset order) to retain.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty, unsorted, or out of range.
    pub fn marginalize(&self, keep: &[usize]) -> ContingencyTable {
        assert!(!keep.is_empty(), "must keep at least one dimension");
        assert!(
            keep.windows(2).all(|w| w[0] < w[1]),
            "keep must be strictly sorted"
        );
        assert!(
            keep.last().is_some_and(|&j| j < self.dims()),
            "keep position out of range"
        );
        let new_items: Vec<ItemId> = keep.iter().map(|&j| self.itemset.items()[j]).collect();
        let mut counts = vec![0u64; 1 << keep.len()];
        for (mask, c) in self.cells() {
            let mut new_mask: CellMask = 0;
            for (new_j, &old_j) in keep.iter().enumerate() {
                if mask & (1 << old_j) != 0 {
                    new_mask |= 1 << new_j;
                }
            }
            counts[new_mask as usize] += c;
        }
        let item_counts = keep.iter().map(|&j| self.item_counts[j]).collect();
        ContingencyTable {
            itemset: Itemset::from_sorted(new_items),
            n: self.n,
            counts,
            item_counts,
        }
        .checked()
    }

    /// Renders a cell as present/absent item labels, e.g. `ab̄c`.
    pub fn describe_cell(&self, cell: CellMask, names: &[&str]) -> String {
        let mut out = String::new();
        for (j, name) in names.iter().enumerate().take(self.dims()) {
            if cell & (1 << j) != 0 {
                out.push_str(name);
            } else {
                out.push('!');
                out.push_str(name);
            }
            if j + 1 < self.dims() {
                out.push(' ');
            }
        }
        out
    }
}

/// A sparse contingency table holding only occupied cells.
///
/// When `2^m` exceeds `n`, most cells are empty; the paper notes the
/// chi-squared value can still be computed from occupied cells alone via
/// `x² = Σ_{O(r)>0} O(r)(O(r) − 2E[r])/E[r] + n`.
#[derive(Clone, Debug)]
pub struct SparseContingencyTable {
    itemset: Itemset,
    n: u64,
    cells: HashMap<u64, u64>,
    item_counts: Vec<u64>,
}

impl SparseContingencyTable {
    /// Builds by a single scan over the database; memory is proportional to
    /// the number of distinct occupied cells, never `2^m`.
    ///
    /// Supports itemsets of up to 64 items.
    pub fn from_database(db: &BasketDatabase, itemset: &Itemset) -> Self {
        let m = itemset.len();
        assert!(m > 0, "contingency table needs at least one item");
        assert!(m <= 64, "sparse table limited to 64 dimensions");
        let mut cells: HashMap<u64, u64> = HashMap::new();
        for basket in db.baskets() {
            *cells.entry(wide_cell_mask_of(basket, itemset)).or_insert(0) += 1;
        }
        let item_counts = itemset.items().iter().map(|&i| db.item_count(i)).collect();
        SparseContingencyTable {
            itemset: itemset.clone(),
            n: db.len() as u64,
            cells,
            item_counts,
        }
    }

    /// The itemset this table describes.
    pub fn itemset(&self) -> &Itemset {
        &self.itemset
    }

    /// Dimensionality `m`.
    pub fn dims(&self) -> usize {
        self.itemset.len()
    }

    /// Total observations `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of occupied cells.
    pub fn n_occupied(&self) -> usize {
        self.cells.len()
    }

    /// Observed count for a cell (0 when unoccupied).
    pub fn observed(&self, cell: u64) -> u64 {
        self.cells.get(&cell).copied().unwrap_or(0)
    }

    /// Expected count under full independence.
    pub fn expected(&self, cell: u64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let mut e = n;
        for (j, &count) in self.item_counts.iter().enumerate() {
            let p = count as f64 / n;
            e *= if cell & (1 << j) != 0 { p } else { 1.0 - p };
        }
        e
    }

    /// Iterates occupied `(cell, observed)` pairs in unspecified order.
    pub fn occupied_cells(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.cells.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of cells (occupied only — unoccupied cells cannot reach any
    /// positive threshold) whose observed value is at least `s`.
    pub fn cells_with_count_at_least(&self, s: u64) -> usize {
        if s == 0 {
            // Every one of the 2^m cells trivially has count >= 0; saturate.
            return usize::MAX;
        }
        self.cells.values().filter(|&&c| c >= s).count()
    }
}

/// Computes the cell (as a [`CellMask`]) a sorted basket falls into for the
/// given itemset: bit `j` set iff the basket contains the `j`-th item.
#[inline]
pub fn cell_mask_of(basket: &[ItemId], itemset: &Itemset) -> CellMask {
    wide_cell_mask_of(basket, itemset) as CellMask
}

/// 64-bit variant of [`cell_mask_of`] for itemsets of up to 64 items.
#[inline]
pub fn wide_cell_mask_of(basket: &[ItemId], itemset: &Itemset) -> u64 {
    let mut mask: u64 = 0;
    let mut bi = 0;
    for (j, &want) in itemset.items().iter().enumerate() {
        while bi < basket.len() && basket[bi] < want {
            bi += 1;
        }
        if bi < basket.len() && basket[bi] == want {
            mask |= 1 << j;
            bi += 1;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 1 of the paper: tea/coffee percentages of n = 100 baskets.
    /// Cell layout (bit0 = tea present, bit1 = coffee present):
    ///   t∧c = 20, t∧c̄ = 5, t̄∧c = 70, t̄∧c̄ = 5.
    fn tea_coffee_db() -> BasketDatabase {
        let mut baskets = Vec::new();
        for _ in 0..20 {
            baskets.push(vec![0, 1]); // tea & coffee
        }
        for _ in 0..5 {
            baskets.push(vec![0]); // tea only
        }
        for _ in 0..70 {
            baskets.push(vec![1]); // coffee only
        }
        for _ in 0..5 {
            baskets.push(vec![]);
        }
        BasketDatabase::from_id_baskets(2, baskets)
    }

    #[test]
    fn scan_build_matches_paper_example_1() {
        let db = tea_coffee_db();
        let set = Itemset::from_ids([0, 1]);
        let t = ContingencyTable::from_database(&db, &set);
        assert_eq!(t.n(), 100);
        assert_eq!(t.observed(0b11), 20);
        assert_eq!(t.observed(0b01), 5); // tea, no coffee
        assert_eq!(t.observed(0b10), 70); // coffee, no tea
        assert_eq!(t.observed(0b00), 5);
        assert_eq!(t.item_count(0), 25); // tea row sum
        assert_eq!(t.item_count(1), 90); // coffee column sum
                                         // E[t∧c] = 100 · 0.25 · 0.9 = 22.5
        assert!((t.expected(0b11) - 22.5).abs() < 1e-9);
        // E[t̄∧c̄] = 100 · 0.75 · 0.1 = 7.5
        assert!((t.expected(0b00) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn index_build_matches_scan_build() {
        let db = tea_coffee_db();
        let idx = BitmapIndex::build(&db);
        for set in [
            Itemset::from_ids([0]),
            Itemset::from_ids([1]),
            Itemset::from_ids([0, 1]),
        ] {
            let a = ContingencyTable::from_database(&db, &set);
            let b = ContingencyTable::from_index(&idx, &set);
            assert_eq!(a, b, "mismatch for {set}");
        }
    }

    #[test]
    fn cells_sum_to_n() {
        let db = tea_coffee_db();
        let t = ContingencyTable::from_database(&db, &Itemset::from_ids([0, 1]));
        let total: u64 = t.cells().map(|(_, c)| c).sum();
        assert_eq!(total, t.n());
        let e_total: f64 = t.cells().map(|(c, _)| t.expected(c)).sum();
        assert!((e_total - t.n() as f64).abs() < 1e-6);
    }

    #[test]
    fn from_counts_derives_marginals() {
        let set = Itemset::from_ids([3, 7]);
        let t = ContingencyTable::from_counts(set, vec![5, 20, 70, 5]);
        // bit0 = item 3 present: masks 1 and 3 → 20 + 5 = 25.
        assert_eq!(t.item_count(0), 25);
        // bit1 = item 7 present: masks 2 and 3 → 70 + 5 = 75.
        assert_eq!(t.item_count(1), 75);
        assert_eq!(t.n(), 100);
    }

    #[test]
    fn three_way_table() {
        let db = BasketDatabase::from_id_baskets(
            3,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![0],
                vec![],
                vec![1, 2],
                vec![2],
            ],
        );
        let set = Itemset::from_ids([0, 1, 2]);
        let t = ContingencyTable::from_database(&db, &set);
        assert_eq!(t.n_cells(), 8);
        assert_eq!(t.observed(0b111), 1);
        assert_eq!(t.observed(0b011), 1);
        assert_eq!(t.observed(0b001), 1);
        assert_eq!(t.observed(0b000), 1);
        assert_eq!(t.observed(0b110), 1);
        assert_eq!(t.observed(0b100), 1);
        let idx = BitmapIndex::build(&db);
        assert_eq!(t, ContingencyTable::from_index(&idx, &set));
    }

    #[test]
    fn marginalize_collapses_correctly() {
        let db = tea_coffee_db();
        let pair = ContingencyTable::from_database(&db, &Itemset::from_ids([0, 1]));
        let tea_only = pair.marginalize(&[0]);
        assert_eq!(tea_only.observed(0b1), 25);
        assert_eq!(tea_only.observed(0b0), 75);
        let coffee_only = pair.marginalize(&[1]);
        assert_eq!(coffee_only.observed(0b1), 90);
    }

    #[test]
    fn sparse_matches_dense() {
        let db = tea_coffee_db();
        let set = Itemset::from_ids([0, 1]);
        let dense = ContingencyTable::from_database(&db, &set);
        let sparse = SparseContingencyTable::from_database(&db, &set);
        assert_eq!(sparse.n(), dense.n());
        for (mask, c) in dense.cells() {
            assert_eq!(sparse.observed(mask as u64), c);
            if c > 0 {
                assert!((sparse.expected(mask as u64) - dense.expected(mask)).abs() < 1e-9);
            }
        }
        assert_eq!(sparse.n_occupied(), 4);
    }

    #[test]
    fn sparse_occupied_cells_bounded_by_n() {
        let db = BasketDatabase::from_id_baskets(
            40,
            (0..10).map(|i| vec![i, i + 10, i + 20, i + 30]).collect(),
        );
        let set = Itemset::from_items((0..40).map(ItemId));
        let sparse = SparseContingencyTable::from_database(&db, &set);
        assert!(sparse.n_occupied() <= 10);
    }

    #[test]
    fn support_cells_threshold() {
        let db = tea_coffee_db();
        let t = ContingencyTable::from_database(&db, &Itemset::from_ids([0, 1]));
        assert_eq!(t.cells_with_count_at_least(1), 4);
        assert_eq!(t.cells_with_count_at_least(5), 4);
        assert_eq!(t.cells_with_count_at_least(6), 2);
        assert_eq!(t.cells_with_count_at_least(71), 0);
    }

    #[test]
    fn cell_mask_walks_sorted_baskets() {
        let set = Itemset::from_ids([2, 5, 9]);
        let basket = [ItemId(1), ItemId(5), ItemId(9)];
        assert_eq!(cell_mask_of(&basket, &set), 0b110);
        assert_eq!(cell_mask_of(&[], &set), 0);
        let all = [ItemId(2), ItemId(5), ItemId(9)];
        assert_eq!(cell_mask_of(&all, &set), 0b111);
    }

    #[test]
    fn describe_cell_renders_presence() {
        let db = tea_coffee_db();
        let t = ContingencyTable::from_database(&db, &Itemset::from_ids([0, 1]));
        assert_eq!(t.describe_cell(0b01, &["t", "c"]), "t !c");
        assert_eq!(t.describe_cell(0b10, &["t", "c"]), "!t c");
    }
}

//! Multinomial (non-binary) contingency tables.
//!
//! Section 5.1 of the paper notes that "the chi-squared test extends easily
//! to non-binary data" — census answers are naturally multi-valued, and a
//! non-collapsed table "with more than two rows and columns could find
//! finer-grained dependency". This module provides that extension: records
//! are tuples of categorical attribute values, and the contingency table is
//! a `u_1 × u_2 × ... × u_m` array with independence expectations taken from
//! per-attribute marginals. Degrees of freedom follow Appendix A:
//! `(u_1 − 1)(u_2 − 1)···(u_m − 1)`.

/// A categorical attribute: a name plus its value labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, e.g. `"commute"`.
    pub name: String,
    /// Value labels, e.g. `["drives alone", "carpools", "does not drive"]`.
    pub values: Vec<String>,
}

impl Attribute {
    /// Creates an attribute with the given value labels.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two values are supplied — a one-valued attribute
    /// carries no information and breaks the degrees-of-freedom formula.
    pub fn new<S: Into<String>, V: Into<String>>(
        name: S,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        let values: Vec<String> = values.into_iter().map(Into::into).collect();
        assert!(values.len() >= 2, "attribute needs at least two values");
        Attribute {
            name: name.into(),
            values,
        }
    }

    /// Number of distinct values `u`.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }
}

/// A table of records over categorical attributes.
///
/// Each record assigns one value index per attribute.
#[derive(Clone, Debug, Default)]
pub struct CategoricalData {
    attributes: Vec<Attribute>,
    records: Vec<Box<[u16]>>,
}

impl CategoricalData {
    /// An empty dataset over the given attributes.
    pub fn new(attributes: Vec<Attribute>) -> Self {
        CategoricalData {
            attributes,
            records: Vec::new(),
        }
    }

    /// The schema.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends one record of value indexes, one per attribute.
    ///
    /// # Panics
    ///
    /// Panics if the record length or any value index is out of range.
    pub fn push_record(&mut self, values: &[u16]) {
        assert_eq!(values.len(), self.attributes.len(), "record arity mismatch");
        for (a, &v) in self.attributes.iter().zip(values) {
            assert!(
                (v as usize) < a.cardinality(),
                "value {v} out of range for {}",
                a.name
            );
        }
        self.records.push(values.to_vec().into_boxed_slice());
    }

    /// The record at `index`.
    pub fn record(&self, index: usize) -> &[u16] {
        &self.records[index]
    }

    /// Builds the multinomial contingency table over a subset of attribute
    /// positions.
    pub fn contingency(&self, positions: &[usize]) -> CategoricalTable {
        CategoricalTable::from_data(self, positions)
    }
}

/// A dense multinomial contingency table over a subset of attributes.
#[derive(Clone, Debug, PartialEq)]
pub struct CategoricalTable {
    /// Which attribute positions of the source data are tabulated.
    positions: Vec<usize>,
    /// Cardinality of each tabulated attribute.
    dims: Vec<usize>,
    n: u64,
    /// Row-major counts; the first position varies slowest.
    counts: Vec<u64>,
    /// Per-attribute marginal counts.
    marginals: Vec<Vec<u64>>,
}

impl CategoricalTable {
    /// Tabulates `data` over the attribute `positions`.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty, has duplicates, or indexes past the
    /// schema, or if the cell space exceeds 2^24 cells.
    pub fn from_data(data: &CategoricalData, positions: &[usize]) -> Self {
        assert!(!positions.is_empty(), "need at least one attribute");
        let mut seen = vec![false; data.attributes().len()];
        for &p in positions {
            assert!(
                p < data.attributes().len(),
                "attribute position {p} out of range"
            );
            assert!(!seen[p], "duplicate attribute position {p}");
            seen[p] = true;
        }
        let dims: Vec<usize> = positions
            .iter()
            .map(|&p| data.attributes()[p].cardinality())
            .collect();
        let n_cells: usize = dims.iter().product();
        assert!(n_cells <= 1 << 24, "cell space too large for a dense table");
        let mut counts = vec![0u64; n_cells];
        let mut marginals: Vec<Vec<u64>> = dims.iter().map(|&d| vec![0u64; d]).collect();
        for rec in &data.records {
            let mut cell = 0usize;
            for (j, &p) in positions.iter().enumerate() {
                let v = rec[p] as usize;
                cell = cell * dims[j] + v;
                marginals[j][v] += 1;
            }
            counts[cell] += 1;
        }
        CategoricalTable {
            positions: positions.to_vec(),
            dims,
            n: data.len() as u64,
            counts,
            marginals,
        }
    }

    /// Builds a 2-attribute table directly from a row-major count matrix.
    pub fn from_matrix(rows: usize, cols: usize, counts: Vec<u64>) -> Self {
        assert_eq!(counts.len(), rows * cols, "count matrix shape mismatch");
        let n: u64 = counts.iter().sum();
        let mut row_marg = vec![0u64; rows];
        let mut col_marg = vec![0u64; cols];
        for r in 0..rows {
            for c in 0..cols {
                row_marg[r] += counts[r * cols + c];
                col_marg[c] += counts[r * cols + c];
            }
        }
        CategoricalTable {
            positions: vec![0, 1],
            dims: vec![rows, cols],
            n,
            counts,
            marginals: vec![row_marg, col_marg],
        }
    }

    /// The tabulated attribute positions.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Cardinalities of the tabulated attributes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total observations.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.counts.len()
    }

    /// Observed count for a cell given one value index per attribute.
    pub fn observed(&self, values: &[usize]) -> u64 {
        self.counts[self.cell_index(values)]
    }

    /// Expected count under full independence of the tabulated attributes.
    pub fn expected(&self, values: &[usize]) -> f64 {
        assert_eq!(values.len(), self.dims.len(), "cell arity mismatch");
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let mut e = n;
        for (j, &v) in values.iter().enumerate() {
            e *= self.marginals[j][v] as f64 / n;
        }
        e
    }

    /// Iterates `(cell_values, observed)` over every cell.
    pub fn cells(&self) -> impl Iterator<Item = (Vec<usize>, u64)> + '_ {
        (0..self.counts.len()).map(|flat| (self.unflatten(flat), self.counts[flat]))
    }

    /// Degrees of freedom `(u_1 − 1)(u_2 − 1)···(u_m − 1)` (Appendix A).
    pub fn degrees_of_freedom(&self) -> u64 {
        self.dims.iter().map(|&d| (d as u64) - 1).product()
    }

    /// The marginal counts of attribute `j` (in `positions` order).
    pub fn marginal(&self, j: usize) -> &[u64] {
        &self.marginals[j]
    }

    fn cell_index(&self, values: &[usize]) -> usize {
        assert_eq!(values.len(), self.dims.len(), "cell arity mismatch");
        let mut cell = 0usize;
        for (j, &v) in values.iter().enumerate() {
            assert!(v < self.dims[j], "value {v} out of range in dimension {j}");
            cell = cell * self.dims[j] + v;
        }
        cell
    }

    fn unflatten(&self, mut flat: usize) -> Vec<usize> {
        let mut out = vec![0usize; self.dims.len()];
        for j in (0..self.dims.len()).rev() {
            out[j] = flat % self.dims[j];
            flat /= self.dims[j];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commute_data() -> CategoricalData {
        let mut data = CategoricalData::new(vec![
            Attribute::new("commute", ["drives", "carpools", "walks"]),
            Attribute::new("married", ["yes", "no"]),
        ]);
        // 3x2 layout of counts:
        //            yes no
        // drives      30  10
        // carpools     5  15
        // walks        5  35
        for (commute, married, count) in [
            (0u16, 0u16, 30),
            (0, 1, 10),
            (1, 0, 5),
            (1, 1, 15),
            (2, 0, 5),
            (2, 1, 35),
        ] {
            for _ in 0..count {
                data.push_record(&[commute, married]);
            }
        }
        data
    }

    #[test]
    fn tabulation_counts_and_marginals() {
        let data = commute_data();
        let t = data.contingency(&[0, 1]);
        assert_eq!(t.n(), 100);
        assert_eq!(t.n_cells(), 6);
        assert_eq!(t.observed(&[0, 0]), 30);
        assert_eq!(t.observed(&[2, 1]), 35);
        assert_eq!(t.marginal(0), &[40, 20, 40]);
        assert_eq!(t.marginal(1), &[40, 60]);
    }

    #[test]
    fn expected_under_independence() {
        let t = commute_data().contingency(&[0, 1]);
        // E[drives, yes] = 100 · 0.4 · 0.4 = 16.
        assert!((t.expected(&[0, 0]) - 16.0).abs() < 1e-9);
        let e_total: f64 = t.cells().map(|(v, _)| t.expected(&v)).sum();
        assert!((e_total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn degrees_of_freedom_formula() {
        let t = commute_data().contingency(&[0, 1]);
        assert_eq!(t.degrees_of_freedom(), 2); // (3−1)(2−1)
    }

    #[test]
    fn single_attribute_marginal_table() {
        let t = commute_data().contingency(&[1]);
        assert_eq!(t.observed(&[0]), 40);
        assert_eq!(t.observed(&[1]), 60);
        assert_eq!(t.degrees_of_freedom(), 1);
    }

    #[test]
    fn from_matrix_agrees_with_tabulation() {
        let from_data = commute_data().contingency(&[0, 1]);
        let from_matrix = CategoricalTable::from_matrix(3, 2, vec![30, 10, 5, 15, 5, 35]);
        assert_eq!(from_matrix.n(), from_data.n());
        for (values, c) in from_data.cells() {
            assert_eq!(from_matrix.observed(&values), c);
        }
    }

    #[test]
    fn cells_iterate_all_and_sum_to_n() {
        let t = commute_data().contingency(&[0, 1]);
        let total: u64 = t.cells().map(|(_, c)| c).sum();
        assert_eq!(total, 100);
        assert_eq!(t.cells().count(), 6);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        commute_data().contingency(&[0, 1]).observed(&[0]);
    }

    #[test]
    #[should_panic(expected = "at least two values")]
    fn degenerate_attribute_panics() {
        Attribute::new("constant", ["only"]);
    }
}

//! Sorted itemsets and subset enumeration.
//!
//! An [`Itemset`] is a set of distinct items kept in sorted order. Sorted
//! storage gives canonical equality/hashing (needed for the SIG/NOTSIG hash
//! tables of the paper's Figure 1 algorithm), cheap subset tests by merge
//! walk, and prefix-based joins for level-wise candidate generation.

use std::fmt;
use std::ops::Deref;

use crate::item::ItemId;

/// A canonical (sorted, deduplicated) set of items.
///
/// # Examples
///
/// ```
/// use bmb_basket::{ItemId, Itemset};
///
/// let s = Itemset::from_ids([3, 1, 2, 3]);
/// assert_eq!(s.len(), 3);
/// assert!(s.contains(ItemId(2)));
/// assert!(Itemset::from_ids([1, 3]).is_subset_of(&s));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Itemset {
    items: Box<[ItemId]>,
}

impl Itemset {
    /// The empty itemset (the bottom of the lattice).
    pub fn empty() -> Self {
        Itemset {
            items: Box::new([]),
        }
    }

    /// A singleton itemset.
    pub fn singleton(item: ItemId) -> Self {
        Itemset {
            items: Box::new([item]),
        }
    }

    /// Builds an itemset from any iterator of items, sorting and deduplicating.
    pub fn from_items<I: IntoIterator<Item = ItemId>>(items: I) -> Self {
        let mut v: Vec<ItemId> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// Builds an itemset from raw `u32` ids; convenient in tests.
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Self::from_items(ids.into_iter().map(ItemId))
    }

    /// Builds from a slice already known to be strictly sorted.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `items` is not strictly increasing.
    pub fn from_sorted(items: Vec<ItemId>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly sorted"
        );
        Itemset {
            items: items.into_boxed_slice(),
        }
    }

    /// Borrowing variant of [`Itemset::from_sorted`]: copies a slice that
    /// is already canonical (strictly sorted, deduplicated) without the
    /// sort-and-dedup pass of [`Itemset::from_items`].
    ///
    /// This is the constructor for data whose sortedness is an invariant —
    /// baskets of a [`crate::BasketDatabase`], another itemset's items —
    /// so hash/equality behaviour (and with it every itemset-keyed cache)
    /// rests on *one* canonical representation rather than per-call-site
    /// re-sorting.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `items` is not strictly increasing.
    pub fn from_sorted_slice(items: &[ItemId]) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly sorted"
        );
        Itemset {
            items: items.into(),
        }
    }

    /// Number of items (the itemset's "level" in the lattice).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether this is the empty itemset.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items in sorted order.
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Membership test by binary search.
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Position of `item` within the sorted items, if present.
    pub fn position(&self, item: ItemId) -> Option<usize> {
        self.items.binary_search(&item).ok()
    }

    /// Whether `self ⊆ other`, by a linear merge walk.
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        is_sorted_subset(&self.items, &other.items)
    }

    /// Whether `self ⊇ other`.
    pub fn is_superset_of(&self, other: &Itemset) -> bool {
        other.is_subset_of(self)
    }

    /// Set union, preserving canonical order.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut a, mut b) = (0, 0);
        while a < self.items.len() && b < other.items.len() {
            match self.items[a].cmp(&other.items[b]) {
                std::cmp::Ordering::Less => {
                    out.push(self.items[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.items[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.items[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        out.extend_from_slice(&self.items[a..]);
        out.extend_from_slice(&other.items[b..]);
        Itemset {
            items: out.into_boxed_slice(),
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::new();
        let (mut a, mut b) = (0, 0);
        while a < self.items.len() && b < other.items.len() {
            match self.items[a].cmp(&other.items[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.items[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        Itemset {
            items: out.into_boxed_slice(),
        }
    }

    /// The itemset with `item` inserted (no-op if already present).
    pub fn with_item(&self, item: ItemId) -> Itemset {
        match self.items.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = Vec::with_capacity(self.len() + 1);
                v.extend_from_slice(&self.items[..pos]);
                v.push(item);
                v.extend_from_slice(&self.items[pos..]);
                Itemset {
                    items: v.into_boxed_slice(),
                }
            }
        }
    }

    /// The itemset with `item` removed (no-op if absent).
    pub fn without_item(&self, item: ItemId) -> Itemset {
        match self.items.binary_search(&item) {
            Err(_) => self.clone(),
            Ok(pos) => {
                let mut v = Vec::with_capacity(self.len() - 1);
                v.extend_from_slice(&self.items[..pos]);
                v.extend_from_slice(&self.items[pos + 1..]);
                Itemset {
                    items: v.into_boxed_slice(),
                }
            }
        }
    }

    /// All subsets of size `len − 1`, i.e. the itemset's children in the
    /// lattice. These are exactly the sets whose presence in NOTSIG the
    /// paper's Step 8 checks.
    pub fn facets(&self) -> impl Iterator<Item = Itemset> + '_ {
        (0..self.items.len()).map(move |skip| {
            let mut v = Vec::with_capacity(self.items.len() - 1);
            for (i, &it) in self.items.iter().enumerate() {
                if i != skip {
                    v.push(it);
                }
            }
            Itemset {
                items: v.into_boxed_slice(),
            }
        })
    }

    /// All subsets of exactly `size` items, in lexicographic order.
    ///
    /// Intended for small itemsets (contingency table dimensionalities); the
    /// output has `C(len, size)` entries.
    pub fn subsets_of_size(&self, size: usize) -> Vec<Itemset> {
        let n = self.items.len();
        if size > n {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut idx: Vec<usize> = (0..size).collect();
        loop {
            out.push(Itemset {
                items: idx.iter().map(|&i| self.items[i]).collect(),
            });
            // Advance the combination cursor.
            let mut pos = size;
            while pos > 0 {
                pos -= 1;
                if idx[pos] + (size - pos) < n {
                    idx[pos] += 1;
                    for j in pos + 1..size {
                        idx[j] = idx[j - 1] + 1;
                    }
                    break;
                }
                if pos == 0 {
                    return out;
                }
            }
            if size == 0 {
                return out;
            }
        }
    }

    /// All 2^len subsets, in mask order (the empty set first).
    ///
    /// Only sensible for small itemsets; panics if `len >= 32`.
    pub fn power_set(&self) -> Vec<Itemset> {
        let n = self.items.len();
        assert!(
            n < 32,
            "power_set is only supported for itemsets of < 32 items"
        );
        (0u32..(1 << n))
            .map(|mask| Itemset {
                items: (0..n)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| self.items[i])
                    .collect(),
            })
            .collect()
    }

    /// The prefix of all but the last item; used for level-wise joins.
    pub fn prefix(&self) -> &[ItemId] {
        &self.items[..self.items.len().saturating_sub(1)]
    }

    /// The largest item, if non-empty.
    pub fn last(&self) -> Option<ItemId> {
        self.items.last().copied()
    }
}

impl std::borrow::Borrow<[ItemId]> for Itemset {
    fn borrow(&self) -> &[ItemId] {
        &self.items
    }
}

impl Deref for Itemset {
    type Target = [ItemId];
    fn deref(&self) -> &[ItemId] {
        &self.items
    }
}

impl<'a> IntoIterator for &'a Itemset {
    type Item = ItemId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ItemId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

impl FromIterator<ItemId> for Itemset {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        Itemset::from_items(iter)
    }
}

impl fmt::Debug for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Merge-walk subset test on two sorted slices.
fn is_sorted_subset(small: &[ItemId], large: &[ItemId]) -> bool {
    if small.len() > large.len() {
        return false;
    }
    let mut b = 0;
    'outer: for &x in small {
        while b < large.len() {
            match large[b].cmp(&x) {
                std::cmp::Ordering::Less => b += 1,
                std::cmp::Ordering::Equal => {
                    b += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let set = s(&[5, 1, 3, 1, 5]);
        assert_eq!(set.items(), &[ItemId(1), ItemId(3), ItemId(5)]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(Itemset::empty().is_empty());
        assert_eq!(Itemset::singleton(ItemId(4)).items(), &[ItemId(4)]);
    }

    #[test]
    fn subset_tests() {
        let big = s(&[1, 2, 3, 4, 5]);
        assert!(s(&[]).is_subset_of(&big));
        assert!(s(&[2, 4]).is_subset_of(&big));
        assert!(s(&[1, 2, 3, 4, 5]).is_subset_of(&big));
        assert!(!s(&[0]).is_subset_of(&big));
        assert!(!s(&[2, 6]).is_subset_of(&big));
        assert!(big.is_superset_of(&s(&[5])));
        assert!(!s(&[1, 2, 3, 4, 5, 6]).is_subset_of(&big));
    }

    #[test]
    fn union_and_intersection() {
        let a = s(&[1, 3, 5]);
        let b = s(&[2, 3, 6]);
        assert_eq!(a.union(&b), s(&[1, 2, 3, 5, 6]));
        assert_eq!(a.intersection(&b), s(&[3]));
        assert_eq!(a.union(&Itemset::empty()), a);
        assert_eq!(a.intersection(&Itemset::empty()), Itemset::empty());
    }

    #[test]
    fn with_and_without_item() {
        let a = s(&[1, 3]);
        assert_eq!(a.with_item(ItemId(2)), s(&[1, 2, 3]));
        assert_eq!(a.with_item(ItemId(3)), a);
        assert_eq!(a.without_item(ItemId(1)), s(&[3]));
        assert_eq!(a.without_item(ItemId(9)), a);
    }

    #[test]
    fn facets_are_all_len_minus_one_subsets() {
        let a = s(&[1, 2, 3]);
        let facets: Vec<Itemset> = a.facets().collect();
        assert_eq!(facets, vec![s(&[2, 3]), s(&[1, 3]), s(&[1, 2])]);
    }

    #[test]
    fn subsets_of_size_counts() {
        let a = s(&[1, 2, 3, 4, 5]);
        assert_eq!(a.subsets_of_size(0).len(), 1);
        assert_eq!(a.subsets_of_size(2).len(), 10);
        assert_eq!(a.subsets_of_size(3).len(), 10);
        assert_eq!(a.subsets_of_size(5).len(), 1);
        assert_eq!(a.subsets_of_size(6).len(), 0);
        // Every subset really is a subset and has the right size.
        for sub in a.subsets_of_size(3) {
            assert_eq!(sub.len(), 3);
            assert!(sub.is_subset_of(&a));
        }
    }

    #[test]
    fn power_set_size() {
        let a = s(&[7, 9, 11]);
        let ps = a.power_set();
        assert_eq!(ps.len(), 8);
        assert_eq!(ps[0], Itemset::empty());
        assert!(ps.contains(&a));
    }

    #[test]
    fn prefix_join_fields() {
        let a = s(&[1, 2, 9]);
        assert_eq!(a.prefix(), &[ItemId(1), ItemId(2)]);
        assert_eq!(a.last(), Some(ItemId(9)));
        assert_eq!(Itemset::empty().last(), None);
    }

    #[test]
    fn every_constructor_yields_one_canonical_representation() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        let hash_of = |set: &Itemset| {
            let mut h = DefaultHasher::new();
            set.hash(&mut h);
            h.finish()
        };
        // The same set built four ways — including from unsorted input —
        // must be equal AND hash identically, or any itemset-keyed cache
        // (snapshot tables, support stores) would silently miss.
        let sorted = vec![ItemId(1), ItemId(4), ItemId(9)];
        let variants = [
            Itemset::from_ids([9, 1, 4, 9]),
            Itemset::from_items(sorted.iter().copied()),
            Itemset::from_sorted(sorted.clone()),
            Itemset::from_sorted_slice(&sorted),
        ];
        for v in &variants {
            assert_eq!(v, &variants[0]);
            assert_eq!(hash_of(v), hash_of(&variants[0]));
        }
        // Slice lookups (Borrow<[ItemId]>) see the same canonical order.
        assert_eq!(variants[0].items(), sorted.as_slice());
    }

    #[test]
    fn display_formats() {
        assert_eq!(s(&[1, 2]).to_string(), "{i1,i2}");
        assert_eq!(Itemset::empty().to_string(), "{}");
    }
}

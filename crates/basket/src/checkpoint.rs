//! Checkpoint snapshots and the checkpoint manifest.
//!
//! A checkpoint bounds recovery: instead of replaying the write-ahead
//! log from byte zero, [`crate::wal::DurableStore::open_dir`] loads the
//! newest *valid* snapshot file and replays only the WAL records after
//! its epoch. This module owns the two on-media formats and their
//! validation; the protocol that writes them crash-safely lives in
//! [`crate::wal`].
//!
//! # Snapshot format (`ckpt.<epoch>`)
//!
//! ```text
//! magic   b"BMBCKPT1"                                   (8 bytes)
//! epoch   u64le      — store epoch == total baskets     (8)
//! k       u32le      — item-space size                  (4)
//! cap     u32le      — segment capacity                 (4)
//! n       u64le      — basket count (must equal epoch)  (8)
//! baskets (m:u32le  id:u32le{m}) × n  — ingest order
//! crc     u32le      — CRC-32 of every preceding byte   (4)
//! ```
//!
//! Baskets are stored in ingest order; restoring re-appends them into a
//! fresh [`crate::IncrementalStore`], and because segment structure is a
//! pure function of capacity and basket order, the rebuilt store (and
//! every chi-squared / border answer over it) is bit-identical to the
//! store the snapshot was taken from.
//!
//! # Manifest format (`MANIFEST`)
//!
//! ```text
//! magic   b"BMBMAN1\n"              (8 bytes)
//! n       u32le                     (4)
//! epoch   u64le × n  — ascending    (8 each)
//! crc     u32le      — CRC-32 of every preceding byte
//! ```
//!
//! The manifest lists the checkpoint epochs believed durable, newest
//! last. Recovery tries them newest-first (then any snapshot files the
//! manifest missed); retention treats only the *oldest retained* entry
//! as the epoch WAL segments may be deleted under, so a corrupted
//! newest checkpoint always leaves an older one with its WAL suffix
//! intact to fall back to.
//!
//! Every file is written via create-temp → write → fsync → atomic
//! rename → fsync-directory, so a crash at any point leaves either the
//! old file, the new file, or a stray `*.tmp` that recovery deletes —
//! never a half-visible checkpoint.

use std::io;

use crate::item::ItemId;
use crate::segment::Snapshot;
use crate::storage::Dir;
use crate::wal::crc32;

/// Magic bytes opening every checkpoint snapshot file (versioned).
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"BMBCKPT1";

/// Magic bytes opening the checkpoint manifest (versioned).
pub const MANIFEST_MAGIC: &[u8; 8] = b"BMBMAN1\n";

/// Name of the manifest file inside a durability directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Suffix of in-flight atomic writes; recovery deletes stray matches.
pub const TMP_SUFFIX: &str = ".tmp";

/// The file name of the checkpoint at `epoch` (zero-padded so
/// lexicographic order is epoch order).
pub fn checkpoint_name(epoch: u64) -> String {
    format!("ckpt.{epoch:020}")
}

/// Parses a [`checkpoint_name`]-shaped file name back to its epoch.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("ckpt.")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Serializes a store snapshot to the checkpoint format.
///
/// `segment_capacity` is recorded so recovery can reject a snapshot
/// taken under a different sealing geometry (its rebuilt segments would
/// not match the WAL's epoch fences).
pub fn encode_snapshot(snap: &Snapshot, segment_capacity: usize) -> Vec<u8> {
    let n_items_total: usize = snap
        .segments()
        .map(|s| s.database().baskets().map(<[ItemId]>::len).sum::<usize>())
        .sum();
    let mut out = Vec::with_capacity(36 + 4 * snap.n_baskets() + 4 * n_items_total);
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.extend_from_slice(&snap.epoch().to_le_bytes());
    out.extend_from_slice(&(snap.n_items() as u32).to_le_bytes());
    out.extend_from_slice(&(segment_capacity as u32).to_le_bytes());
    out.extend_from_slice(&(snap.n_baskets() as u64).to_le_bytes());
    for segment in snap.segments() {
        for basket in segment.database().baskets() {
            out.extend_from_slice(&(basket.len() as u32).to_le_bytes());
            for item in basket {
                out.extend_from_slice(&item.0.to_le_bytes());
            }
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// A decoded, validated checkpoint.
#[derive(Debug)]
pub struct CheckpointData {
    /// The store epoch the snapshot was taken at.
    pub epoch: u64,
    /// Every basket up to that epoch, in ingest order.
    pub baskets: Vec<Vec<ItemId>>,
}

/// Decodes and validates a checkpoint file.
///
/// Returns `None` — never panics, never a partial result — when the
/// bytes are not a checkpoint this store can restore: wrong magic or
/// version, failed CRC, a different item space or segment capacity, an
/// epoch/basket-count mismatch, an out-of-range item id, or trailing
/// garbage. Recovery treats `None` as "try the next-older candidate".
pub fn decode_checkpoint(
    bytes: &[u8],
    n_items: usize,
    segment_capacity: usize,
) -> Option<CheckpointData> {
    if bytes.len() < 36 || &bytes[..8] != CHECKPOINT_MAGIC {
        return None;
    }
    let body_end = bytes.len() - 4;
    let crc = u32::from_le_bytes(bytes[body_end..].try_into().ok()?);
    if crc32(&bytes[..body_end]) != crc {
        return None;
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let k = u32::from_le_bytes(bytes[16..20].try_into().ok()?);
    let cap = u32::from_le_bytes(bytes[20..24].try_into().ok()?);
    let n = u64::from_le_bytes(bytes[24..32].try_into().ok()?);
    if k as usize != n_items || cap as usize != segment_capacity || n != epoch {
        return None;
    }
    let body = &bytes[32..body_end];
    let mut pos = 0usize;
    // Capacity hints are clamped by the body size so a corrupt count
    // that slipped past the CRC cannot drive a huge allocation.
    let cap_bound = body.len() / 4;
    let mut baskets = Vec::with_capacity(usize::try_from(n).ok()?.min(cap_bound));
    for _ in 0..n {
        let m = u32::from_le_bytes(body.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let mut basket = Vec::with_capacity(m.min(cap_bound));
        for _ in 0..m {
            let id = u32::from_le_bytes(body.get(pos..pos + 4)?.try_into().ok()?);
            pos += 4;
            if id as usize >= n_items {
                return None;
            }
            basket.push(ItemId(id));
        }
        baskets.push(basket);
    }
    if pos != body.len() {
        return None;
    }
    Some(CheckpointData { epoch, baskets })
}

/// Serializes the manifest: checkpoint epochs, ascending.
pub fn encode_manifest(epochs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 8 * epochs.len());
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&(epochs.len() as u32).to_le_bytes());
    for &epoch in epochs {
        out.extend_from_slice(&epoch.to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes and validates the manifest; `None` on any damage (recovery
/// then falls back to scanning the directory for snapshot files).
pub fn decode_manifest(bytes: &[u8]) -> Option<Vec<u64>> {
    if bytes.len() < 16 || &bytes[..8] != MANIFEST_MAGIC {
        return None;
    }
    let body_end = bytes.len() - 4;
    let crc = u32::from_le_bytes(bytes[body_end..].try_into().ok()?);
    if crc32(&bytes[..body_end]) != crc {
        return None;
    }
    let n = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
    let body = &bytes[12..body_end];
    if body.len() != 8 * n {
        return None;
    }
    let epochs: Vec<u64> = body
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    if epochs.windows(2).any(|w| w[0] >= w[1]) {
        return None; // must be strictly ascending
    }
    Some(epochs)
}

/// Writes `bytes` as `name` atomically: create `name.tmp`, write, fsync
/// the file, rename over `name`, fsync the directory. On error a stray
/// temp file may remain; the caller (and recovery) deletes `*.tmp`
/// leftovers best-effort.
///
/// # Errors
///
/// Propagates the first failing step; `name` is then either absent, the
/// old file, or (only after every step succeeded) the new bytes.
pub fn write_atomic(dir: &mut dyn Dir, name: &str, bytes: &[u8]) -> io::Result<()> {
    let tmp = format!("{name}{TMP_SUFFIX}");
    let result = (|| {
        let mut file = dir.create(&tmp)?;
        file.append(bytes)?;
        file.sync()?;
        dir.rename(&tmp, name)?;
        dir.sync()
    })();
    if result.is_err() {
        // Best effort: the stray temp is harmless (recovery deletes it),
        // but tidy up when the media still lets us.
        let _ = dir.delete(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{IncrementalStore, StoreConfig};
    use crate::storage::MemDir;
    use crate::Itemset;

    fn store_with(n: u64) -> IncrementalStore {
        let store = IncrementalStore::new(
            8,
            StoreConfig {
                segment_capacity: 4,
            },
        );
        for i in 0..n {
            store
                .append_ids([(i % 8) as u32, ((i + 3) % 8) as u32])
                .unwrap();
        }
        store
    }

    #[test]
    fn checkpoint_names_round_trip() {
        assert_eq!(checkpoint_name(17), "ckpt.00000000000000000017");
        assert_eq!(parse_checkpoint_name("ckpt.00000000000000000017"), Some(17));
        assert_eq!(
            parse_checkpoint_name(&checkpoint_name(u64::MAX)),
            Some(u64::MAX)
        );
        assert_eq!(parse_checkpoint_name("ckpt.17"), None, "unpadded");
        assert_eq!(parse_checkpoint_name("wal.000001"), None);
        assert_eq!(parse_checkpoint_name("ckpt.0000000000000000001x"), None);
        assert_eq!(parse_checkpoint_name("ckpt.00000000000000000017.tmp"), None);
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let store = store_with(11);
        let snap = store.snapshot();
        let bytes = encode_snapshot(&snap, 4);
        let data = decode_checkpoint(&bytes, 8, 4).expect("valid checkpoint");
        assert_eq!(data.epoch, 11);
        assert_eq!(data.baskets.len(), 11);

        // Restoring by re-append reproduces the exact segment structure.
        let restored = IncrementalStore::new(
            8,
            StoreConfig {
                segment_capacity: 4,
            },
        );
        restored.append_batch(data.baskets).unwrap();
        let rsnap = restored.snapshot();
        assert_eq!(rsnap.epoch(), snap.epoch());
        assert_eq!(rsnap.sealed_segments().len(), snap.sealed_segments().len());
        for (a, b) in rsnap.sealed_segments().iter().zip(snap.sealed_segments()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.len(), b.len());
        }
        for i in 0..8u32 {
            let set = Itemset::from_ids([i]);
            assert_eq!(rsnap.support(set.items()), snap.support(set.items()));
        }
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let store = store_with(0);
        let bytes = encode_snapshot(&store.snapshot(), 4);
        let data = decode_checkpoint(&bytes, 8, 4).expect("valid");
        assert_eq!(data.epoch, 0);
        assert!(data.baskets.is_empty());
    }

    #[test]
    fn damaged_checkpoints_are_rejected() {
        let store = store_with(6);
        let bytes = encode_snapshot(&store.snapshot(), 4);
        assert!(decode_checkpoint(&bytes, 8, 4).is_some(), "baseline valid");

        // Any single bit flip fails the CRC (or the magic check).
        for idx in [0usize, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[idx] ^= 0x40;
            assert!(
                decode_checkpoint(&bad, 8, 4).is_none(),
                "flip at {idx} must invalidate"
            );
        }
        // Truncation fails.
        assert!(decode_checkpoint(&bytes[..bytes.len() - 5], 8, 4).is_none());
        assert!(decode_checkpoint(&bytes[..10], 8, 4).is_none());
        assert!(decode_checkpoint(b"", 8, 4).is_none());
        // Mismatched geometry fails even with an intact CRC.
        assert!(decode_checkpoint(&bytes, 9, 4).is_none(), "item space");
        assert!(decode_checkpoint(&bytes, 8, 5).is_none(), "capacity");
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        let epochs = vec![100, 250, 4096];
        let bytes = encode_manifest(&epochs);
        assert_eq!(decode_manifest(&bytes), Some(epochs));
        assert_eq!(decode_manifest(&encode_manifest(&[])), Some(vec![]));

        let mut bad = encode_manifest(&[1, 2]);
        bad[10] ^= 0x01;
        assert!(decode_manifest(&bad).is_none(), "bit flip");
        let good = encode_manifest(&[1, 2]);
        assert!(decode_manifest(&good[..good.len() - 2]).is_none(), "torn");
        assert!(decode_manifest(b"BMBMAN1\n").is_none(), "header only");
        // Non-ascending epochs are structural damage.
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&2u32.to_le_bytes());
        out.extend_from_slice(&5u64.to_le_bytes());
        out.extend_from_slice(&5u64.to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        assert!(decode_manifest(&out).is_none());
    }

    #[test]
    fn write_atomic_replaces_and_cleans_temp() {
        let mut dir = MemDir::new();
        write_atomic(&mut dir, "f", b"one").unwrap();
        assert_eq!(dir.open("f").unwrap().read_all().unwrap(), b"one");
        write_atomic(&mut dir, "f", b"two").unwrap();
        assert_eq!(dir.open("f").unwrap().read_all().unwrap(), b"two");
        let names = dir.list().unwrap();
        assert_eq!(names, vec!["f".to_string()], "no stray temp: {names:?}");
    }

    #[test]
    fn write_atomic_failure_leaves_old_file_intact() {
        use crate::storage::{DirFaultPlan, FaultDir};
        let mut dir = FaultDir::new(DirFaultPlan {
            fail_rename_at: Some(1), // the *second* atomic write fails
            ..DirFaultPlan::default()
        });
        write_atomic(&mut dir, "f", b"old").unwrap();
        assert!(write_atomic(&mut dir, "f", b"new").is_err());
        assert_eq!(
            dir.open("f").unwrap().read_all().unwrap(),
            b"old",
            "failed rename must not damage the target"
        );
        assert_eq!(dir.list().unwrap(), vec!["f".to_string()], "temp cleaned");
    }
}

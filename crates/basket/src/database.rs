//! The basket database: the paper's `B = {b_1, ..., b_n}`.
//!
//! A [`BasketDatabase`] is an ordered collection of baskets over a fixed item
//! space of `k` items. Baskets are stored horizontally (sorted item lists);
//! vertical bitmap access is provided by [`crate::bitmap::BitmapIndex`].

use crate::item::{ItemCatalog, ItemId};
use crate::itemset::Itemset;

/// A database of baskets over items `0..n_items`.
///
/// # Examples
///
/// ```
/// use bmb_basket::BasketDatabase;
///
/// let db = BasketDatabase::from_id_baskets(3, vec![vec![0, 1], vec![2], vec![0, 1, 2]]);
/// assert_eq!(db.len(), 3);
/// assert_eq!(db.n_items(), 3);
/// assert_eq!(db.item_count(bmb_basket::ItemId(0)), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BasketDatabase {
    n_items: usize,
    baskets: Vec<Box<[ItemId]>>,
    /// `O(i)` for every item, maintained incrementally on insertion.
    item_counts: Vec<u64>,
    /// Optional names for items; empty when the workload is purely numeric.
    catalog: Option<ItemCatalog>,
}

impl BasketDatabase {
    /// An empty database over an item space of `n_items` items.
    pub fn new(n_items: usize) -> Self {
        BasketDatabase {
            n_items,
            baskets: Vec::new(),
            item_counts: vec![0; n_items],
            catalog: None,
        }
    }

    /// Builds a database from raw `u32` item-id baskets.
    ///
    /// Baskets are sorted and deduplicated. Item ids must be `< n_items`.
    ///
    /// # Panics
    ///
    /// Panics if any basket mentions an item `>= n_items`.
    pub fn from_id_baskets(n_items: usize, baskets: Vec<Vec<u32>>) -> Self {
        let mut db = Self::new(n_items);
        for b in baskets {
            db.push_basket(b.into_iter().map(ItemId));
        }
        db
    }

    /// Builds a database of named baskets, interning names into a catalog.
    pub fn from_named_baskets<I, B, S>(baskets: I) -> Self
    where
        I: IntoIterator<Item = B>,
        B: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut catalog = ItemCatalog::new();
        let id_baskets: Vec<Vec<ItemId>> = baskets
            .into_iter()
            .map(|b| b.into_iter().map(|s| catalog.intern(s)).collect())
            .collect();
        let mut db = Self::new(catalog.len());
        db.catalog = Some(catalog);
        for b in id_baskets {
            db.push_basket(b);
        }
        db
    }

    /// Appends one basket; the items are sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if any item id is `>= n_items`.
    pub fn push_basket<I: IntoIterator<Item = ItemId>>(&mut self, items: I) {
        let mut v: Vec<ItemId> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        for &item in &v {
            assert!(
                item.index() < self.n_items,
                "item {item} out of range for item space of {} items",
                self.n_items
            );
            self.item_counts[item.index()] += 1;
        }
        self.baskets.push(v.into_boxed_slice());
    }

    /// Attaches a name catalog (e.g. after loading numeric data).
    ///
    /// # Panics
    ///
    /// Panics if the catalog covers fewer items than the item space.
    pub fn set_catalog(&mut self, catalog: ItemCatalog) {
        assert!(
            catalog.len() >= self.n_items,
            "catalog has {} names but the item space has {} items",
            catalog.len(),
            self.n_items
        );
        self.catalog = Some(catalog);
    }

    /// The attached name catalog, if any.
    pub fn catalog(&self) -> Option<&ItemCatalog> {
        self.catalog.as_ref()
    }

    /// `n`: the number of baskets.
    pub fn len(&self) -> usize {
        self.baskets.len()
    }

    /// Whether the database holds no baskets.
    pub fn is_empty(&self) -> bool {
        self.baskets.is_empty()
    }

    /// `k`: the size of the item space.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The basket at `index` as a sorted item slice.
    pub fn basket(&self, index: usize) -> &[ItemId] {
        &self.baskets[index]
    }

    /// Iterates all baskets in insertion order.
    pub fn baskets(&self) -> impl Iterator<Item = &[ItemId]> {
        self.baskets.iter().map(|b| &**b)
    }

    /// `O(i)`: the number of baskets containing item `i`.
    pub fn item_count(&self, item: ItemId) -> u64 {
        self.item_counts[item.index()]
    }

    /// All per-item counts, indexed by item id.
    pub fn item_counts(&self) -> &[u64] {
        &self.item_counts
    }

    /// The observed marginal probability `O(i)/n`.
    ///
    /// Returns 0 for an empty database.
    pub fn item_frequency(&self, item: ItemId) -> f64 {
        if self.baskets.is_empty() {
            0.0
        } else {
            self.item_count(item) as f64 / self.baskets.len() as f64
        }
    }

    /// Whether basket `index` contains every item of `set` (merge walk).
    pub fn basket_contains(&self, index: usize, set: &Itemset) -> bool {
        let basket = &self.baskets[index];
        let mut bi = 0;
        'outer: for &want in set.items() {
            while bi < basket.len() {
                match basket[bi].cmp(&want) {
                    std::cmp::Ordering::Less => bi += 1,
                    std::cmp::Ordering::Equal => {
                        bi += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Mean basket size.
    pub fn mean_basket_len(&self) -> f64 {
        if self.baskets.is_empty() {
            return 0.0;
        }
        let total: usize = self.baskets.iter().map(|b| b.len()).sum();
        total as f64 / self.baskets.len() as f64
    }

    /// Renders an itemset using the catalog when available, ids otherwise.
    pub fn describe(&self, set: &Itemset) -> String {
        match &self.catalog {
            Some(catalog) => {
                let names: Vec<&str> = set
                    .items()
                    .iter()
                    .map(|&i| catalog.name(i).unwrap_or("?"))
                    .collect();
                format!("{{{}}}", names.join(", "))
            }
            None => set.to_string(),
        }
    }

    /// Returns a new database containing only the items for which `keep`
    /// returns true, renumbering the survivors densely and dropping the rest
    /// from every basket. The returned mapping gives, for every new id, the
    /// old id it came from.
    ///
    /// This is the document-frequency pruning step the paper applies to the
    /// newsgroup corpus ("we pruned all words occurring in less than 10% of
    /// the documents").
    pub fn filter_items<F: FnMut(ItemId, u64) -> bool>(
        &self,
        mut keep: F,
    ) -> (BasketDatabase, Vec<ItemId>) {
        let mut old_of_new: Vec<ItemId> = Vec::new();
        let mut new_of_old: Vec<Option<ItemId>> = vec![None; self.n_items];
        for (old, slot) in new_of_old.iter_mut().enumerate() {
            let old_id = ItemId(old as u32);
            if keep(old_id, self.item_counts[old]) {
                *slot = Some(ItemId(old_of_new.len() as u32));
                old_of_new.push(old_id);
            }
        }
        let mut db = BasketDatabase::new(old_of_new.len());
        if let Some(catalog) = &self.catalog {
            let names: Vec<String> = old_of_new
                .iter()
                .map(|&old| catalog.name(old).unwrap_or("?").to_string())
                .collect();
            db.catalog = Some(ItemCatalog::from_names(names));
        }
        for basket in self.baskets() {
            db.push_basket(basket.iter().filter_map(|&it| new_of_old[it.index()]));
        }
        (db, old_of_new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BasketDatabase {
        BasketDatabase::from_id_baskets(
            4,
            vec![vec![0, 1, 2], vec![1, 2], vec![0], vec![], vec![2, 3]],
        )
    }

    #[test]
    fn counts_and_sizes() {
        let db = toy();
        assert_eq!(db.len(), 5);
        assert_eq!(db.n_items(), 4);
        assert_eq!(db.item_count(ItemId(0)), 2);
        assert_eq!(db.item_count(ItemId(1)), 2);
        assert_eq!(db.item_count(ItemId(2)), 3);
        assert_eq!(db.item_count(ItemId(3)), 1);
        assert!((db.mean_basket_len() - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn frequencies() {
        let db = toy();
        assert!((db.item_frequency(ItemId(2)) - 0.6).abs() < 1e-12);
        assert_eq!(BasketDatabase::new(2).item_frequency(ItemId(0)), 0.0);
    }

    #[test]
    fn push_sorts_and_dedups() {
        let mut db = BasketDatabase::new(5);
        db.push_basket([ItemId(3), ItemId(1), ItemId(3)]);
        assert_eq!(db.basket(0), &[ItemId(1), ItemId(3)]);
        assert_eq!(db.item_count(ItemId(3)), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_item_panics() {
        let mut db = BasketDatabase::new(2);
        db.push_basket([ItemId(2)]);
    }

    #[test]
    fn basket_contains_merge_walk() {
        let db = toy();
        assert!(db.basket_contains(0, &Itemset::from_ids([0, 2])));
        assert!(db.basket_contains(0, &Itemset::empty()));
        assert!(!db.basket_contains(1, &Itemset::from_ids([0])));
        assert!(!db.basket_contains(3, &Itemset::from_ids([0])));
    }

    #[test]
    fn named_baskets_round_trip() {
        let db = BasketDatabase::from_named_baskets(vec![vec!["tea", "coffee"], vec!["coffee"]]);
        let catalog = db.catalog().unwrap();
        let tea = catalog.get("tea").unwrap();
        let coffee = catalog.get("coffee").unwrap();
        assert_eq!(db.item_count(tea), 1);
        assert_eq!(db.item_count(coffee), 2);
        assert_eq!(
            db.describe(&Itemset::from_items([tea, coffee])),
            "{tea, coffee}"
        );
    }

    #[test]
    fn filter_items_renumbers() {
        let db = toy();
        // Keep only items occurring in >= 2 baskets: items 0, 1, 2.
        let (filtered, mapping) = db.filter_items(|_, count| count >= 2);
        assert_eq!(filtered.n_items(), 3);
        assert_eq!(mapping, vec![ItemId(0), ItemId(1), ItemId(2)]);
        assert_eq!(filtered.len(), db.len());
        // Basket {2,3} loses item 3.
        assert_eq!(filtered.basket(4), &[ItemId(2)]);
        assert_eq!(filtered.item_count(ItemId(2)), 3);
    }

    #[test]
    fn filter_items_preserves_names() {
        let db = BasketDatabase::from_named_baskets(vec![vec!["a", "b"], vec!["a"]]);
        let (filtered, _) = db.filter_items(|_, count| count >= 2);
        assert_eq!(filtered.n_items(), 1);
        assert_eq!(filtered.catalog().unwrap().name(ItemId(0)), Some("a"));
    }
}

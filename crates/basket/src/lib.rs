//! # bmb-basket — generalized basket data
//!
//! Data-model substrate for the *Beyond Market Baskets* reproduction
//! (Brin, Motwani & Silverstein, SIGMOD 1997). A "generalized basket" is any
//! collection of subsets drawn from an item space: register transactions,
//! text documents over a vocabulary, or binarized census records.
//!
//! The crate provides:
//!
//! * [`ItemId`] / [`ItemCatalog`] — dense item identifiers with optional
//!   name interning;
//! * [`Itemset`] — canonical sorted itemsets with the subset machinery the
//!   lattice algorithms need;
//! * [`BasketDatabase`] — the paper's `B`, with per-item counts maintained
//!   online;
//! * [`Bitmap`] / [`BitmapIndex`] — a vertical representation for fast
//!   cell counting;
//! * [`ScanCounter`] / [`BitmapCounter`] — interchangeable support-counting
//!   strategies behind the [`SupportCounter`] trait;
//! * [`ContingencyTable`] / [`SparseContingencyTable`] — dense and
//!   occupied-cells-only presence/absence tables;
//! * [`categorical`] — the multinomial (non-binary) extension;
//! * [`io`] — a plain-text basket interchange format;
//! * [`segment`] — append-only ingest with sealed segments and epoch
//!   snapshots, the substrate of the serving layer;
//! * [`storage`] — pluggable byte-log backends (real file, in-memory,
//!   deterministic fault injection);
//! * [`wal`] — a checksummed write-ahead log and [`DurableStore`], the
//!   crash-safe wrapper around [`IncrementalStore`].

#![warn(missing_docs)]

/// Fixed-width bitmaps and the vertical (per-item) basket index.
pub mod bitmap;
/// Multinomial (non-binary) attributes generalized from presence/absence.
pub mod categorical;
/// Checkpoint snapshots and the checkpoint manifest (bounded recovery).
pub mod checkpoint;
/// Dense and sparse presence/absence contingency tables.
pub mod contingency;
/// Interchangeable support-counting strategies (scan vs bitmap).
pub mod counts;
/// The basket database `B` with online per-item counts.
pub mod database;
/// Plain-text basket interchange format (read/write).
pub mod io;
/// Dense item identifiers and optional name interning.
pub mod item;
/// Canonical sorted itemsets and subset enumeration.
pub mod itemset;
/// Background integrity scrubbing: verify, quarantine, repair.
pub mod scrub;
/// Append-only ingest with sealed segments and epoch snapshots.
pub mod segment;
/// Pluggable byte-log backends: real file, in-memory, fault injection.
pub mod storage;
/// Checksummed write-ahead log and the crash-safe [`DurableStore`].
pub mod wal;

pub use bitmap::{Bitmap, BitmapIndex};
pub use checkpoint::{checkpoint_name, parse_checkpoint_name, MANIFEST_NAME};
pub use contingency::{
    cell_mask_of, CellMask, ContingencyTable, SparseContingencyTable, MAX_DENSE_DIMS,
};
pub use counts::{BitmapCounter, ScanCounter, SupportCounter};
pub use database::BasketDatabase;
pub use item::{ItemCatalog, ItemId};
pub use itemset::Itemset;
pub use scrub::{
    fsck_dir, quarantine_name, segment_digests, verify_checkpoint_bytes, verify_generation_bytes,
    verify_manifest_bytes, FsckFinding, FsckReport, PeerError, RepairPeer, ScrubOptions,
    ScrubReport, SegmentDigest, QUARANTINE_PREFIX,
};
pub use segment::{IncrementalStore, ItemOutOfRange, Segment, Snapshot, StoreConfig};
pub use storage::{
    Dir, DirFaultPlan, FaultDir, FaultPlan, FaultStorage, FileStorage, FsDir, MemDir, MemStorage,
    Storage,
};
pub use wal::{
    inspect_wal_bytes, CheckpointError, CheckpointStats, DurabilityConfig, DurableError,
    DurableStore, InspectedRecord, RecoveryReport, ShipBatch, ShipSource, WalError, WalInspection,
    GEN_NAME,
};

//! # bmb-basket — generalized basket data
//!
//! Data-model substrate for the *Beyond Market Baskets* reproduction
//! (Brin, Motwani & Silverstein, SIGMOD 1997). A "generalized basket" is any
//! collection of subsets drawn from an item space: register transactions,
//! text documents over a vocabulary, or binarized census records.
//!
//! The crate provides:
//!
//! * [`ItemId`] / [`ItemCatalog`] — dense item identifiers with optional
//!   name interning;
//! * [`Itemset`] — canonical sorted itemsets with the subset machinery the
//!   lattice algorithms need;
//! * [`BasketDatabase`] — the paper's `B`, with per-item counts maintained
//!   online;
//! * [`Bitmap`] / [`BitmapIndex`] — a vertical representation for fast
//!   cell counting;
//! * [`ScanCounter`] / [`BitmapCounter`] — interchangeable support-counting
//!   strategies behind the [`SupportCounter`] trait;
//! * [`ContingencyTable`] / [`SparseContingencyTable`] — dense and
//!   occupied-cells-only presence/absence tables;
//! * [`categorical`] — the multinomial (non-binary) extension;
//! * [`io`] — a plain-text basket interchange format;
//! * [`segment`] — append-only ingest with sealed segments and epoch
//!   snapshots, the substrate of the serving layer.

#![warn(missing_docs)]

pub mod bitmap;
pub mod categorical;
pub mod contingency;
pub mod counts;
pub mod database;
pub mod io;
pub mod item;
pub mod itemset;
pub mod segment;

pub use bitmap::{Bitmap, BitmapIndex};
pub use contingency::{
    cell_mask_of, CellMask, ContingencyTable, SparseContingencyTable, MAX_DENSE_DIMS,
};
pub use counts::{BitmapCounter, ScanCounter, SupportCounter};
pub use database::BasketDatabase;
pub use item::{ItemCatalog, ItemId};
pub use itemset::Itemset;
pub use segment::{IncrementalStore, ItemOutOfRange, Segment, Snapshot, StoreConfig};

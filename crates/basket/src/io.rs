//! Reading and writing the plain-text basket format.
//!
//! The `.baskets` format is one basket per line, whitespace-separated item
//! tokens. Lines starting with `#` are comments; blank lines are *empty
//! baskets* (a basket with no items is meaningful — it contributes to the
//! all-absent contingency cell), so comments must be used for annotations.
//!
//! ```text
//! # groceries
//! tea coffee
//! coffee
//!
//! coffee doughnut
//! ```

use std::fmt;
use std::io::{BufRead, Write};

use crate::database::BasketDatabase;

/// Errors from parsing or serializing basket files.
#[derive(Debug)]
pub enum IoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A numeric basket file contained a non-numeric or out-of-range token.
    BadToken {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::BadToken { line, token } => {
                write!(f, "line {line}: bad item token {token:?}")
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::BadToken { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a named-item basket file, interning item names into a catalog.
pub fn read_named<R: BufRead>(reader: R) -> Result<BasketDatabase, IoError> {
    let mut baskets: Vec<Vec<String>> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        baskets.push(trimmed.split_whitespace().map(str::to_string).collect());
    }
    Ok(BasketDatabase::from_named_baskets(baskets))
}

/// Reads a numeric basket file where tokens are item ids in `0..n_items`.
///
/// The item space is sized to the largest id seen (or 0 for an empty file).
pub fn read_numeric<R: BufRead>(reader: R) -> Result<BasketDatabase, IoError> {
    let mut baskets: Vec<Vec<u32>> = Vec::new();
    let mut max_id: Option<u32> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        let mut basket = Vec::new();
        for token in trimmed.split_whitespace() {
            let id: u32 = token.parse().map_err(|_| IoError::BadToken {
                line: lineno + 1,
                token: token.to_string(),
            })?;
            max_id = Some(max_id.map_or(id, |m| m.max(id)));
            basket.push(id);
        }
        baskets.push(basket);
    }
    let n_items = max_id.map_or(0, |m| m as usize + 1);
    Ok(BasketDatabase::from_id_baskets(n_items, baskets))
}

/// Writes a database in the plain-text format. Named output is used when a
/// catalog is attached, numeric ids otherwise.
pub fn write<W: Write>(db: &BasketDatabase, mut writer: W) -> Result<(), IoError> {
    for basket in db.baskets() {
        let mut first = true;
        for &item in basket {
            if !first {
                write!(writer, " ")?;
            }
            match db.catalog().and_then(|c| c.name(item)) {
                Some(name) => write!(writer, "{name}")?,
                None => write!(writer, "{}", item.0)?,
            }
            first = false;
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemId;

    #[test]
    fn read_named_interns_and_counts() {
        let text = "# a comment\ntea coffee\ncoffee\n\ncoffee doughnut\n";
        let db = read_named(text.as_bytes()).unwrap();
        assert_eq!(db.len(), 4); // the blank line is an empty basket
        let coffee = db.catalog().unwrap().get("coffee").unwrap();
        assert_eq!(db.item_count(coffee), 3);
    }

    #[test]
    fn read_numeric_sizes_item_space() {
        let db = read_numeric("0 2\n1\n".as_bytes()).unwrap();
        assert_eq!(db.n_items(), 3);
        assert_eq!(db.len(), 2);
        assert_eq!(db.item_count(ItemId(2)), 1);
    }

    #[test]
    fn read_numeric_rejects_garbage() {
        let err = read_numeric("0 banana\n".as_bytes()).unwrap_err();
        match err {
            IoError::BadToken { line, token } => {
                assert_eq!(line, 1);
                assert_eq!(token, "banana");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn write_read_round_trip_named() {
        let db = BasketDatabase::from_named_baskets(vec![vec!["a", "b"], vec![], vec!["b"]]);
        let mut buf = Vec::new();
        write(&db, &mut buf).unwrap();
        let back = read_named(buf.as_slice()).unwrap();
        assert_eq!(back.len(), db.len());
        let b = back.catalog().unwrap().get("b").unwrap();
        assert_eq!(back.item_count(b), 2);
    }

    #[test]
    fn write_read_round_trip_numeric() {
        let db = BasketDatabase::from_id_baskets(4, vec![vec![0, 3], vec![1], vec![]]);
        let mut buf = Vec::new();
        write(&db, &mut buf).unwrap();
        let back = read_numeric(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.item_count(ItemId(3)), 1);
    }

    #[test]
    fn empty_input_is_empty_database() {
        let db = read_numeric("".as_bytes()).unwrap();
        assert_eq!(db.len(), 0);
        assert_eq!(db.n_items(), 0);
    }
}

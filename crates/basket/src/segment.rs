//! Incremental basket ingest: sealed segments, a mutable tail, and
//! copy-on-write snapshots.
//!
//! The batch pipeline assumes a static [`BasketDatabase`]; a long-running
//! correlation service cannot afford to rebuild the vertical index on every
//! append. An [`IncrementalStore`] keeps ingested baskets in *sealed*
//! immutable [`Segment`]s — each carrying its own [`BitmapIndex`] and item
//! counts — plus a small mutable tail. Readers obtain an [`Arc`]-shared
//! [`Snapshot`] pinned to an *epoch* (the number of baskets ingested when
//! the snapshot was taken); snapshots are immutable, so queries never block
//! ingest and never observe a torn database.
//!
//! Support counting over a snapshot sums per-segment bitmap counts, which
//! is exactly the count over the concatenated database: segments partition
//! the baskets, and `O(S)` is additive over any partition. Sealed segments
//! never change, so per-segment partial results can be cached across
//! epochs by higher layers (see `bmb-core`'s query engine).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::bitmap::BitmapIndex;
use crate::database::BasketDatabase;
use crate::item::ItemId;
use crate::itemset::Itemset;

/// Tuning knobs for an [`IncrementalStore`].
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Baskets accumulated in the mutable tail before it is sealed into an
    /// immutable segment. Larger segments mean fewer, bigger bitmap
    /// indexes; smaller segments seal (and become cacheable) sooner.
    pub segment_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_capacity: 4096,
        }
    }
}

impl StoreConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `segment_capacity` is zero.
    pub fn validate(&self) {
        assert!(
            self.segment_capacity > 0,
            "segment_capacity must be positive"
        );
    }
}

/// An immutable run of baskets with its vertical index.
///
/// Sealed segments are identified by a stable `id`; equal ids across
/// snapshots of the same store refer to identical contents, which is what
/// makes per-segment caching sound.
#[derive(Debug)]
pub struct Segment {
    id: u64,
    db: BasketDatabase,
    index: BitmapIndex,
}

impl Segment {
    /// Seals a database into an immutable segment, building its index.
    pub fn seal(id: u64, db: BasketDatabase) -> Self {
        let index = BitmapIndex::build(&db);
        Segment { id, db, index }
    }

    /// The segment's stable identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of baskets in the segment.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Whether the segment holds no baskets.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// The underlying (immutable) baskets.
    pub fn database(&self) -> &BasketDatabase {
        &self.db
    }

    /// The segment's vertical index.
    pub fn index(&self) -> &BitmapIndex {
        &self.index
    }

    /// `O(S)` within this segment.
    pub fn support(&self, items: &[ItemId]) -> u64 {
        self.index.support_count(items)
    }

    /// Baskets containing all of `present` and none of `absent`, within
    /// this segment.
    pub fn cell_count(&self, present: &[ItemId], absent: &[ItemId]) -> u64 {
        self.index.cell_count(present, absent)
    }
}

/// Error from appending a basket naming an item outside the store's item
/// space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ItemOutOfRange {
    /// The offending item.
    pub item: ItemId,
    /// The store's item-space size.
    pub n_items: usize,
}

impl std::fmt::Display for ItemOutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "item {} out of range for item space of {} items",
            self.item, self.n_items
        )
    }
}

impl std::error::Error for ItemOutOfRange {}

/// Writer-side state, guarded by one mutex.
#[derive(Debug)]
struct Inner {
    sealed: Vec<Arc<Segment>>,
    tail: BasketDatabase,
    /// Sealed copy of the current tail, reused by snapshots until the next
    /// append invalidates it.
    tail_cache: Option<Arc<Segment>>,
    next_segment_id: u64,
}

/// An append-only basket store with immutable snapshot handles.
///
/// # Examples
///
/// ```
/// use bmb_basket::{IncrementalStore, Itemset, StoreConfig};
///
/// let store = IncrementalStore::new(3, StoreConfig::default());
/// store.append_ids([0, 1]).unwrap();
/// store.append_ids([1, 2]).unwrap();
/// let snap = store.snapshot();
/// assert_eq!(snap.epoch(), 2);
/// assert_eq!(snap.support(Itemset::from_ids([1]).items()), 2);
/// // The snapshot is pinned: later ingest does not change it.
/// store.append_ids([1]).unwrap();
/// assert_eq!(snap.support(Itemset::from_ids([1]).items()), 2);
/// ```
#[derive(Debug)]
pub struct IncrementalStore {
    n_items: usize,
    config: StoreConfig,
    /// Total baskets ever ingested; the epoch of the *next* snapshot.
    epoch: AtomicU64,
    inner: Mutex<Inner>,
    /// The most recently built snapshot, swapped whole on rebuild.
    published: Mutex<Arc<Snapshot>>,
}

impl IncrementalStore {
    /// An empty store over an item space of `n_items` items.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(n_items: usize, config: StoreConfig) -> Self {
        config.validate();
        let empty = Arc::new(Snapshot {
            epoch: 0,
            n_items,
            n_baskets: 0,
            sealed: Vec::new(),
            tail: None,
        });
        IncrementalStore {
            n_items,
            config,
            epoch: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                sealed: Vec::new(),
                tail: BasketDatabase::new(n_items),
                tail_cache: None,
                next_segment_id: 0,
            }),
            published: Mutex::new(empty),
        }
    }

    /// Bulk-loads an existing database (e.g. a basket file) into a fresh
    /// store.
    pub fn from_database(db: &BasketDatabase, config: StoreConfig) -> Self {
        let store = IncrementalStore::new(db.n_items(), config);
        for basket in db.baskets() {
            // Items in an existing database are in range by construction.
            let _ = store.append(basket.iter().copied());
        }
        store
    }

    /// `k`: the size of the item space.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Total baskets ingested so far (the epoch a fresh snapshot would
    /// carry).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Appends one basket; items are sorted and deduplicated. Returns the
    /// store epoch after the append.
    ///
    /// # Errors
    ///
    /// Returns [`ItemOutOfRange`] (without ingesting anything) if any item
    /// is outside the item space.
    pub fn append<I: IntoIterator<Item = ItemId>>(&self, items: I) -> Result<u64, ItemOutOfRange> {
        self.append_batch(std::iter::once(items.into_iter().collect::<Vec<ItemId>>()))
    }

    /// Appends a basket of raw `u32` ids; convenient in tests.
    ///
    /// # Errors
    ///
    /// Returns [`ItemOutOfRange`] if any id is outside the item space.
    pub fn append_ids<I: IntoIterator<Item = u32>>(&self, ids: I) -> Result<u64, ItemOutOfRange> {
        self.append(ids.into_iter().map(ItemId))
    }

    /// Appends many baskets under a single writer lock. Returns the store
    /// epoch after the batch. Either the whole batch is ingested or — when
    /// some basket names an out-of-range item — none of it is.
    ///
    /// # Errors
    ///
    /// Returns [`ItemOutOfRange`] for the first offending item.
    pub fn append_batch<B, I>(&self, baskets: B) -> Result<u64, ItemOutOfRange>
    where
        B: IntoIterator<Item = I>,
        I: IntoIterator<Item = ItemId>,
    {
        // Validate outside the lock so a bad batch never blocks readers.
        let baskets: Vec<Vec<ItemId>> = baskets
            .into_iter()
            .map(|b| b.into_iter().collect())
            .collect();
        for basket in &baskets {
            for &item in basket {
                if item.index() >= self.n_items {
                    return Err(ItemOutOfRange {
                        item,
                        n_items: self.n_items,
                    });
                }
            }
        }
        let appended = baskets.len() as u64;
        let mut inner = lock(&self.inner);
        for basket in baskets {
            inner.tail.push_basket(basket);
            if inner.tail.len() >= self.config.segment_capacity {
                let full = std::mem::replace(&mut inner.tail, BasketDatabase::new(self.n_items));
                let id = inner.next_segment_id;
                inner.next_segment_id += 1;
                inner.sealed.push(Arc::new(Segment::seal(id, full)));
            }
        }
        inner.tail_cache = None;
        // The epoch moves only while the writer lock is held, so it stays
        // consistent with the sealed/tail state a snapshot builder sees.
        Ok(self.epoch.fetch_add(appended, Ordering::AcqRel) + appended)
    }

    /// A consistent, immutable view of everything ingested so far.
    ///
    /// Cheap when nothing changed since the last call (an `Arc` clone);
    /// otherwise the tail is sealed into a temporary segment (`O(tail)`)
    /// and the new snapshot is published for subsequent callers.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        let epoch = self.epoch();
        {
            let published = lock(&self.published);
            if published.epoch == epoch {
                return Arc::clone(&published);
            }
        }
        let snapshot = {
            let mut inner = lock(&self.inner);
            // Re-read under the writer lock: the store may have advanced
            // past the stale epoch observed above.
            let epoch = self.epoch();
            let tail = if inner.tail.is_empty() {
                None
            } else {
                match &inner.tail_cache {
                    Some(cached) => Some(Arc::clone(cached)),
                    None => {
                        // The tail copy is *not* a sealed segment: its id is
                        // reused across epochs, so it must never enter
                        // per-segment caches. `u64::MAX` marks it clearly.
                        let sealed = Arc::new(Segment::seal(u64::MAX, inner.tail.clone()));
                        inner.tail_cache = Some(Arc::clone(&sealed));
                        Some(sealed)
                    }
                }
            };
            let n_baskets = inner.sealed.iter().map(|s| s.len()).sum::<usize>() + inner.tail.len();
            Arc::new(Snapshot {
                epoch,
                n_items: self.n_items,
                n_baskets,
                sealed: inner.sealed.clone(),
                tail,
            })
        };
        let mut published = lock(&self.published);
        // Another reader may have published an even newer snapshot first;
        // keep whichever is further along.
        if snapshot.epoch >= published.epoch {
            *published = Arc::clone(&snapshot);
        }
        snapshot
    }
}

/// Acquires a mutex, recovering from poisoning: the protected state is
/// only ever mutated through panic-free code paths, so a poisoned lock
/// still holds consistent data.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// An immutable view of an [`IncrementalStore`] at one epoch.
///
/// All counting queries are answered by summing per-segment bitmap counts;
/// the result is bit-identical to the same query over the concatenated
/// [`BasketDatabase`] (see [`Snapshot::to_database`]).
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    n_items: usize,
    n_baskets: usize,
    sealed: Vec<Arc<Segment>>,
    tail: Option<Arc<Segment>>,
}

impl Snapshot {
    /// The number of baskets ingested when this snapshot was taken.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `k`: the size of the item space.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// `n`: the number of baskets visible to this snapshot.
    pub fn n_baskets(&self) -> usize {
        self.n_baskets
    }

    /// Whether the snapshot holds no baskets.
    pub fn is_empty(&self) -> bool {
        self.n_baskets == 0
    }

    /// The sealed (immutable, stable-id) segments, oldest first.
    pub fn sealed_segments(&self) -> &[Arc<Segment>] {
        &self.sealed
    }

    /// The sealed copy of the mutable tail, if it held any baskets.
    ///
    /// Its contents are valid only for this snapshot's epoch — results
    /// derived from it must not be cached under the segment's id.
    pub fn tail_segment(&self) -> Option<&Arc<Segment>> {
        self.tail.as_ref()
    }

    /// All segments, sealed then tail.
    pub fn segments(&self) -> impl Iterator<Item = &Arc<Segment>> {
        self.sealed.iter().chain(self.tail.iter())
    }

    /// `O(i)`: baskets containing item `i`.
    pub fn item_count(&self, item: ItemId) -> u64 {
        self.segments().map(|s| s.database().item_count(item)).sum()
    }

    /// `O(S)`: baskets containing every item of `items`.
    pub fn support(&self, items: &[ItemId]) -> u64 {
        self.segments().map(|s| s.support(items)).sum()
    }

    /// Baskets containing all of `present` and none of `absent`.
    pub fn cell_count(&self, present: &[ItemId], absent: &[ItemId]) -> u64 {
        self.segments().map(|s| s.cell_count(present, absent)).sum()
    }

    /// The full `2^m` contingency table of `set` at this epoch, assembled
    /// from per-segment supports by Möbius inversion — no cell-by-cell
    /// AND-NOT sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty or larger than
    /// [`crate::contingency::MAX_DENSE_DIMS`].
    pub fn contingency_table(&self, set: &Itemset) -> crate::contingency::ContingencyTable {
        let m = set.len();
        assert!(m > 0, "contingency table needs at least one item");
        assert!(
            m <= crate::contingency::MAX_DENSE_DIMS,
            "dense table limited to {} dimensions",
            crate::contingency::MAX_DENSE_DIMS
        );
        let items = set.items();
        let mut supp: Vec<i64> = vec![0; 1 << m];
        let mut subset: Vec<ItemId> = Vec::with_capacity(m);
        for mask in 0u32..(1 << m) {
            subset.clear();
            subset.extend((0..m).filter(|&j| mask & (1 << j) != 0).map(|j| items[j]));
            supp[mask as usize] = self.support(&subset) as i64;
        }
        for bit in 0..m {
            for mask in 0..(1u32 << m) {
                if mask & (1 << bit) == 0 {
                    supp[mask as usize] -= supp[(mask | (1 << bit)) as usize];
                }
            }
        }
        let counts: Vec<u64> = supp.into_iter().map(|c| c.max(0) as u64).collect();
        crate::contingency::ContingencyTable::from_counts(set.clone(), counts)
    }

    /// Exports the baskets appended at epochs `after..=upto` (i.e. with
    /// zero-based ingest indices `after..upto`), in ingest order.
    ///
    /// Basket `i` (zero-based) was acknowledged at epoch `i + 1`, so
    /// `baskets_range(e, f)` returns exactly the baskets a replica at
    /// epoch `e` needs to catch up to epoch `f`. Bounds are clamped to
    /// the snapshot, and an inverted range yields an empty vector. This
    /// is the replication fallback when the WAL segments covering the
    /// range have already been reclaimed by checkpoint retention.
    pub fn baskets_range(&self, after: u64, upto: u64) -> Vec<Vec<ItemId>> {
        let lo = after.min(self.n_baskets as u64) as usize;
        let hi = upto.min(self.n_baskets as u64) as usize;
        if lo >= hi {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(hi - lo);
        let mut base = 0usize;
        for segment in self.segments() {
            let len = segment.len();
            if base + len > lo && base < hi {
                let db = segment.database();
                let start = lo.saturating_sub(base);
                let end = len.min(hi - base);
                for index in start..end {
                    out.push(db.basket(index).to_vec());
                }
            }
            base += len;
            if base >= hi {
                break;
            }
        }
        out
    }

    /// Materializes the snapshot as one flat [`BasketDatabase`] (segment
    /// order, which is ingest order). This is the bridge to the batch
    /// pipeline: running the miner over the returned database gives the
    /// ground truth every snapshot query must match.
    pub fn to_database(&self) -> BasketDatabase {
        let mut db = BasketDatabase::new(self.n_items);
        for segment in self.segments() {
            for basket in segment.database().baskets() {
                db.push_basket(basket.iter().copied());
            }
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contingency::ContingencyTable;

    fn small_config() -> StoreConfig {
        StoreConfig {
            segment_capacity: 4,
        }
    }

    #[test]
    fn appends_roll_into_segments() {
        let store = IncrementalStore::new(5, small_config());
        for i in 0..10u32 {
            store.append_ids([i % 5, (i + 1) % 5]).unwrap();
        }
        let snap = store.snapshot();
        assert_eq!(snap.epoch(), 10);
        assert_eq!(snap.n_baskets(), 10);
        // 10 baskets at capacity 4: two sealed segments + a 2-basket tail.
        assert_eq!(snap.sealed_segments().len(), 2);
        assert_eq!(snap.tail_segment().map(|t| t.len()), Some(2));
        assert_eq!(snap.sealed_segments()[0].id(), 0);
        assert_eq!(snap.sealed_segments()[1].id(), 1);
    }

    #[test]
    fn baskets_range_slices_across_segment_boundaries() {
        let store = IncrementalStore::new(16, small_config());
        for i in 0..11u32 {
            store.append_ids([i, (i + 1) % 16]).unwrap();
        }
        let snap = store.snapshot();
        // Full range reproduces the flat database.
        let all = snap.baskets_range(0, snap.epoch());
        let flat = snap.to_database();
        assert_eq!(all.len(), flat.len());
        for (i, basket) in all.iter().enumerate() {
            assert_eq!(basket.as_slice(), flat.basket(i));
        }
        // A window straddling two sealed segments and the tail.
        let window = snap.baskets_range(3, 10);
        assert_eq!(window.len(), 7);
        for (offset, basket) in window.iter().enumerate() {
            assert_eq!(basket.as_slice(), flat.basket(3 + offset));
        }
        // Clamped and inverted ranges are safe.
        assert_eq!(snap.baskets_range(9, 100).len(), 2);
        assert!(snap.baskets_range(7, 7).is_empty());
        assert!(snap.baskets_range(8, 2).is_empty());
        assert!(snap.baskets_range(50, 60).is_empty());
    }

    #[test]
    fn snapshot_counts_match_flat_database() {
        let store = IncrementalStore::new(4, small_config());
        let baskets = [
            vec![0u32, 1, 2],
            vec![0, 1],
            vec![1, 2, 3],
            vec![0, 2],
            vec![],
            vec![3],
            vec![0, 1, 2, 3],
            vec![2, 3],
            vec![1],
        ];
        for b in &baskets {
            store.append_ids(b.iter().copied()).unwrap();
        }
        let snap = store.snapshot();
        let flat = snap.to_database();
        assert_eq!(flat.len(), baskets.len());
        for i in 0..4u32 {
            assert_eq!(snap.item_count(ItemId(i)), flat.item_count(ItemId(i)));
        }
        for a in 0..4u32 {
            for b in a + 1..4 {
                let set = Itemset::from_ids([a, b]);
                let index = BitmapIndex::build(&flat);
                assert_eq!(snap.support(set.items()), index.support_count(set.items()));
                assert_eq!(
                    snap.contingency_table(&set),
                    ContingencyTable::from_database(&flat, &set),
                    "table mismatch for {set}"
                );
            }
        }
    }

    #[test]
    fn snapshots_are_isolated_from_later_ingest() {
        let store = IncrementalStore::new(3, small_config());
        store.append_ids([0, 1]).unwrap();
        let before = store.snapshot();
        store.append_ids([0, 1]).unwrap();
        store.append_ids([2]).unwrap();
        let after = store.snapshot();
        assert_eq!(before.epoch(), 1);
        assert_eq!(after.epoch(), 3);
        assert_eq!(before.support(Itemset::from_ids([0, 1]).items()), 1);
        assert_eq!(after.support(Itemset::from_ids([0, 1]).items()), 2);
    }

    #[test]
    fn unchanged_store_republishes_the_same_snapshot() {
        let store = IncrementalStore::new(2, small_config());
        store.append_ids([0]).unwrap();
        let a = store.snapshot();
        let b = store.snapshot();
        assert!(Arc::ptr_eq(&a, &b), "snapshot must be reused while idle");
        store.append_ids([1]).unwrap();
        let c = store.snapshot();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn out_of_range_append_is_rejected_atomically() {
        let store = IncrementalStore::new(2, small_config());
        store.append_ids([0]).unwrap();
        let err = store
            .append_batch([vec![ItemId(1)], vec![ItemId(5)]])
            .unwrap_err();
        assert_eq!(err.item, ItemId(5));
        assert_eq!(err.n_items, 2);
        // Nothing from the failed batch landed.
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.snapshot().n_baskets(), 1);
    }

    #[test]
    fn bulk_load_matches_source_database() {
        let db = BasketDatabase::from_id_baskets(
            3,
            vec![vec![0, 1], vec![1, 2], vec![0], vec![], vec![0, 1, 2]],
        );
        let store = IncrementalStore::from_database(&db, small_config());
        let snap = store.snapshot();
        assert_eq!(snap.n_baskets(), db.len());
        for i in 0..3u32 {
            assert_eq!(snap.item_count(ItemId(i)), db.item_count(ItemId(i)));
        }
    }

    #[test]
    fn empty_snapshot_is_well_formed() {
        let store = IncrementalStore::new(3, StoreConfig::default());
        let snap = store.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.support(Itemset::from_ids([0]).items()), 0);
        assert_eq!(snap.to_database().len(), 0);
    }

    #[test]
    fn exact_capacity_boundary_seals_without_tail() {
        let store = IncrementalStore::new(2, small_config());
        for _ in 0..4 {
            store.append_ids([0]).unwrap();
        }
        let snap = store.snapshot();
        assert_eq!(snap.sealed_segments().len(), 1);
        assert!(snap.tail_segment().is_none());
        assert_eq!(snap.n_baskets(), 4);
    }
}

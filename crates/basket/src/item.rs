//! Item identifiers and the catalog mapping them to human-readable names.
//!
//! The paper works with an item space `I = {i_1, ..., i_k}`; items may be
//! retail products, dictionary words, or binarized census answers. We
//! represent an item as a dense `u32` index into an [`ItemCatalog`], which
//! interns names and hands out identifiers in insertion order.

use std::collections::HashMap;
use std::fmt;

/// A dense identifier for an item in an item space.
///
/// Identifiers are allocated contiguously from zero by [`ItemCatalog`], so
/// they can index per-item arrays (counts, bitmaps) directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The identifier as a `usize`, for indexing per-item arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

/// An interning catalog of item names.
///
/// Mirrors the paper's item space `I`: every distinct item gets a stable
/// [`ItemId`], and names can be looked up in both directions. The catalog is
/// optional — purely numeric workloads (e.g. Quest synthetic data) can skip
/// it entirely and mint `ItemId`s directly.
///
/// # Examples
///
/// ```
/// use bmb_basket::ItemCatalog;
///
/// let mut catalog = ItemCatalog::new();
/// let tea = catalog.intern("tea");
/// let coffee = catalog.intern("coffee");
/// assert_ne!(tea, coffee);
/// assert_eq!(catalog.intern("tea"), tea);
/// assert_eq!(catalog.name(tea), Some("tea"));
/// assert_eq!(catalog.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ItemCatalog {
    names: Vec<String>,
    by_name: HashMap<String, ItemId>,
}

impl ItemCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a catalog pre-populated with `names`, in order.
    ///
    /// Duplicate names collapse to the first occurrence's id.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut catalog = Self::new();
        for name in names {
            catalog.intern(name);
        }
        catalog
    }

    /// Returns the id for `name`, allocating a fresh one if unseen.
    pub fn intern<S: Into<String>>(&mut self, name: S) -> ItemId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        assert!(
            self.names.len() < u32::MAX as usize,
            "item catalog exceeded u32::MAX entries"
        );
        let id = ItemId(self.names.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        id
    }

    /// Looks up an already-interned name without allocating.
    pub fn get(&self, name: &str) -> Option<ItemId> {
        self.by_name.get(name).copied()
    }

    /// The name for `id`, if it was allocated by this catalog.
    pub fn name(&self, id: ItemId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of distinct items interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no items have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ItemId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut c = ItemCatalog::new();
        let a = c.intern("beer");
        let b = c.intern("beer");
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut c = ItemCatalog::new();
        for i in 0..100u32 {
            let id = c.intern(format!("item-{i}"));
            assert_eq!(id, ItemId(i));
        }
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn name_round_trip() {
        let c = ItemCatalog::from_names(["diapers", "beer", "cat food"]);
        for (id, name) in c.iter() {
            assert_eq!(c.get(name), Some(id));
            assert_eq!(c.name(id), Some(name));
        }
    }

    #[test]
    fn unknown_lookups_are_none() {
        let c = ItemCatalog::from_names(["x"]);
        assert_eq!(c.get("y"), None);
        assert_eq!(c.name(ItemId(5)), None);
    }

    #[test]
    fn from_names_collapses_duplicates() {
        let c = ItemCatalog::from_names(["a", "b", "a"]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a"), Some(ItemId(0)));
        assert_eq!(c.get("b"), Some(ItemId(1)));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ItemId(7).to_string(), "i7");
        assert_eq!(format!("{:?}", ItemId(7)), "i7");
    }
}

//! Support-counting strategies.
//!
//! The miner needs `O(S)` — the number of baskets containing every item of
//! `S` — and full contingency tables. Two interchangeable strategies are
//! provided:
//!
//! * [`ScanCounter`] walks the horizontal database once per query, the way
//!   the paper describes ("to construct the contingency table for a given
//!   itemset, we must make a pass over the entire database");
//! * [`BitmapCounter`] answers from a prebuilt vertical
//!   [`crate::bitmap::BitmapIndex`], trading one indexing pass
//!   and `k·n` bits of memory for constant-pass queries.
//!
//! Both are exercised against each other in tests and ablation benches.

use crate::bitmap::BitmapIndex;
use crate::database::BasketDatabase;
use crate::item::ItemId;
use crate::itemset::Itemset;

/// A source of support counts over a fixed database.
pub trait SupportCounter {
    /// `n`: the total number of baskets.
    fn n_baskets(&self) -> u64;

    /// `O(S)`: the number of baskets containing every item of `items`.
    fn support_count(&self, items: &[ItemId]) -> u64;

    /// Support of an [`Itemset`].
    fn itemset_support(&self, set: &Itemset) -> u64 {
        self.support_count(set.items())
    }

    /// Observed support fraction `O(S)/n` (0 for an empty database).
    fn support_fraction(&self, items: &[ItemId]) -> f64 {
        let n = self.n_baskets();
        if n == 0 {
            0.0
        } else {
            self.support_count(items) as f64 / n as f64
        }
    }
}

/// Counting by scanning the horizontal database on every query.
pub struct ScanCounter<'a> {
    db: &'a BasketDatabase,
}

impl<'a> ScanCounter<'a> {
    /// Wraps a database without any preprocessing.
    pub fn new(db: &'a BasketDatabase) -> Self {
        ScanCounter { db }
    }

    /// The underlying database.
    pub fn database(&self) -> &'a BasketDatabase {
        self.db
    }
}

impl SupportCounter for ScanCounter<'_> {
    fn n_baskets(&self) -> u64 {
        self.db.len() as u64
    }

    fn support_count(&self, items: &[ItemId]) -> u64 {
        if items.is_empty() {
            return self.db.len() as u64;
        }
        let probe = Itemset::from_items(items.iter().copied());
        (0..self.db.len())
            .filter(|&b| self.db.basket_contains(b, &probe))
            .count() as u64
    }
}

/// Counting from a vertical bitmap index.
pub struct BitmapCounter {
    index: BitmapIndex,
}

impl BitmapCounter {
    /// Builds the index in one pass over `db`.
    pub fn build(db: &BasketDatabase) -> Self {
        BitmapCounter {
            index: BitmapIndex::build(db),
        }
    }

    /// Wraps an existing index.
    pub fn from_index(index: BitmapIndex) -> Self {
        BitmapCounter { index }
    }

    /// The underlying bitmap index.
    pub fn index(&self) -> &BitmapIndex {
        &self.index
    }
}

impl SupportCounter for BitmapCounter {
    fn n_baskets(&self) -> u64 {
        self.index.n_baskets() as u64
    }

    fn support_count(&self, items: &[ItemId]) -> u64 {
        self.index.support_count(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> BasketDatabase {
        BasketDatabase::from_id_baskets(
            4,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![1, 2, 3],
                vec![0, 2],
                vec![],
                vec![3],
            ],
        )
    }

    #[test]
    fn scan_counts() {
        let db = db();
        let c = ScanCounter::new(&db);
        assert_eq!(c.n_baskets(), 6);
        assert_eq!(c.support_count(&[]), 6);
        assert_eq!(c.support_count(&[ItemId(0)]), 3);
        assert_eq!(c.support_count(&[ItemId(0), ItemId(1)]), 2);
        assert_eq!(c.support_count(&[ItemId(0), ItemId(3)]), 0);
    }

    #[test]
    fn bitmap_matches_scan_on_all_pairs() {
        let db = db();
        let scan = ScanCounter::new(&db);
        let bitmap = BitmapCounter::build(&db);
        for a in 0..4u32 {
            for b in 0..4u32 {
                let q = [ItemId(a), ItemId(b)];
                assert_eq!(
                    scan.support_count(&q),
                    bitmap.support_count(&q),
                    "mismatch for pair ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn support_fraction() {
        let db = db();
        let c = BitmapCounter::build(&db);
        assert!((c.support_fraction(&[ItemId(0)]) - 0.5).abs() < 1e-12);
        let empty = BasketDatabase::new(1);
        let c = ScanCounter::new(&empty);
        assert_eq!(c.support_fraction(&[ItemId(0)]), 0.0);
    }

    #[test]
    fn itemset_support_agrees_with_slice_query() {
        let db = db();
        let c = BitmapCounter::build(&db);
        let set = Itemset::from_ids([1, 2]);
        assert_eq!(c.itemset_support(&set), c.support_count(set.items()));
    }
}

//! Scalar random variates: exponential, normal, Poisson.
//!
//! `rand` (as configured in this workspace) gives uniform bits only, so the
//! classic transforms live here: inversion for the exponential, Marsaglia's
//! polar method for the normal, Knuth multiplication for small-mean Poisson
//! with a normal approximation fallback for large means.

use rand::Rng;

/// Samples `Exp(rate)` by inversion: `−ln(U)/rate`.
///
/// # Panics
///
/// Panics unless `rate > 0`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Samples a standard normal by Marsaglia's polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let x: f64 = rng.gen_range(-1.0..1.0);
        let y: f64 = rng.gen_range(-1.0..1.0);
        let s = x * x + y * y;
        if s > 0.0 && s < 1.0 {
            return x * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples `N(mean, sd²)`.
///
/// # Panics
///
/// Panics if `sd < 0`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    assert!(
        sd >= 0.0,
        "standard deviation must be non-negative, got {sd}"
    );
    mean + sd * standard_normal(rng)
}

/// Samples `Poisson(mean)`.
///
/// Knuth's product-of-uniforms method below mean 30; above that, the
/// rounded normal approximation `N(mean, mean)` clamped at zero (adequate
/// for workload generation, where the Quest paper itself assumes the
/// normal regime).
///
/// # Panics
///
/// Panics unless `mean` is finite and non-negative.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "Poisson mean must be >= 0, got {mean}"
    );
    // Degenerate distribution at the asserted lower edge.
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut product: f64 = rng.gen_range(0.0..1.0);
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen_range(0.0f64..1.0);
            count += 1;
        }
        count
    } else {
        let x = normal(rng, mean, mean.sqrt());
        x.round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xdead_beef)
    }

    fn mean_and_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn exponential_moments() {
        let mut rng = rng();
        let samples: Vec<f64> = (0..200_000).map(|_| exponential(&mut rng, 2.0)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn normal_moments() {
        let mut rng = rng();
        let samples: Vec<f64> = (0..200_000).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_tail_symmetry() {
        let mut rng = rng();
        let above = (0..100_000)
            .filter(|_| standard_normal(&mut rng) > 0.0)
            .count();
        assert!((above as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn poisson_small_mean_moments() {
        let mut rng = rng();
        let samples: Vec<f64> = (0..200_000)
            .map(|_| poisson(&mut rng, 4.0) as f64)
            .collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_regime() {
        let mut rng = rng();
        let samples: Vec<f64> = (0..100_000)
            .map(|_| poisson(&mut rng, 100.0) as f64)
            .collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        assert!((var - 100.0).abs() < 3.0, "var {var}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = rng();
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_exponential_rate() {
        exponential(&mut rng(), 0.0);
    }
}

//! Zipfian rank-frequency distributions.
//!
//! Natural-language word frequencies follow Zipf's law; the text-corpus
//! simulator uses this module to make its vocabulary realistic (the
//! paper's newsgroup experiment prunes at 10% document frequency, which
//! only bites on a heavy-tailed vocabulary).

use rand::Rng;

use crate::alias::AliasTable;

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P[rank = r] ∝ 1/(r+1)^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    table: AliasTable,
}

impl Zipf {
    /// Builds the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be >= 0, got {s}");
        let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
        Zipf {
            table: AliasTable::new(&weights),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether there are no ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Draws one rank in `0..n` (0 = most frequent).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.table.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_frequencies_decay_like_power_law() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0u64; 100];
        let n = 500_000;
        for _ in 0..n {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 over rank 9 should be ≈ 10 under s = 1.
        let ratio = counts[0] as f64 / counts[9] as f64;
        assert!((ratio - 10.0).abs() < 1.0, "ratio {ratio}");
        // Monotone-ish decay over well-sampled ranks.
        assert!(counts[0] > counts[4] && counts[4] > counts[20]);
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0u64; 10];
        for _ in 0..200_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 20_000.0 - 1.0).abs() < 0.05);
        }
    }

    #[test]
    fn heavier_exponent_concentrates_mass() {
        let mut rng = StdRng::seed_from_u64(17);
        let head_mass = |s: f64, rng: &mut StdRng| {
            let zipf = Zipf::new(1000, s);
            (0..100_000).filter(|_| zipf.sample(rng) < 10).count()
        };
        let light = head_mass(0.8, &mut rng);
        let heavy = head_mass(1.6, &mut rng);
        assert!(heavy > light);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_zipf_panics() {
        Zipf::new(0, 1.0);
    }
}

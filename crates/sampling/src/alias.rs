//! Walker's alias method for O(1) weighted sampling.
//!
//! The Quest generator draws "potentially large" itemsets by weight for
//! every transaction, and the text simulator draws words from Zipfian
//! vocabularies; both need constant-time categorical sampling from a fixed
//! weight vector, which the alias method provides after O(n) setup.

use rand::Rng;

/// A preprocessed categorical distribution over `0..len`.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability of the home index in each column.
    prob: Vec<f64>,
    /// Fallback index in each column.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "bad weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let n = weights.len();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0usize; n];
        // Scaled weights; "small" columns (< 1) get topped up by "large".
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = (0..n).filter(|&i| scaled[i] < 1.0).collect();
        let mut large: Vec<usize> = (0..n).filter(|&i| scaled[i] >= 1.0).collect();
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: all remaining columns saturate.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true — construction requires at
    /// least one weight).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let column = rng.gen_range(0..self.prob.len());
        if rng.gen_range(0.0..1.0) < self.prob[column] {
            column
        } else {
            self.alias[column]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 4];
        let n = 400_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / 10.0;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.005,
                "index {i}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = table.sample(&mut rng);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn single_category() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(table.sample(&mut rng), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn unnormalized_weights_are_fine() {
        let a = AliasTable::new(&[10.0, 30.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let ones = (0..100_000).filter(|_| a.sample(&mut rng) == 1).count();
        assert!((ones as f64 / 100_000.0 - 0.75).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "all be zero")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "bad weight")]
    fn negative_weight_panics() {
        AliasTable::new(&[1.0, -0.5]);
    }
}

//! # bmb-sampling — random-variate primitives
//!
//! The workspace pins `rand` to its uniform core, so the variates the
//! workload generators need are derived here from first principles:
//!
//! * [`dists`] — exponential (inversion), normal (Marsaglia polar),
//!   Poisson (Knuth product / normal regime);
//! * [`AliasTable`] — Walker's alias method for O(1) categorical draws;
//! * [`Zipf`] — rank-frequency power laws for vocabulary simulation.

#![warn(missing_docs)]

/// Walker's alias method for O(1) weighted sampling.
pub mod alias;
/// Scalar random variates: exponential, normal, Poisson.
pub mod dists;
/// Zipfian rank-frequency distributions.
pub mod zipf;

pub use alias::AliasTable;
pub use dists::{exponential, normal, poisson, standard_normal};
pub use zipf::Zipf;

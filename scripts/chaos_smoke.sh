#!/usr/bin/env bash
# Deterministic network-chaos smoke test: shard 0 sits behind the
# `bmb cluster chaos` fault proxy (fixed seed, zero random fault rates,
# partition driven over the control socket). Partitioning the primary
# must promote its follower at a bumped generation; healing must demote
# the old primary back to follower, which catches up over
# `replicate_pull` and then answers byte-for-byte identically to the
# new primary. The whole run is bounded well under a minute.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${BMB_BIN:-target/release/bmb}"
if [[ ! -x "$BIN" ]]; then
    echo "==> building bmb ($BIN not found)"
    cargo build --release -q -p bmb-cli
fi

SEED=20260809

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

# Polls a log for the address a role announced; the address is the
# first word after the marker (announcements may trail extras like
# "(generation 1)" or "(seed N)").
wait_addr() {
    local log="$1" marker="$2" addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n "s/^${marker} //p" "$log" | head -n 1 | awk '{print $1}')"
        [[ -n "$addr" ]] && { echo "$addr"; return 0; }
        sleep 0.1
    done
    echo "no '${marker}' line in $log" >&2
    cat "$log" >&2
    return 1
}

# Extracts one JSON field ("key":value, value up to the next , or })
# from the line on stdin; first match wins.
field() {
    grep -o "\"$1\":[^,}]*" | head -n 1
}

echo "==> starting 3 shards (shard 0 will sit behind the chaos proxy)"
SHARD_ADDRS=()
for i in 0 1 2; do
    "$BIN" cluster shard --dir "$WORK/s$i" --items 8 --addr 127.0.0.1:0 \
        --poll-ms 10 >"$WORK/s$i.log" &
    PIDS+=($!)
    disown
done
for i in 0 1 2; do
    SHARD_ADDRS+=("$(wait_addr "$WORK/s$i.log" "shard listening on")")
done
echo "    shards at ${SHARD_ADDRS[*]}"

echo "==> starting chaos proxy in front of shard 0 (seed $SEED)"
"$BIN" cluster chaos --listen 127.0.0.1:0 --upstream "${SHARD_ADDRS[0]}" \
    --control 127.0.0.1:0 --seed "$SEED" >"$WORK/chaos.log" &
PIDS+=($!)
disown
PROXY_ADDR="$(wait_addr "$WORK/chaos.log" "chaos proxy on")"
CTRL_ADDR="$(wait_addr "$WORK/chaos.log" "control on")"
echo "    proxy at $PROXY_ADDR, control at $CTRL_ADDR"

echo "==> starting follower (tailing shard 0 directly)"
"$BIN" cluster follow --dir "$WORK/f0" --items 8 \
    --primary "${SHARD_ADDRS[0]}" --poll-ms 10 --addr 127.0.0.1:0 \
    >"$WORK/f0.log" &
PIDS+=($!)
disown
FOLLOWER_ADDR="$(wait_addr "$WORK/f0.log" "follower listening on")"
echo "    follower at $FOLLOWER_ADDR"

echo "==> starting coordinator (shard 0 reached only through the proxy)"
"$BIN" cluster serve --items 8 \
    --shards "$PROXY_ADDR,${SHARD_ADDRS[1]},${SHARD_ADDRS[2]}" \
    --followers "$FOLLOWER_ADDR,," --round-robin --addr 127.0.0.1:0 \
    --request-timeout-ms 500 --probe-cooldown-ms 200 \
    >"$WORK/coord.log" &
PIDS+=($!)
disown
COORD_ADDR="$(wait_addr "$WORK/coord.log" "coordinator listening on")"
echo "    coordinator at $COORD_ADDR"

echo "==> ingest + baseline chi2 through the coordinator"
BEFORE="$("$BIN" query "$COORD_ADDR" \
    '{"id":1,"cmd":"ingest","baskets":[[0,1],[0,1],[2],[0,3],[0,1,2],[1,3]]}' \
    '{"id":2,"cmd":"chi2","items":[0,1]}')"
echo "$BEFORE"
grep -q '"epochs":\[2,2,2\]' <<<"$BEFORE" || { echo "unexpected epoch vector"; exit 1; }
STAT_BEFORE="$(field statistic <<<"$BEFORE")"
SUPPORT_BEFORE="$(field support <<<"$BEFORE")"
[[ -n "$STAT_BEFORE" ]] || { echo "no statistic in baseline"; exit 1; }

echo "==> waiting for the follower to catch up to shard 0"
for _ in $(seq 1 100); do
    FSTATS="$("$BIN" query "$FOLLOWER_ADDR" '{"cmd":"stats"}')"
    LAG="$(field replication_lag <<<"$FSTATS")"
    EPOCH="$(field epoch <<<"$FSTATS")"
    [[ "$LAG" == '"replication_lag":0' && "$EPOCH" != '"epoch":0' ]] && break
    sleep 0.1
done
[[ "$LAG" == '"replication_lag":0' ]] || { echo "follower never caught up ($LAG)"; exit 1; }
echo "    follower caught up ($EPOCH)"

echo "==> partitioning shard 0 behind the proxy"
"$BIN" query "$CTRL_ADDR" '{"id":1,"cmd":"partition"}' \
    | grep -q '"partitioned":true' || { echo "partition command failed"; exit 1; }

echo "==> reads must fail over to the follower at a bumped generation"
OK=""
for _ in $(seq 1 50); do
    AFTER="$("$BIN" query "$COORD_ADDR" '{"id":3,"cmd":"chi2","items":[0,1]}')"
    if grep -q '"ok":true' <<<"$AFTER"; then
        OK=1
        break
    fi
    grep -q '"retryable":true' <<<"$AFTER" \
        || { echo "non-retryable failure after partition: $AFTER"; exit 1; }
    sleep 0.2
done
[[ -n "$OK" ]] || { echo "coordinator never failed over"; exit 1; }
STAT_AFTER="$(field statistic <<<"$AFTER")"
[[ "$STAT_AFTER" == "$STAT_BEFORE" ]] \
    || { echo "WRONG ANSWER after failover: $STAT_AFTER != $STAT_BEFORE"; exit 1; }
[[ "$(field support <<<"$AFTER")" == "$SUPPORT_BEFORE" ]] \
    || { echo "support diverged after failover"; exit 1; }
echo "$AFTER"

STATS="$("$BIN" query "$COORD_ADDR" '{"cmd":"stats"}')"
grep -q '"promoted":true' <<<"$STATS" || { echo "no promotion in stats: $STATS"; exit 1; }
grep -q '"generation":2' <<<"$STATS" \
    || { echo "promotion did not bump the generation: $STATS"; exit 1; }
grep -q '"promotions":1' <<<"$STATS" || { echo "no promotion counted: $STATS"; exit 1; }
echo "    promoted at generation 2"

echo "==> healing the partition; the old primary must demote and catch up"
"$BIN" query "$CTRL_ADDR" '{"id":2,"cmd":"heal"}' \
    | grep -q '"partitioned":false' || { echo "heal command failed"; exit 1; }
DEMOTED=""
for _ in $(seq 1 100); do
    STATS="$("$BIN" query "$COORD_ADDR" '{"cmd":"stats"}')"
    if grep -q '"demotions":1' <<<"$STATS"; then
        DEMOTED=1
        break
    fi
    sleep 0.1
done
[[ -n "$DEMOTED" ]] || { echo "old primary never demoted: $STATS"; exit 1; }
"$BIN" query "${SHARD_ADDRS[0]}" '{"cmd":"stats"}' | grep -q '"role":"follower"' \
    || { echo "old primary does not report follower role"; exit 1; }
echo "    old primary demoted to follower"

echo "==> ingest through the new primary; the demoted node must catch up"
"$BIN" query "$COORD_ADDR" \
    '{"id":4,"cmd":"ingest","baskets":[[0,1,4],[5],[4,5]]}' \
    | grep -q '"ingested":3' || { echo "post-heal ingest failed"; exit 1; }
CAUGHT=""
for _ in $(seq 1 100); do
    S0="$("$BIN" query "${SHARD_ADDRS[0]}" '{"cmd":"stats"}')"
    NEWP="$("$BIN" query "$FOLLOWER_ADDR" '{"cmd":"stats"}')"
    if [[ "$(field epoch <<<"$S0")" == "$(field epoch <<<"$NEWP")" ]] \
        && grep -q '"catching_up":false' <<<"$S0"; then
        CAUGHT=1
        break
    fi
    sleep 0.1
done
[[ -n "$CAUGHT" ]] || { echo "demoted node never caught up: $S0 vs $NEWP"; exit 1; }
grep -q '"gen":2' <<<"$S0" || { echo "demoted node did not adopt generation 2: $S0"; exit 1; }
echo "    caught up at $(field epoch <<<"$S0"), generation 2"

echo "==> byte-identical answers from the new primary and the rejoined node"
ANSWER_NEW="$("$BIN" query "$FOLLOWER_ADDR" '{"id":5,"cmd":"chi2","items":[0,1]}')"
ANSWER_OLD="$("$BIN" query "${SHARD_ADDRS[0]}" '{"id":5,"cmd":"chi2","items":[0,1]}')"
for key in statistic ln_p_value support epoch; do
    NEW="$(field "$key" <<<"$ANSWER_NEW")"
    OLD="$(field "$key" <<<"$ANSWER_OLD")"
    [[ -n "$NEW" && "$NEW" == "$OLD" ]] \
        || { echo "divergence on $key: new=$NEW old=$OLD"; exit 1; }
done
echo "$ANSWER_NEW"

echo "chaos smoke: OK"

#!/usr/bin/env bash
# Observability smoke test: start `bmb serve` with a WAL and a
# Prometheus /metrics listener, drive one query of each hot path
# (ingest -> WAL, chi2 -> caches, border -> miner stages), then scrape
# /metrics over plain HTTP and validate that
#   * every exposition line parses (`# HELP`/`# TYPE` or `name[{labels}] value`),
#   * the required metric families from each crate are present,
#   * histogram buckets are cumulative and `+Inf` equals `_count`.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${BMB_BIN:-target/release/bmb}"
if [[ ! -x "$BIN" ]]; then
    echo "==> building bmb ($BIN not found)"
    cargo build --release -q -p bmb-cli
fi

LOG="$(mktemp)"
WAL="$(mktemp -u).wal"
trap 'rm -f "$LOG" "$WAL"' EXIT

"$BIN" serve --items 8 --wal "$WAL" --addr 127.0.0.1:0 \
    --metrics-addr 127.0.0.1:0 >"$LOG" &
SERVER_PID=$!

# Wait for both listeners to be announced.
ADDR=""
METRICS=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^listening on //p' "$LOG" | head -n 1)"
    METRICS="$(sed -n 's|^metrics on http://||p' "$LOG" | sed 's|/metrics$||' | head -n 1)"
    [[ -n "$ADDR" && -n "$METRICS" ]] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died early:"; cat "$LOG"; exit 1; }
    sleep 0.1
done
[[ -n "$ADDR" && -n "$METRICS" ]] || { echo "server never reported its addresses"; cat "$LOG"; exit 1; }
echo "==> server up at $ADDR, metrics at $METRICS"

# One request per hot path: WAL append+sync, cache fill+hit, miner run.
"$BIN" query "$ADDR" \
    '{"id":1,"cmd":"ingest","baskets":[[0,1],[0,1,2],[2],[0,1],[1,2,3],[0]]}' \
    '{"id":2,"cmd":"chi2","items":[0,1]}' \
    '{"id":3,"cmd":"chi2","items":[0,1]}' \
    '{"id":4,"cmd":"topk","k":2}' \
    '{"id":5,"cmd":"border","support":1}' >/dev/null

# Scrape /metrics over raw HTTP (bash /dev/tcp: no curl dependency).
# The server drains the request head best-effort (500ms): on a loaded
# machine it may answer and close before our GET lands, so a failed
# write is tolerated — the response is still buffered for reading.
HOST="${METRICS%:*}"
PORT="${METRICS##*:}"
trap '' PIPE
exec 3<>"/dev/tcp/${HOST}/${PORT}"
printf 'GET /metrics HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' >&3 2>/dev/null || true
RESPONSE="$(cat <&3)"
exec 3<&- 3>&- || true
trap - PIPE

grep -q '200 OK' <<<"$RESPONSE" || { echo "metrics scrape was not a 200:"; echo "$RESPONSE" | head -n 5; exit 1; }
# Body = everything after the first blank line (header/body separator).
BODY="$(awk 'body {print} /^\r?$/ {body=1}' <<<"$RESPONSE")"
[[ -n "$BODY" ]] || { echo "metrics response had no body"; exit 1; }

# Every line must parse as exposition text.
echo "$BODY" | awk '
    /^#( HELP| TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*/ { next }
    /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]/ { next }
    /^\r?$/ { next }
    { print "unparseable exposition line: " $0; bad = 1 }
    END { exit bad }
'

# The required families from each instrumented crate.
for family in \
    bmb_serve_requests_total \
    bmb_serve_request_us \
    bmb_serve_active_connections \
    bmb_core_cache_hits_total \
    bmb_core_cache_misses_total \
    bmb_core_miner_stage_us \
    bmb_basket_wal_appends_total \
    bmb_basket_wal_syncs_total \
    bmb_basket_wal_sync_us \
    bmb_basket_wal_degraded; do
    grep -q "^${family}" <<<"$BODY" || { echo "missing metric family ${family}"; echo "$BODY" | head -n 40; exit 1; }
done

# Histogram sanity on the chi2 latency series: buckets cumulative,
# +Inf == _count, and the two chi2 requests were both recorded.
echo "$BODY" | awk '
    /^bmb_serve_request_us_bucket\{cmd="chi2"/ {
        if ($2 + 0 < prev + 0) { print "non-cumulative bucket: " $0; exit 1 }
        prev = $2; inf = $2
    }
    /^bmb_serve_request_us_count\{cmd="chi2"\}/ { count = $2 }
    END {
        if (count + 0 != 2) { print "expected 2 chi2 requests, saw " count; exit 1 }
        if (inf + 0 != count + 0) { print "+Inf bucket " inf " != _count " count; exit 1 }
    }
'

"$BIN" query "$ADDR" '{"cmd":"shutdown"}' >/dev/null
wait "$SERVER_PID"
echo "metrics smoke: OK"

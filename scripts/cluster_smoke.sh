#!/usr/bin/env bash
# End-to-end smoke test for the sharded cluster: three `bmb cluster
# shard` processes, one coordinator, and one follower tailing shard 0.
# Ingests through the coordinator, checks a chi2 answer carries the
# 3-slot epoch vector, then SIGKILLs shard 0 and requires the
# coordinator to promote the follower and keep answering with the same
# support — never a wrong or permanent-error response.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${BMB_BIN:-target/release/bmb}"
if [[ ! -x "$BIN" ]]; then
    echo "==> building bmb ($BIN not found)"
    cargo build --release -q -p bmb-cli
fi

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

# Polls a role's log for its announced address.
wait_addr() {
    local log="$1" role="$2" addr=""
    for _ in $(seq 1 100); do
        # The address is the first word: shard/follower announcements
        # trail it with "(generation N)".
        addr="$(sed -n "s/^${role} listening on //p" "$log" | head -n 1 | awk '{print $1}')"
        [[ -n "$addr" ]] && { echo "$addr"; return 0; }
        sleep 0.1
    done
    echo "no ${role} address in $log" >&2
    cat "$log" >&2
    return 1
}

echo "==> starting 3 shards"
SHARD_ADDRS=()
for i in 0 1 2; do
    "$BIN" cluster shard --dir "$WORK/s$i" --items 8 --addr 127.0.0.1:0 \
        >"$WORK/s$i.log" &
    PIDS+=($!)
    disown
done
for i in 0 1 2; do
    SHARD_ADDRS+=("$(wait_addr "$WORK/s$i.log" shard)")
done
echo "    shards at ${SHARD_ADDRS[*]}"

echo "==> starting follower (tailing shard 0)"
"$BIN" cluster follow --dir "$WORK/f0" --items 8 \
    --primary "${SHARD_ADDRS[0]}" --poll-ms 10 --addr 127.0.0.1:0 \
    >"$WORK/f0.log" &
PIDS+=($!)
disown
FOLLOWER_ADDR="$(wait_addr "$WORK/f0.log" follower)"
echo "    follower at $FOLLOWER_ADDR"

echo "==> starting coordinator"
"$BIN" cluster serve --items 8 \
    --shards "${SHARD_ADDRS[0]},${SHARD_ADDRS[1]},${SHARD_ADDRS[2]}" \
    --followers "$FOLLOWER_ADDR,," --round-robin --addr 127.0.0.1:0 \
    >"$WORK/coord.log" &
PIDS+=($!)
disown
COORD_ADDR="$(wait_addr "$WORK/coord.log" coordinator)"
echo "    coordinator at $COORD_ADDR"

echo "==> ingest + query through the coordinator"
RESPONSE="$("$BIN" query "$COORD_ADDR" \
    '{"id":1,"cmd":"ingest","baskets":[[0,1],[0,1],[2],[0,3],[0,1,2],[1,3]]}' \
    '{"id":2,"cmd":"chi2","items":[0,1]}')"
echo "$RESPONSE"
grep -q '"epochs":\[2,2,2\]' <<<"$RESPONSE" || { echo "unexpected epoch vector"; exit 1; }
# Key the extraction on the chi2 response's id — position-based "first
# support in the transcript" silently reads the wrong line if an
# earlier response ever grows a support field.
SUPPORT="$(grep '"id":2' <<<"$RESPONSE" | grep -o '"support":[0-9]*' | head -n 1)"
[[ "$SUPPORT" == '"support":3' ]] || { echo "wrong support before kill: $SUPPORT"; exit 1; }

echo "==> waiting for the follower to catch up to shard 0"
for _ in $(seq 1 100); do
    LAG="$("$BIN" query "$FOLLOWER_ADDR" '{"cmd":"stats"}' \
        | grep -o '"replication_lag":[0-9]*' || true)"
    EPOCH="$("$BIN" query "$FOLLOWER_ADDR" '{"cmd":"stats"}' \
        | grep -o '"epoch":[0-9]*' | head -n 1 || true)"
    [[ "$LAG" == '"replication_lag":0' && "$EPOCH" != '"epoch":0' ]] && break
    sleep 0.1
done
[[ "$LAG" == '"replication_lag":0' ]] || { echo "follower never caught up ($LAG)"; exit 1; }
echo "    follower caught up ($EPOCH)"

echo "==> SIGKILL shard 0; reads must fail over to the follower"
kill -9 "${PIDS[0]}"
# The first request after the kill may surface as a retryable error
# while the coordinator marks the shard down; retry a few times, but a
# wrong answer is an immediate failure.
OK=""
for _ in $(seq 1 20); do
    AFTER="$("$BIN" query "$COORD_ADDR" '{"id":3,"cmd":"chi2","items":[0,1]}')"
    if grep -q '"ok":true' <<<"$AFTER"; then
        SUPPORT_AFTER="$(grep '"id":3' <<<"$AFTER" | grep -o '"support":[0-9]*' | head -n 1)"
        [[ "$SUPPORT_AFTER" == '"support":3' ]] \
            || { echo "WRONG ANSWER after kill: $AFTER"; exit 1; }
        OK=1
        break
    fi
    grep -q '"retryable":true' <<<"$AFTER" \
        || { echo "non-retryable failure after kill: $AFTER"; exit 1; }
    sleep 0.2
done
[[ -n "$OK" ]] || { echo "coordinator never recovered after the kill"; exit 1; }
echo "$AFTER"

echo "==> promotion is visible in coordinator stats"
STATS="$("$BIN" query "$COORD_ADDR" '{"cmd":"stats"}')"
grep -q '"promotions":1' <<<"$STATS" || { echo "no promotion recorded: $STATS"; exit 1; }

echo "==> wal inspect --dir over a shard's rotated segments"
"$BIN" wal inspect --dir "$WORK/s1" | grep -q 'base epoch' \
    || { echo "wal inspect --dir failed"; exit 1; }

echo "cluster smoke: OK"

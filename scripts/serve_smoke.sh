#!/usr/bin/env bash
# End-to-end smoke test for the serving layer: start `bmb serve` on an
# ephemeral port, issue one chi2 query with `bmb query`, then shut the
# server down and require a clean exit from both processes.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${BMB_BIN:-target/release/bmb}"
if [[ ! -x "$BIN" ]]; then
    echo "==> building bmb ($BIN not found)"
    cargo build --release -q -p bmb-cli
fi

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

"$BIN" serve --items 4 --addr 127.0.0.1:0 >"$LOG" &
SERVER_PID=$!

# Wait for the server to print its ephemeral address.
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^listening on //p' "$LOG" | head -n 1)"
    [[ -n "$ADDR" ]] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died early:"; cat "$LOG"; exit 1; }
    sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "server never reported an address"; cat "$LOG"; exit 1; }
echo "==> server up at $ADDR"

RESPONSE="$("$BIN" query "$ADDR" \
    '{"id":1,"cmd":"ingest","baskets":[[0,1],[0,1],[2],[0,3]]}' \
    '{"id":2,"cmd":"chi2","items":[0,1]}')"
echo "$RESPONSE"
grep -q '"support":2' <<<"$RESPONSE" || { echo "chi2 response missing expected support"; exit 1; }

"$BIN" query "$ADDR" '{"cmd":"shutdown"}' >/dev/null
wait "$SERVER_PID"
grep -q '^served ' "$LOG" || { echo "server did not report its final stats"; cat "$LOG"; exit 1; }
echo "serve smoke: OK"

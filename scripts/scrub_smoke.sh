#!/usr/bin/env bash
# End-to-end smoke test for at-rest integrity scrubbing: a primary
# shard plus a follower tailing it, a deterministic workload with a
# checkpoint and sealed WAL segments, then a byte flipped in a sealed
# segment on disk. The admin `scrub` command (repairing from the
# follower over the wire) must detect the corruption, quarantine the
# evidence, repair in place without degrading, leave `bmb fsck` clean,
# and keep the chi2 answer byte-identical to the pre-corruption
# baseline. Fixed inputs, no timing dependence; finishes in seconds.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${BMB_BIN:-target/release/bmb}"
if [[ ! -x "$BIN" ]]; then
    echo "==> building bmb ($BIN not found)"
    cargo build --release -q -p bmb-cli
fi

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

# Polls a role's log for its announced address.
wait_addr() {
    local log="$1" role="$2" addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n "s/^${role} listening on //p" "$log" | head -n 1 | awk '{print $1}')"
        [[ -n "$addr" ]] && { echo "$addr"; return 0; }
        sleep 0.1
    done
    echo "no ${role} address in $log" >&2
    cat "$log" >&2
    return 1
}

echo "==> starting primary shard (tiny segments so ingest seals several)"
"$BIN" cluster shard --dir "$WORK/a" --items 8 --addr 127.0.0.1:0 \
    --segment-capacity 4 --segment-bytes 64 --retain-checkpoints 2 \
    >"$WORK/a.log" &
PIDS+=($!)
disown
PRIMARY="$(wait_addr "$WORK/a.log" shard)"
echo "    primary at $PRIMARY"

echo "==> starting follower (the repair source)"
"$BIN" cluster follow --dir "$WORK/f" --items 8 \
    --primary "$PRIMARY" --poll-ms 10 --addr 127.0.0.1:0 \
    >"$WORK/f.log" &
PIDS+=($!)
disown
FOLLOWER="$(wait_addr "$WORK/f.log" follower)"
echo "    follower at $FOLLOWER"

echo "==> deterministic ingest: checkpoint mid-stream, sealed tail past it"
"$BIN" query "$PRIMARY" \
    '{"id":1,"cmd":"ingest","baskets":[[0,3],[1,4],[2,5],[0,6],[1,7],[2,3],[0,4],[1,5],[2,6],[0,7]]}' \
    '{"id":2,"cmd":"checkpoint"}' \
    '{"id":3,"cmd":"ingest","baskets":[[1,3],[2,4],[0,5],[1,6],[2,7],[0,3],[1,4],[2,5],[0,6],[1,7]]}' \
    | grep -q '"ok":true' || { echo "ingest failed"; exit 1; }

echo "==> waiting for the follower to catch up"
for _ in $(seq 1 100); do
    LAG="$("$BIN" query "$FOLLOWER" '{"cmd":"stats"}' \
        | grep -o '"replication_lag":[0-9]*' || true)"
    [[ "$LAG" == '"replication_lag":0' ]] && break
    sleep 0.1
done
[[ "$LAG" == '"replication_lag":0' ]] || { echo "follower never caught up ($LAG)"; exit 1; }

BASELINE="$("$BIN" query "$PRIMARY" '{"id":4,"cmd":"chi2","items":[0,3]}' \
    | grep -o '"support":[0-9]*\|"statistic":[^,}]*')"
echo "    baseline answer: $BASELINE"

echo "==> flipping a byte in a sealed segment at rest"
SEALED="$(ls "$WORK/a"/wal.* | sort | head -n 1)"
[[ "$(ls "$WORK/a"/wal.* | wc -l)" -ge 2 ]] || { echo "no sealed segment"; exit 1; }
OFF=$(( $(stat -c %s "$SEALED") / 2 ))
BYTE="$(od -An -tu1 -j "$OFF" -N1 "$SEALED" | tr -d ' ')"
printf "$(printf '\\%03o' $(( BYTE ^ 255 )))" \
    | dd of="$SEALED" bs=1 seek="$OFF" conv=notrunc status=none
echo "    flipped $SEALED @$OFF"

echo "==> fsck sees the damage (exit non-zero)"
if "$BIN" fsck "$WORK/a" >"$WORK/fsck-dirty.log" 2>&1; then
    echo "fsck missed the corruption"; cat "$WORK/fsck-dirty.log"; exit 1
fi
grep -qi 'finding' "$WORK/fsck-dirty.log" || { cat "$WORK/fsck-dirty.log"; exit 1; }

echo "==> admin scrub repairs from the follower"
SCRUB="$("$BIN" query "$PRIMARY" \
    "{\"id\":5,\"cmd\":\"scrub\",\"peer\":\"$FOLLOWER\"}")"
echo "$SCRUB"
grep -q '"corruptions":1' <<<"$SCRUB" || { echo "corruption not detected"; exit 1; }
grep -q '"repairs":1' <<<"$SCRUB" || { echo "not repaired"; exit 1; }
grep -q '"quarantined":1' <<<"$SCRUB" || { echo "evidence not quarantined"; exit 1; }
grep -q '"degraded":false' <<<"$SCRUB" || { echo "store degraded"; exit 1; }

echo "==> quarantine evidence preserved on disk"
ls "$WORK/a"/quarantine.* >/dev/null || { echo "no quarantine file"; exit 1; }

echo "==> answers byte-identical after repair"
AFTER="$("$BIN" query "$PRIMARY" '{"id":4,"cmd":"chi2","items":[0,3]}' \
    | grep -o '"support":[0-9]*\|"statistic":[^,}]*')"
[[ "$AFTER" == "$BASELINE" ]] \
    || { echo "answer changed: '$AFTER' vs '$BASELINE'"; exit 1; }

echo "==> clean shutdown, then offline fsck is clean"
"$BIN" query "$PRIMARY" '{"cmd":"shutdown"}' >/dev/null || true
sleep 0.3
"$BIN" fsck "$WORK/a" | grep -q 'clean' || { echo "fsck not clean"; exit 1; }

echo "scrub smoke: OK"

#!/usr/bin/env bash
# Distributed-observability smoke test: two `bmb cluster shard`
# processes and a follower (each with a persisted event ledger under
# --dir), one coordinator with a federated /metrics listener. Drives a
# client-supplied trace id through the coordinator and requires
#   * the response to echo the caller's trace id verbatim,
#   * `bmb cluster trace` to reconstruct a tree whose spans cover the
#     coordinator AND both shards,
#   * the federated /metrics body to label every sample with its origin
#     node and to synthesize cluster rollup families,
#   * `bmb cluster events` to surface a failover event from the
#     follower's persisted ledger.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${BMB_BIN:-target/release/bmb}"
if [[ ! -x "$BIN" ]]; then
    echo "==> building bmb ($BIN not found)"
    cargo build --release -q -p bmb-cli
fi

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

# Polls a role's log for its announced address.
wait_addr() {
    local log="$1" role="$2" addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n "s/^${role} listening on //p" "$log" | head -n 1 | awk '{print $1}')"
        [[ -n "$addr" ]] && { echo "$addr"; return 0; }
        sleep 0.1
    done
    echo "no ${role} address in $log" >&2
    cat "$log" >&2
    return 1
}

echo "==> starting 2 shards (event ledgers under --dir)"
SHARD_ADDRS=()
for i in 0 1; do
    "$BIN" cluster shard --dir "$WORK/s$i" --items 8 --shard-index "$i" \
        --addr 127.0.0.1:0 >"$WORK/s$i.log" &
    PIDS+=($!)
    disown
done
for i in 0 1; do
    SHARD_ADDRS+=("$(wait_addr "$WORK/s$i.log" shard)")
    grep -q "events ledger at" "$WORK/s$i.log" \
        || { echo "shard $i never attached its event ledger"; cat "$WORK/s$i.log"; exit 1; }
done
echo "    shards at ${SHARD_ADDRS[*]}"

echo "==> starting follower (tailing shard 0)"
"$BIN" cluster follow --dir "$WORK/f0" --items 8 \
    --primary "${SHARD_ADDRS[0]}" --poll-ms 10 --addr 127.0.0.1:0 \
    >"$WORK/f0.log" &
PIDS+=($!)
disown
FOLLOWER_ADDR="$(wait_addr "$WORK/f0.log" follower)"
echo "    follower at $FOLLOWER_ADDR"

echo "==> starting coordinator with federated /metrics"
"$BIN" cluster serve --items 8 \
    --shards "${SHARD_ADDRS[0]},${SHARD_ADDRS[1]}" \
    --metrics-addr 127.0.0.1:0 --addr 127.0.0.1:0 \
    >"$WORK/coord.log" &
PIDS+=($!)
disown
COORD_ADDR="$(wait_addr "$WORK/coord.log" coordinator)"
METRICS="$(sed -n 's|^metrics on http://||p' "$WORK/coord.log" | sed 's|/metrics$||' | head -n 1)"
[[ -n "$METRICS" ]] || { echo "coordinator never announced /metrics"; cat "$WORK/coord.log"; exit 1; }
echo "    coordinator at $COORD_ADDR, metrics at $METRICS"

echo "==> traced query through the coordinator"
TRACE_ID="00000000feedface"
RESPONSE="$("$BIN" query "$COORD_ADDR" \
    '{"id":1,"cmd":"ingest","baskets":[[0,1],[0,1,2],[2,3],[0,1],[1,2],[0,3]]}' \
    "{\"id\":2,\"cmd\":\"chi2\",\"items\":[0,1],\"trace\":\"$TRACE_ID\"}")"
echo "$RESPONSE"
grep '"id":2' <<<"$RESPONSE" | grep -q "\"trace\":\"$TRACE_ID\"" \
    || { echo "coordinator did not echo the caller's trace id"; exit 1; }

echo "==> cross-node trace tree"
TREE="$("$BIN" cluster trace "$COORD_ADDR" "$TRACE_ID")"
echo "$TREE"
grep -q "^trace $TRACE_ID:" <<<"$TREE" || { echo "tree is not for our trace"; exit 1; }
grep -q 'serve:chi2.*\[coordinator\]' <<<"$TREE" \
    || { echo "no coordinator root span in the tree"; exit 1; }
for shard in 0 1; do
    grep -q "serve:support_vec.*\[shard/shard${shard}\]" <<<"$TREE" \
        || { echo "no span recorded by shard ${shard}"; exit 1; }
done
# Three distinct processes contributed spans: coordinator + 2 shards.
NODES="$(grep -o '\[[a-z/0-9]*\]' <<<"$TREE" | sort -u)"
[[ "$(wc -l <<<"$NODES")" -ge 3 ]] \
    || { echo "trace tree spans fewer than 3 nodes: $NODES"; exit 1; }

echo "==> federated /metrics exposition"
HOST="${METRICS%:*}"
PORT="${METRICS##*:}"
# The listener drains the request head best-effort, so on a loaded
# machine a scrape can be reset mid-read; retry a few times.
SCRAPE=""
trap '' PIPE
for _ in $(seq 1 10); do
    exec 3<>"/dev/tcp/${HOST}/${PORT}" || { sleep 0.2; continue; }
    printf 'GET /metrics HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' >&3 2>/dev/null || true
    SCRAPE="$(cat <&3 2>/dev/null || true)"
    exec 3<&- 3>&- || true
    grep -q '200 OK' <<<"$SCRAPE" && break
    SCRAPE=""
    sleep 0.2
done
trap - PIPE
[[ -n "$SCRAPE" ]] || { echo "metrics scrape never returned a 200"; exit 1; }
BODY="$(awk 'body {print} /^\r?$/ {body=1}' <<<"$SCRAPE")"
for needle in \
    'node="coordinator"' \
    'node="shard0",shard="0"' \
    'node="shard1",shard="1"' \
    'bmb_cluster_fed_epoch_skew' \
    'bmb_cluster_fed_shard_p99_us'; do
    grep -q "$needle" <<<"$BODY" \
        || { echo "federated exposition missing $needle"; echo "$BODY" | head -n 30; exit 1; }
done
# Every re-exposed sample carries its origin node label; only the
# synthesized bmb_cluster_fed_* rollups may go bare.
echo "$BODY" | awk '
    /^#/ || /^\r?$/ || /^bmb_cluster_fed_/ { next }
    !/node="/ { print "unlabeled federated sample: " $0; bad = 1 }
    END { exit bad }
'

echo "==> failover event in the follower's persisted ledger"
"$BIN" query "$FOLLOWER_ADDR" '{"cmd":"promote"}' | grep -q '"promoted":true' \
    || { echo "follower refused promotion"; exit 1; }
EVENTS="$("$BIN" cluster events "$FOLLOWER_ADDR")"
echo "$EVENTS" | head -n 5
grep -q "event(s) from the node's ledger" <<<"$EVENTS" \
    || { echo "events did not come from the persisted ledger"; exit 1; }
grep -q '"msg":"follower promoted"' <<<"$EVENTS" \
    || { echo "promotion never reached the event ledger"; exit 1; }

echo "obs smoke: OK"

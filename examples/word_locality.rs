//! Spatial-locality mining over word *order* — the paper's first
//! future-work item ("rules that capture the spatial locality of words by
//! paying attention to item ordering within the basket"), implemented.
//!
//! Generates an ordered corpus, then contrasts the document-level
//! correlation verdicts with the position-level locality verdicts: planted
//! collocations are adjacent (high locality interest), while the parity
//! triple's words merely share documents.
//!
//! Run with: `cargo run --release --example word_locality`

use beyond_market_baskets::corr::locality::{locality_test, mine_locality};
use beyond_market_baskets::datasets::text::{generate_sequences, TextParams};
use beyond_market_baskets::prelude::*;

fn main() {
    let corpus = generate_sequences(&TextParams {
        vocabulary: 1500,
        ..TextParams::default()
    });
    println!(
        "ordered corpus: {} documents, mean length {:.0} tokens",
        corpus.documents.len(),
        corpus.documents.iter().map(Vec::len).sum::<usize>() as f64 / corpus.documents.len() as f64
    );

    let test = Chi2Test::default();
    let window = 2;

    // The planted collocations, by (trigger, follower) order.
    let pairs: Vec<(ItemId, ItemId)> = beyond_market_baskets::datasets::text::planted_pairs()
        .iter()
        .map(|&(a, b)| {
            (
                corpus.catalog.get(a).expect("planted word"),
                corpus.catalog.get(b).expect("planted word"),
            )
        })
        .collect();
    println!("\nlocality (window = {window}) for the planted collocations:");
    for report in mine_locality(&corpus.documents, &pairs, window, &test) {
        println!(
            "  {} -> {}   chi2 = {:>10.1}   adjacency interest = {:>7.1}   significant: {}",
            corpus.catalog.name(report.a).unwrap(),
            corpus.catalog.name(report.b).unwrap(),
            report.chi2.statistic,
            report.adjacency_interest(),
            report.chi2.significant,
        );
    }

    // Contrast: two words that share documents but not positions. The
    // baskets view calls them correlated; the locality view does not.
    let db = corpus.to_baskets();
    let (a, b) = (pairs[0].0, pairs[1].0); // mandela and liberia triggers
    let basket_table = beyond_market_baskets::basket::ContingencyTable::from_database(
        &db,
        &Itemset::from_items([a, b]),
    );
    let doc_level = test.test_dense(&basket_table);
    let position_level = locality_test(&corpus.documents, a, b, window, &test);
    println!(
        "\n{} vs {}:",
        corpus.catalog.name(a).unwrap(),
        corpus.catalog.name(b).unwrap()
    );
    println!(
        "  document-level chi2 = {:.1} (significant: {})",
        doc_level.statistic, doc_level.significant
    );
    println!(
        "  locality chi2 = {:.1} (significant: {}) — ordering adds information\n   that the basket abstraction deliberately forgets (paper, Section 1.1)",
        position_level.chi2.statistic, position_level.chi2.significant
    );
}

//! Census mining: the paper's Section 5.1 scenario end to end.
//!
//! Generates the simulated 30,370-person census (calibrated by iterative
//! proportional fitting to the paper's published pairwise statistics),
//! mines it with the `x²-support` algorithm at the paper's settings, and
//! walks through the analysis narrative of Section 5.1: which pairs are
//! *not* correlated, what the interest values suggest, and how the
//! support-confidence view differs.
//!
//! Run with: `cargo run --release --example census_mining`

use beyond_market_baskets::prelude::*;
use bmb_basket::ContingencyTable;

fn main() {
    let db = beyond_market_baskets::datasets::generate_census();
    println!(
        "census: {} baskets over {} binary attributes",
        db.len(),
        db.n_items()
    );

    // Mine at the paper's settings: alpha 95%, support 1%, p just over 25%.
    let config = MinerConfig {
        support: SupportSpec::Fraction(0.01),
        support_fraction: 0.26,
        ..MinerConfig::default()
    };
    let result = mine(&db, &config);
    println!(
        "\nsignificant (minimal correlated) itemsets: {}   [{:.0?}]",
        result.significant.len(),
        result.elapsed
    );

    // The paper's surprise: {i1, i4} and {i1, i5} — family size vs.
    // immigration markers — are NOT correlated although "conventional
    // wisdom" says they should be.
    println!("\nuncorrelated pairs (the interesting negatives):");
    for a in 0..10u32 {
        for b in a + 1..10 {
            let set = Itemset::from_ids([a, b]);
            if result.rule_for(&set).is_none() {
                println!("  {}", db.describe(&set));
            }
        }
    }

    // Follow the paper's Example 4: military service vs age.
    let set = Itemset::from_ids([2, 7]);
    let rule = result
        .rule_for(&set)
        .expect("(i2,i7) is strongly correlated");
    println!(
        "\nExample 4 — {}: chi2 = {:.1}",
        db.describe(&set),
        rule.chi2.statistic
    );
    let interest = rule.interest();
    let labels = [
        "veteran & >40",
        "never-served & >40",
        "veteran & <=40",
        "never-served & <=40",
    ];
    for (cell, label) in labels.iter().enumerate() {
        println!(
            "  I({label}) = {:.2}   (chi2 contribution {:.1})",
            interest.interest(cell as u32),
            interest.cells()[cell].chi2_contribution
        );
    }
    let (major_cell, major_interest) = rule.major_dependence();
    println!(
        "  major dependence: cell {:#04b} with interest {:.2} — being a veteran goes with being over 40",
        major_cell, major_interest
    );

    // Contrast with support-confidence on the same pair.
    let report =
        beyond_market_baskets::apriori::PairReport::from_database(&db, ItemId(2), ItemId(7));
    println!("\nsupport-confidence on the same pair (s = 1%, c = 0.5):");
    for rule in report.passing_rules(0.01, 0.5) {
        println!(
            "  {}  (confidence {:.2}, cell support {:.1}%)",
            rule.label(),
            report.confidence(rule).unwrap(),
            report.cell_support(rule.cell()) * 100.0
        );
    }
    println!("  — four rules pass, and ranking them by support puts the");
    println!("    chi-squared-dominant fact (veteran ∧ over-40) last.");

    // Validity check: is the chi-squared approximation trustworthy here?
    let table = ContingencyTable::from_database(&db, &set);
    let validity = beyond_market_baskets::stats::check_dense(
        &table,
        beyond_market_baskets::stats::ValidityRule::default(),
    );
    println!(
        "\nMoore's rule of thumb on the (i2, i7) table: valid = {} ({}/{} cells comfortable)",
        validity.is_valid(),
        validity.cells_above_bulk,
        validity.n_cells
    );
}

//! Recovery-time benchmark: replay-all vs checkpointed restart.
//!
//! Builds a directory-mode durable store whose WAL holds one record per
//! ingested basket — the shape a `bmb serve` instance produces under
//! per-request ingest — then measures two restarts over the same
//! history:
//!
//! * **replay-all** — no checkpoint on media; recovery decodes and
//!   replays every WAL record from epoch zero;
//! * **checkpointed** — a snapshot covers the full history; recovery
//!   loads the checkpoint and replays only the (empty) WAL suffix.
//!
//! The store runs over the in-memory directory backend ([`MemDir`]) so
//! the numbers isolate the decode/replay cost of recovery itself —
//! building a million-record log with a real fsync barrier per append
//! would measure the disk, not the recovery path. Both restarts end
//! bit-identical; the table's point is the wall-clock and the
//! `records replayed` column, not the answers. Run with:
//!
//! ```text
//! cargo run --release --example recovery_bench [N ...]
//! ```
//!
//! (defaults: 10000 100000 1000000)

use std::sync::Arc;
use std::time::Instant;

use beyond_market_baskets::basket::storage::SharedDirState;
use beyond_market_baskets::basket::wal::{DurabilityConfig, DurableStore, RecoveryReport};
use beyond_market_baskets::basket::{ItemId, MemDir, StoreConfig};

const N_ITEMS: usize = 64;

fn basket(i: u64) -> Vec<ItemId> {
    let n = N_ITEMS as u64;
    let mut ids = vec![i % n, (i * 7 + 3) % n, (i * 13 + 5) % n];
    ids.dedup();
    ids.into_iter().map(|id| ItemId(id as u32)).collect()
}

fn open(state: &SharedDirState) -> (DurableStore, RecoveryReport) {
    DurableStore::open_dir(
        Box::new(MemDir::with_state(Arc::clone(state))),
        N_ITEMS,
        StoreConfig {
            segment_capacity: 1_000,
        },
        DurabilityConfig::default(),
    )
    .expect("open durable store")
}

/// Ingests `n` baskets, one WAL record each — the per-request shape.
fn fill(state: &SharedDirState, n: u64) {
    let (store, _) = open(state);
    for i in 0..n {
        store.append_batch([basket(i)]).expect("ingest");
    }
    assert_eq!(store.epoch(), n);
}

fn timed_open(state: &SharedDirState) -> (f64, RecoveryReport) {
    let start = Instant::now();
    let (store, report) = open(state);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(store.epoch(), report.epoch);
    (secs, report)
}

fn human(n: u64) -> String {
    match n {
        n if n % 1_000_000 == 0 => format!("{}M", n / 1_000_000),
        n if n % 1_000 == 0 => format!("{}k", n / 1_000),
        n => n.to_string(),
    }
}

fn main() {
    let sizes: Vec<u64> = {
        let args: Vec<u64> = std::env::args()
            .skip(1)
            .map(|a| a.parse().expect("basket count"))
            .collect();
        if args.is_empty() {
            vec![10_000, 100_000, 1_000_000]
        } else {
            args
        }
    };

    println!(
        "| baskets | replay-all | records replayed | checkpointed | records replayed | speedup |"
    );
    println!("|---|---|---|---|---|---|");
    for &n in &sizes {
        let state = MemDir::new().state();
        fill(&state, n);

        // Replay-all: recover the cold directory with no checkpoint.
        let (replay_secs, replay_report) = timed_open(&state);
        assert_eq!(replay_report.epoch, n);
        assert_eq!(replay_report.checkpoint_epoch, 0);

        // Write a covering checkpoint, then recover again: the snapshot
        // absorbs the history and the WAL suffix is empty.
        {
            let (store, _) = open(&state);
            store.checkpoint().expect("checkpoint");
        }
        let (ckpt_secs, ckpt_report) = timed_open(&state);
        assert_eq!(ckpt_report.epoch, n);
        assert_eq!(ckpt_report.checkpoint_epoch, n);
        assert_eq!(ckpt_report.baskets_recovered, 0);

        println!(
            "| {} | {:.3} s | {} | {:.3} s | {} | {:.1}× |",
            human(n),
            replay_secs,
            replay_report.records_replayed,
            ckpt_secs,
            ckpt_report.records_replayed,
            replay_secs / ckpt_secs.max(1e-9),
        );
    }
}

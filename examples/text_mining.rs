//! Term-dependence mining in a document corpus — Section 5.2's scenario.
//!
//! Generates the synthetic 91-article news corpus, applies the paper's
//! 10% document-frequency pruning, mines word correlations, and prints a
//! Table 4-style digest: the strongest collocations with the cell
//! ("major dependence") that drives each one.
//!
//! Run with: `cargo run --release --example text_mining`

use beyond_market_baskets::datasets::text::{generate, TextParams};
use beyond_market_baskets::prelude::*;

fn main() {
    let db = generate(&TextParams::default());
    println!(
        "corpus: {} documents, {} distinct words after 10% df-pruning",
        db.len(),
        db.n_items()
    );

    let config = MinerConfig {
        support: SupportSpec::Count(5),
        support_fraction: 0.26,
        max_level: 3,
        ..MinerConfig::default()
    };
    let result = mine(&db, &config);
    let pairs = result
        .significant
        .iter()
        .filter(|r| r.itemset.len() == 2)
        .count();
    let triples = result
        .significant
        .iter()
        .filter(|r| r.itemset.len() == 3)
        .count();
    println!(
        "minimal correlated itemsets: {} pairs, {} triples  [{:.1?}]",
        pairs, triples, result.elapsed
    );

    // Strongest correlations, Table 4 style.
    let mut top: Vec<&CorrelationRule> = result.significant.iter().collect();
    top.sort_by(|a, b| b.chi2.statistic.partial_cmp(&a.chi2.statistic).unwrap());
    println!("\nstrongest correlations (word set | chi2 | major dependence):");
    for rule in top.iter().take(10) {
        let (includes, omits) = rule.major_dependence_words(&db);
        println!(
            "  {:<30} {:>9.2}   includes [{}] omits [{}]",
            db.describe(&rule.itemset),
            rule.chi2.statistic,
            includes.join(" "),
            omits.join(" ")
        );
    }

    // The paper's observation: minimal triples have far lower chi2 than the
    // big pairs, because any strongly-bound triple has a correlated pair
    // inside it and is therefore not minimal.
    let max_pair = top
        .iter()
        .filter(|r| r.itemset.len() == 2)
        .map(|r| r.chi2.statistic)
        .fold(0.0f64, f64::max);
    let max_triple = top
        .iter()
        .filter(|r| r.itemset.len() == 3)
        .map(|r| r.chi2.statistic)
        .fold(0.0f64, f64::max);
    println!(
        "\nlargest pair chi2 = {max_pair:.1}, largest *minimal* triple chi2 = {max_triple:.1}"
    );
    println!("(the paper saw the same shape: pairs up to 91.0, no triple above 10)");

    // A genuinely 3-way-only dependence: the planted parity triple.
    let catalog = db.catalog().unwrap();
    let triple = Itemset::from_items(
        ["burundi", "commission", "plan"]
            .iter()
            .filter_map(|w| catalog.get(w)),
    );
    if triple.len() == 3 {
        match result.rule_for(&triple) {
            Some(rule) => println!(
                "\nburundi/commission/plan: minimal 3-way correlation, chi2 = {:.1} — \
                 no pair of the three is correlated",
                rule.chi2.statistic
            ),
            None => println!("\nburundi/commission/plan: not minimal in this corpus"),
        }
    }
}

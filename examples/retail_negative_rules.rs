//! Negative implications in retail data — the "batteries and cat food"
//! scenario from the paper's introduction.
//!
//! The support-confidence framework cannot express "people who buy X do
//! NOT buy Y": the co-occurrence cell has no support, so the rule never
//! surfaces. The chi-squared framework treats absence as first-class —
//! this example plants a mutual-exclusion pair inside a Quest-style
//! synthetic market and shows the correlation miner flagging it, interest
//! value 0 and all.
//!
//! Run with: `cargo run --release --example retail_negative_rules`

use beyond_market_baskets::prelude::*;
use bmb_basket::{BasketDatabase, ContingencyTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a market where items 0 ("batteries") and 1 ("cat food") are
/// common but never bought together, on top of ordinary random demand for
/// the other items.
fn market(n: usize, k: usize, seed: u64) -> BasketDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = BasketDatabase::new(k);
    for _ in 0..n {
        let mut basket: Vec<ItemId> = Vec::new();
        // One of the exclusive pair shows up in 60% of baskets — never both.
        let roll: f64 = rng.gen_range(0.0..1.0);
        if roll < 0.3 {
            basket.push(ItemId(0));
        } else if roll < 0.6 {
            basket.push(ItemId(1));
        }
        for i in 2..k as u32 {
            if rng.gen_bool(0.08) {
                basket.push(ItemId(i));
            }
        }
        db.push_basket(basket);
    }
    db
}

fn main() {
    let db = market(20_000, 30, 1997);
    println!("market: {} baskets over {} items", db.len(), db.n_items());

    // Support-confidence is blind to the exclusion: the pair has zero
    // support, so no rule involving both items can clear any threshold.
    let frequent = apriori(&db, MinSupport::Fraction(0.01), 2);
    let pair = Itemset::from_ids([0, 1]);
    println!(
        "\nApriori at 1% support: {} frequent itemsets; batteries∧cat-food frequent: {}",
        frequent.frequent.len(),
        frequent.support_of(&pair).is_some()
    );

    // The correlation miner sees it immediately.
    let config = MinerConfig {
        support: SupportSpec::Fraction(0.01),
        support_fraction: 0.26,
        max_level: 3,
        ..MinerConfig::default()
    };
    let result = mine(&db, &config);
    let rule = result
        .rule_for(&pair)
        .expect("the exclusive pair must be a minimal correlated itemset");
    println!(
        "\ncorrelation miner: {{batteries, cat food}} chi2 = {:.1} (cutoff {:.2})",
        rule.chi2.statistic, rule.chi2.cutoff
    );
    let interest = rule.interest();
    println!("interest values:");
    println!(
        "  I(batteries ∧ cat food)  = {:.3}  ← 0: the co-purchase never happens",
        interest.interest(0b11)
    );
    println!(
        "  I(batteries ∧ no cat food) = {:.3}",
        interest.interest(0b01)
    );
    println!(
        "  I(cat food ∧ no batteries) = {:.3}",
        interest.interest(0b10)
    );
    println!(
        "  I(neither)                 = {:.3}",
        interest.interest(0b00)
    );

    // Fisher's exact test corroborates on the raw 2x2 counts.
    let table = ContingencyTable::from_database(&db, &pair);
    let fisher = beyond_market_baskets::stats::fisher_exact(
        table.observed(0b11),
        table.observed(0b01),
        table.observed(0b10),
        table.observed(0b00),
        beyond_market_baskets::stats::Alternative::TwoSided,
    );
    println!(
        "\nFisher exact (two-sided): p = {:.3e}, odds ratio = {:.3}",
        fisher.p_value, fisher.odds_ratio
    );
    println!("→ the exclusion is real, and only the correlation framework reports it.");
}

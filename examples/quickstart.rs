//! Quickstart: mine correlation rules from a small basket database.
//!
//! Builds the paper's Example 1 scenario (tea/coffee) plus a planted
//! three-way correlation, runs both the support-confidence baseline and
//! the chi-squared correlation miner, and contrasts their answers.
//!
//! Run with: `cargo run --example quickstart`

use beyond_market_baskets::prelude::*;

fn main() {
    // --- Build a basket database from named baskets -----------------------
    // 100 grocery baskets with the paper's Example 1 proportions: 20 with
    // tea & coffee, 5 with tea only, 70 with coffee only, 5 empty.
    let db = beyond_market_baskets::datasets::tea_coffee();
    let catalog = db.catalog().expect("tea_coffee() names its items");
    let tea = catalog.get("tea").unwrap();
    let coffee = catalog.get("coffee").unwrap();
    println!("database: {} baskets over {} items", db.len(), db.n_items());

    // --- The support-confidence view ---------------------------------------
    let frequent = apriori(&db, MinSupport::Fraction(0.05), 2);
    let rules = generate_rules(&frequent, db.len() as u64, 0.5);
    println!("\nsupport-confidence rules (s >= 5%, c >= 0.5):");
    for rule in &rules {
        println!(
            "  {} => {}   support {:.0}%  confidence {:.0}%  lift {:.2}",
            db.describe(&rule.antecedent),
            db.describe(&rule.consequent),
            rule.support * 100.0,
            rule.confidence * 100.0,
            rule.lift,
        );
    }

    // --- The correlation view ----------------------------------------------
    // The same pair through the chi-squared lens: the interest of the
    // tea∧coffee cell is below 1 — tea buyers are *less* likely to buy
    // coffee than average, despite the 80%-confidence rule above.
    let test = Chi2Test::default();
    let rows = pairs_report(&db, &test);
    let row = rows.iter().find(|r| r.a == tea.min(coffee)).unwrap();
    println!(
        "\nchi-squared view of (tea, coffee): chi2 = {:.2}, significant: {}",
        row.chi2.statistic, row.chi2.significant
    );
    println!(
        "interest values [ab, !ab, a!b, !a!b]: {:?}",
        row.interests.map(|i| (i * 1000.0).round() / 1000.0)
    );
    println!(
        "I(tea ∧ coffee) = {:.2} < 1 → negative correlation",
        row.interests[0]
    );

    // --- Full mining run on data with hidden 3-way structure ---------------
    // Parity data: three items, pairwise independent, jointly determined.
    // Support-confidence can never see this; the correlation miner returns
    // it as the (unique) minimal correlated itemset.
    let parity = beyond_market_baskets::datasets::parity_triple(400, 6);
    let result = mine(
        &parity,
        &MinerConfig {
            support: SupportSpec::Count(5),
            ..MinerConfig::default()
        },
    );
    println!("\nminimal correlated itemsets in the parity database:");
    for rule in &result.significant {
        println!(
            "  {}   chi2 = {:.1} (cutoff {:.2})",
            rule.itemset, rule.chi2.statistic, rule.chi2.cutoff
        );
    }
    println!(
        "levels examined: {}, total candidates: {}",
        result.levels.len(),
        result.total_candidates()
    );
}

//! # beyond-market-baskets
//!
//! Umbrella crate for the reproduction of *Beyond Market Baskets:
//! Generalizing Association Rules to Correlations* (Brin, Motwani &
//! Silverstein, SIGMOD 1997). It re-exports every workspace crate under
//! one roof so examples and downstream users need a single dependency:
//!
//! * [`basket`] — items, itemsets, basket databases, contingency tables;
//! * [`stats`] — the chi-squared machinery, interest measure, Fisher exact;
//! * [`lattice`] — candidate generation, borders, random walks, datacubes;
//! * [`corr`] — the `x²-support` correlation miner (the paper's core);
//! * [`apriori`] — the support-confidence baseline;
//! * [`quest`] — the IBM Quest synthetic data generator;
//! * [`datasets`] — census/text/toy workload simulators;
//! * [`serve`] — the long-running correlation-query server.
//!
//! ## Quickstart
//!
//! ```
//! use beyond_market_baskets::prelude::*;
//!
//! // Example 1 of the paper: tea and coffee look associated but are
//! // negatively correlated.
//! let db = beyond_market_baskets::datasets::tea_coffee();
//! let test = Chi2Test::default();
//! let rows = pairs_report(&db, &test);
//! assert!(rows[0].interests[0] < 1.0); // I(tea ∧ coffee) = 0.89
//! ```

pub use bmb_apriori as apriori;
pub use bmb_basket as basket;
pub use bmb_core as corr;
pub use bmb_datasets as datasets;
pub use bmb_lattice as lattice;
pub use bmb_quest as quest;
pub use bmb_sampling as sampling;
pub use bmb_serve as serve;
pub use bmb_stats as stats;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use bmb_apriori::{apriori, generate_rules, MinSupport};
    pub use bmb_basket::{BasketDatabase, ItemCatalog, ItemId, Itemset, SupportCounter};
    pub use bmb_core::{
        mine, mine_walk, pairs_report, CorrelationRule, MinerConfig, MiningResult, SupportSpec,
    };
    pub use bmb_stats::{Chi2Test, ChiSquared, InterestReport, SignificanceLevel};
}

#!/usr/bin/env bash
# The repo's CI gate, runnable locally: formatting, clippy, the
# workspace's own static analyzer, and the test suite. Any failure
# fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace -- -D warnings

echo "==> bmb-xtask lint"
# The per-pass counts line prints even on a clean run, so a pass that
# silently stopped analyzing anything is visible in the CI log.
cargo run -q -p bmb-xtask -- lint

echo "==> bmb-xtask self-test (seeded-violation fixtures)"
# The analyzer's own suite lints the fixture workspace and asserts the
# exact findings — including that every pass reports at least one.
cargo test -q -p bmb-xtask

echo "==> cargo test"
cargo test -q --workspace

echo "==> WAL crash-recovery torture (bounded)"
# Randomized fault-point sweep over the write-ahead log; must finish
# well inside a minute or the gate fails.
timeout 60 cargo test -q --release -p bmb-core --test wal_torture

echo "==> checkpoint crash-recovery torture (bounded)"
# Same contract with checkpoints, segment rotation, and retention in
# the loop: 300+ planned directory-fault points, bit-identical answers.
timeout 60 cargo test -q --release -p bmb-core --test checkpoint_torture

echo "==> scrub at-rest corruption torture (bounded)"
# Exhaustive planned byte-flip sweep over every scrub-walked artifact
# (200+ points): one pass detects, quarantines, repairs byte-identical,
# and answers stay bit-identical to a never-corrupted store.
timeout 120 cargo test -q --release -p bmb-core --test scrub_torture

echo "==> kill -9 crash harness"
# Ten real SIGKILLs of a child server mid-ingest; every acked append
# must survive and recovery must replay only the post-checkpoint tail.
timeout 120 cargo test -q --release -p bmb-serve --test crash_kill

echo "==> kill -9 during scrub repair (two-node)"
# SIGKILL ladder across the quarantine → rebuild → publish window with
# a live repair peer: no kill point may lose acked epochs, and the
# directory must converge to a clean fsck.
timeout 120 cargo test -q --release -p bmb-cli --test scrub_kill

echo "==> cluster kill -9 / chaos torture / differential harness"
# SIGKILL one shard mid-query-storm (coordinator must degrade
# gracefully, never answer wrongly, and re-admit the revived shard),
# the 1-shard vs 4-shard bit-identity differential, and 20 seeded
# network-chaos schedules (fault proxy + generation-fenced failover):
# never a wrong answer, no acked ingest lost, no dual primaries.
timeout 240 cargo test -q --release -p bmb-cluster

echo "==> server smoke test"
./scripts/serve_smoke.sh

echo "==> metrics exposition smoke test"
./scripts/metrics_smoke.sh

echo "==> cluster smoke test (3 shards + coordinator + follower)"
./scripts/cluster_smoke.sh

echo "==> chaos smoke test (partition, fenced failover, heal, rejoin)"
./scripts/chaos_smoke.sh

echo "==> observability smoke test (trace tree, federation, event ledger)"
./scripts/obs_smoke.sh

echo "==> scrub smoke test (flip byte at rest, repair from follower, fsck clean)"
./scripts/scrub_smoke.sh

echo "==> perf trajectory (noise-gated vs committed BENCH_*.json)"
# Runs the committed bench suite and fails only on a 3x-plus-absolute
# regression against the best committed baseline; the freshly written
# BENCH_<rev>.json is a candidate to commit when cutting a release.
cargo run -q -p bmb-xtask -- bench

echo "CI: all gates passed"

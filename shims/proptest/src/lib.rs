//! Hermetic stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of proptest the workspace tests use: [`Strategy`] with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assume!`] macros. Inputs are generated
//! from a seeded deterministic generator (seed = FNV-1a of the test
//! name), so every run explores the same cases — no shrinking, but
//! failures are reproducible and reported with their case index.
//!
//! Case count defaults to 64 and can be raised via `PROPTEST_CASES`.

use rand::rngs::StdRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes every generated value with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Generates an intermediate value, then a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size specifications for [`vec`].
    pub trait IntoSizeRange {
        /// Lower and inclusive upper bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// A strategy producing `Vec`s whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.0.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The deterministic generator handed to strategies.
pub struct TestRng(pub StdRng);

pub mod test_runner {
    //! The case loop behind [`crate::proptest!`].

    use super::TestRng;
    use rand::SeedableRng;

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the input out; try another.
        Reject,
        /// A `prop_assert!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure with a rendered message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Runs `body` over seeded cases; panics on the first failing case.
    pub fn run(name: &str, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let cases = case_count();
        let seed = fnv1a(name);
        let mut passed = 0u64;
        let mut rejected = 0u64;
        let max_rejects = cases.saturating_mul(16).max(1024);
        let mut case = 0u64;
        while passed < cases {
            let mut rng = TestRng(rand::rngs::StdRng::seed_from_u64(seed ^ case));
            case += 1;
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "{name}: too many prop_assume rejections ({rejected}) — \
                         strategy and assumptions are incompatible"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{name}: case #{case} (seed {seed:#x} ^ {}) failed: {msg}",
                        case - 1
                    )
                }
            }
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.

    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic random-input tests; see crate docs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __out
                });
            }
        )*
    };
}

/// Fails the current case (with formatting) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("{:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("{:?} != {:?}: {}", __a, __b, ::std::format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("both sides equal {:?}", __a),
            ));
        }
    }};
}

/// Skips (rejects) the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in 1usize..=3) {
            prop_assert!(x < 10);
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn assume_filters(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_and_flat_map_compose(
            v in (1usize..=5).prop_flat_map(|n| collection::vec(0u32..100, n..=n))
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn map_transforms(s in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0 && s < 100);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = 0u64..1_000_000;
        let mut a = crate::TestRng(rand::rngs::StdRng::seed_from_u64(99));
        let mut b = crate::TestRng(rand::rngs::StdRng::seed_from_u64(99));
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}

//! Hermetic stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact API surface it consumes: [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic across platforms, which is
//! all the seeded tests and dataset generators require. The streams
//! differ from upstream `rand`'s ChaCha12-based `StdRng`, so seeded
//! expectations are calibrated against *this* implementation.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    ///
    /// Panics (as upstream does) when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        next_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
}

/// Uniform `u64` in `[0, bound)` by rejection from the top of the range.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Ranges that can produce a uniform sample; mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = next_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                lo + (hi - lo) * next_f64(rng) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into a full generator state (SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same generator under the upstream "small" name, for parity.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream uses for seed_from_u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(2u32..=5);
            assert!((2..=5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}

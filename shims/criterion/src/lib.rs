//! Hermetic stand-in for the `criterion` crate (API subset).
//!
//! The build environment has no crates.io access. This shim keeps the
//! workspace's benches compiling and executable: every benchmark closure
//! runs a few timed iterations and prints a one-line median. It performs
//! no statistics, warmup calibration, or report generation — numbers are
//! indicative only. Because cargo also builds bench targets under
//! `cargo test`, iteration counts are kept tiny.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Iterations per measurement; deliberately small (see crate docs).
const ITERS: u32 = 3;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies a parameterized benchmark, e.g. `bitmap/4`.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// A new id combining a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{name}/{param}"),
        }
    }
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` a few times and records the fastest iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut best = Duration::MAX;
        for _ in 0..ITERS {
            let start = Instant::now();
            hint::black_box(f());
            best = best.min(start.elapsed());
        }
        self.elapsed = best;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    println!("bench {label}: {:?}/iter (shim, {ITERS} iters)", b.elapsed);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API parity; the shim ignores sample sizes.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; the shim ignores measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), &mut f);
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id.rendered), &mut |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (no-op in the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), &mut f);
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("times", 3), &3u64, |b, &t| {
            b.iter(|| t * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}

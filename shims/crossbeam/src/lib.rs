//! Hermetic stand-in for the `crossbeam` crate (0.8 API subset).
//!
//! The workspace only uses `crossbeam::thread::scope` with scoped
//! `spawn`/`join`. Since Rust 1.63 the standard library provides scoped
//! threads natively, so this shim delegates to [`std::thread::scope`]
//! while keeping crossbeam's signatures: the scope closure receives a
//! `&Scope` argument, `spawn` hands the closure a `&Scope` (ignored at
//! every call site as `|_|`), and both `scope` and `join` return
//! `Result` with the panic payload as the error.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as stdthread;

    /// Panic payload carried out of a scope or a joined thread.
    pub type Payload = Box<dyn Any + Send + 'static>;

    /// A scope handle; wraps the standard library's scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, Payload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope (so it
        /// could spawn siblings, though the workspace never does).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; returns `Err` with the panic payload if any unjoined
    /// child (or `f` itself) panicked, like crossbeam does.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            stdthread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn unjoined_panicking_child_surfaces_as_err() {
        let result = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn mutable_disjoint_slices() {
        let mut out = vec![0u32; 8];
        thread::scope(|s| {
            for (i, chunk) in out.chunks_mut(4).enumerate() {
                s.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 4 + j) as u32;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }
}
